//! The pointerless wire format (paper Fig. 9) and its codec.
//!
//! A subtree over `2^k`-ary level `l` is encoded as either
//!
//! * an **index node**: bit `0`, then a `2^levels[l]`-bit mask of the child
//!   quadrants that contain points, followed by the encodings of the present
//!   children in quadrant order, or
//! * a **point list**: each point as bit `1` followed by its position
//!   *relative to the current quadrant* (`bits_below(l)` bits), terminated by
//!   a `0` bit.
//!
//! The encoder picks whichever costs fewer bits, recursively — the paper's
//! decomposition-threshold rule ("compare both solutions and stop the
//! decomposition if a list of points is shorter", §V-C). Storing subtrees in
//! depth-first order makes the format pointerless and makes the stored point
//! sequence ascend in key order.

use crate::bits::{BitReader, BitWriter};
use crate::point::{Point, PointSet, RelFlags};
use crate::shape::TreeShape;

/// An encoded point set: bytes plus the exact bit length.
///
/// Protocol layers account costs at byte granularity ([`EncodedTree::wire_size`])
/// while the decomposition threshold works on bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedTree {
    /// Zero-padded bytes of the bitstring.
    pub bytes: Vec<u8>,
    /// Exact number of meaningful bits.
    pub len_bits: usize,
}

impl EncodedTree {
    /// Size on the wire, in whole bytes.
    pub fn wire_size(&self) -> usize {
        self.len_bits.div_ceil(8)
    }
}

/// Errors decoding a wire bitstring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The bitstring ended inside a node or point.
    UnexpectedEnd,
    /// An index node with no present children is not producible by the
    /// encoder.
    EmptyMask,
    /// Meaningful bits remained after the root subtree was decoded.
    TrailingBits {
        /// How many bits were left over.
        extra: usize,
    },
    /// Two points decoded to the same Z-number.
    DuplicatePoint {
        /// The duplicated Z-number.
        z: u64,
    },
    /// A point carried empty relation flags.
    EmptyFlags,
    /// An index node appeared below the bottom level of the tree shape.
    TooDeep,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "bitstring ended unexpectedly"),
            DecodeError::EmptyMask => write!(f, "index node with empty child mask"),
            DecodeError::TrailingBits { extra } => write!(f, "{extra} trailing bits"),
            DecodeError::DuplicatePoint { z } => write!(f, "duplicate point z={z}"),
            DecodeError::EmptyFlags => write!(f, "point with empty relation flags"),
            DecodeError::TooDeep => write!(f, "index node below the bottom tree level"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a point set into the pointerless quadtree bitstring.
pub fn encode(set: &PointSet, shape: &TreeShape) -> EncodedTree {
    let mut keys: Vec<u64> = set.iter().map(|p| shape.key(p.z, p.flags.0)).collect();
    keys.sort_unstable();
    let mut w = BitWriter::new();
    if !keys.is_empty() {
        let mut scratch = Vec::new();
        emit(&keys, 0, shape, &mut w, &mut scratch);
    }
    let (bytes, len_bits) = w.finish();
    EncodedTree { bytes, len_bits }
}

/// The exact bit length [`encode`] would produce, without encoding.
pub fn encoded_len_bits(set: &PointSet, shape: &TreeShape) -> usize {
    let mut keys: Vec<u64> = set.iter().map(|p| shape.key(p.z, p.flags.0)).collect();
    keys.sort_unstable();
    if keys.is_empty() {
        0
    } else {
        cost(&keys, 0, shape)
    }
}

/// Bits needed for the cheaper of {list, subdivide} for `keys` at `level`.
fn cost(keys: &[u64], level: usize, shape: &TreeShape) -> usize {
    let rem = shape.bits_below(level) as usize;
    let list = keys.len() * (1 + rem) + 1;
    if level == shape.levels().len() {
        debug_assert_eq!(keys.len(), 1, "duplicate keys reached the bottom");
        return list;
    }
    let k = shape.levels()[level];
    let mut subdiv = 1 + (1usize << k);
    for child in children(keys, level, shape) {
        subdiv += cost(child, level + 1, shape);
        if subdiv >= list {
            // Early exit: subdividing can only get more expensive.
            return list;
        }
    }
    subdiv.min(list)
}

/// Emits the cheaper encoding of `keys` at `level`. `scratch` holds the
/// batch-masked relative keys of a point list (computed with the vectorized
/// AND kernel) between recursion steps.
fn emit(keys: &[u64], level: usize, shape: &TreeShape, w: &mut BitWriter, scratch: &mut Vec<u64>) {
    let rem = shape.bits_below(level) as usize;
    let list_cost = keys.len() * (1 + rem) + 1;
    let subdivide = level < shape.levels().len() && {
        let k = shape.levels()[level];
        let mut subdiv = 1 + (1usize << k);
        for child in children(keys, level, shape) {
            subdiv += cost(child, level + 1, shape);
            if subdiv >= list_cost {
                break;
            }
        }
        subdiv < list_cost
    };
    if subdivide {
        let k = shape.levels()[level];
        w.push_bit(false);
        let mut mask: u64 = 0;
        for child in children(keys, level, shape) {
            let q = quadrant(child[0], level, shape);
            mask |= 1 << ((1u32 << k) - 1 - q);
        }
        w.push_bits(mask, 1 << k);
        for child in children(keys, level, shape) {
            emit(child, level + 1, shape, w, scratch);
        }
    } else {
        let mask = if rem == 64 {
            u64::MAX
        } else {
            (1u64 << rem) - 1
        };
        // Strip the quadrant prefix off the whole run at once, then stream
        // the packed point list.
        sensjoin_simd::and_mask_u64(keys, mask, scratch);
        for &stripped in scratch.iter() {
            w.push_bit(true);
            w.push_bits(stripped, rem as u32);
        }
        w.push_bit(false);
    }
}

/// The quadrant index of `key` at `level` (its bits for that level).
#[inline]
fn quadrant(key: u64, level: usize, shape: &TreeShape) -> u32 {
    let k = u32::from(shape.levels()[level]);
    let below = shape.bits_below(level + 1);
    ((key >> below) & ((1u64 << k) - 1)) as u32
}

/// Splits sorted `keys` into maximal runs sharing a quadrant at `level`.
fn children<'a>(
    keys: &'a [u64],
    level: usize,
    shape: &'a TreeShape,
) -> impl Iterator<Item = &'a [u64]> + 'a {
    let mut rest = keys;
    std::iter::from_fn(move || {
        if rest.is_empty() {
            return None;
        }
        let q = quadrant(rest[0], level, shape);
        let end = rest.partition_point(|&k| quadrant(k, level, shape) == q);
        let (head, tail) = rest.split_at(end);
        rest = tail;
        Some(head)
    })
}

/// Tests whether the encoded set contains a point with cell `z` whose flags
/// overlap `flags`, *directly on the wire format* — the check a node runs on
/// a received filter without materializing it. Walks only the branches whose
/// quadrants can contain matching keys.
pub fn contains_encoded(
    tree: &EncodedTree,
    shape: &TreeShape,
    z: u64,
    flags: RelFlags,
) -> Result<bool, DecodeError> {
    if tree.len_bits == 0 {
        return Ok(false);
    }
    // Candidate keys: one per flag combination that overlaps `flags`.
    let fb = shape.flag_bits();
    let mut found = false;
    let mut r = BitReader::with_len(&tree.bytes, tree.len_bits);
    let matches = |key: u64| -> bool {
        let (kz, kf) = shape.split_key(key);
        kz == z && (fb == 0 || RelFlags(kf).intersects(flags))
    };
    // Reuse the subtree reader but prune: quadrant q at level l covers keys
    // with that prefix; we can skip subtrees whose prefix cannot match any
    // candidate key. For simplicity and safety the pruning predicate checks
    // the z-part prefix and, within the flag level, flag overlap.
    scan_subtree(&mut r, 0, 0, shape, z, flags, &matches, &mut found)?;
    if r.remaining() > 0 {
        return Err(DecodeError::TrailingBits {
            extra: r.remaining(),
        });
    }
    Ok(found)
}

/// Whether a subtree at `level` with path `prefix` could contain the target.
fn prefix_viable(prefix: u64, level: usize, shape: &TreeShape, z: u64, flags: RelFlags) -> bool {
    // Bits of the full key consumed so far:
    let consumed: u32 = shape.levels()[..level].iter().map(|&b| u32::from(b)).sum();
    let below = shape.total_bits() - consumed;
    let fb = u32::from(shape.flag_bits());
    let zb = shape.z_bits();
    // The target z occupies the low `zb` bits of the key; flags the top.
    for f in 0..(1u64 << fb.max(1)) {
        if fb > 0 && (f as u8) & flags.0 == 0 {
            continue;
        }
        let key = if fb == 0 { z } else { (f << zb) | z };
        if key >> below == prefix {
            return true;
        }
        if fb == 0 {
            break;
        }
    }
    false
}

#[allow(clippy::too_many_arguments)]
fn scan_subtree(
    r: &mut BitReader<'_>,
    level: usize,
    prefix: u64,
    shape: &TreeShape,
    z: u64,
    flags: RelFlags,
    matches: &dyn Fn(u64) -> bool,
    found: &mut bool,
) -> Result<(), DecodeError> {
    let rem = shape.bits_below(level);
    let first = r.read_bit().ok_or(DecodeError::UnexpectedEnd)?;
    if first {
        loop {
            let pos = r.read_bits(rem).ok_or(DecodeError::UnexpectedEnd)?;
            if matches((prefix << rem) | pos) {
                *found = true;
            }
            if !r.read_bit().ok_or(DecodeError::UnexpectedEnd)? {
                break;
            }
        }
        Ok(())
    } else {
        if level >= shape.levels().len() {
            return Err(DecodeError::TooDeep);
        }
        let k = u32::from(shape.levels()[level]);
        let mask = r.read_bits(1 << k).ok_or(DecodeError::UnexpectedEnd)?;
        if mask == 0 {
            return Err(DecodeError::EmptyMask);
        }
        for q in 0..(1u64 << k) {
            if (mask >> ((1u64 << k) - 1 - q)) & 1 == 1 {
                let child_prefix = (prefix << k) | q;
                // Even when the branch cannot match we must *parse* it to
                // stay positioned in the stream; but we can skip the match
                // tests inside. (The format is not indexed, so full skipping
                // needs a parse anyway; the saving is the key comparisons.)
                if prefix_viable(child_prefix, level + 1, shape, z, flags) {
                    scan_subtree(r, level + 1, child_prefix, shape, z, flags, matches, found)?;
                } else {
                    scan_subtree(
                        r,
                        level + 1,
                        child_prefix,
                        shape,
                        z,
                        flags,
                        &|_| false,
                        found,
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// Decodes a wire bitstring back into the point set.
pub fn decode(tree: &EncodedTree, shape: &TreeShape) -> Result<PointSet, DecodeError> {
    let mut r = BitReader::with_len(&tree.bytes, tree.len_bits);
    let mut keys = Vec::new();
    if tree.len_bits > 0 {
        read_subtree(&mut r, 0, 0, shape, &mut keys)?;
        if r.remaining() > 0 {
            return Err(DecodeError::TrailingBits {
                extra: r.remaining(),
            });
        }
    }
    let mut points: Vec<Point> = keys
        .into_iter()
        .map(|k| {
            let (z, flags) = shape.split_key(k);
            if shape.flag_bits() > 0 && flags == 0 {
                return Err(DecodeError::EmptyFlags);
            }
            // Flagless shapes store pure z keys; report full membership.
            let flags = if shape.flag_bits() == 0 { 0b11 } else { flags };
            Ok(Point {
                z,
                flags: RelFlags(flags),
            })
        })
        .collect::<Result<_, _>>()?;
    points.sort_unstable_by_key(|p| p.z);
    for w in points.windows(2) {
        if w[0].z == w[1].z {
            return Err(DecodeError::DuplicatePoint { z: w[0].z });
        }
    }
    Ok(PointSet::from_sorted_unchecked(points))
}

fn read_subtree(
    r: &mut BitReader<'_>,
    level: usize,
    prefix: u64,
    shape: &TreeShape,
    out: &mut Vec<u64>,
) -> Result<(), DecodeError> {
    let rem = shape.bits_below(level);
    let first = r.read_bit().ok_or(DecodeError::UnexpectedEnd)?;
    if first {
        // Point list: we already consumed the leading '1' of the first point.
        loop {
            let pos = r.read_bits(rem).ok_or(DecodeError::UnexpectedEnd)?;
            out.push((prefix << rem) | pos);
            if !r.read_bit().ok_or(DecodeError::UnexpectedEnd)? {
                break;
            }
        }
        Ok(())
    } else {
        // Index node — illegal below the bottom level (only point lists can
        // appear there); corrupted streams may claim otherwise.
        if level >= shape.levels().len() {
            return Err(DecodeError::TooDeep);
        }
        let k = u32::from(shape.levels()[level]);
        let mask = r.read_bits(1 << k).ok_or(DecodeError::UnexpectedEnd)?;
        if mask == 0 {
            return Err(DecodeError::EmptyMask);
        }
        for q in 0..(1u64 << k) {
            if (mask >> ((1u64 << k) - 1 - q)) & 1 == 1 {
                read_subtree(r, level + 1, (prefix << k) | q, shape, out)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape2d() -> TreeShape {
        // Two 3-bit dimensions interleaved + 2 flag bits: levels [2,2,2,2].
        TreeShape::new(&[2, 2, 2], 2)
    }

    fn set(pts: &[(u64, u8)]) -> PointSet {
        PointSet::from_points(pts.iter().map(|&(z, f)| Point {
            z,
            flags: RelFlags(f),
        }))
    }

    #[test]
    fn empty_set_is_zero_bits() {
        let sh = shape2d();
        let e = encode(&PointSet::new(), &sh);
        assert_eq!(e.len_bits, 0);
        assert_eq!(decode(&e, &sh).unwrap(), PointSet::new());
    }

    #[test]
    fn single_point_roundtrip() {
        let sh = shape2d();
        let s = set(&[(0b101011, 0b10)]);
        let e = encode(&s, &sh);
        assert_eq!(decode(&e, &sh).unwrap(), s);
        // A single point is cheapest as a root-level list: 1 + 8 + 1 bits.
        assert_eq!(e.len_bits, 10);
    }

    #[test]
    fn clustered_points_subdivide() {
        let sh = shape2d();
        // Four points sharing the top 4 key bits: subdividing pays off.
        let s = set(&[(0b000000, 1), (0b000001, 1), (0b000010, 1), (0b000011, 1)]);
        let e = encode(&s, &sh);
        let flat_list_bits = 4 * (1 + 8) + 1;
        assert!(
            e.len_bits < flat_list_bits,
            "{} !< {flat_list_bits}",
            e.len_bits
        );
        assert_eq!(decode(&e, &sh).unwrap(), s);
    }

    #[test]
    fn scattered_points_stay_listed() {
        let sh = shape2d();
        // Two maximally distant points: no common structure, list is best.
        let s = set(&[(0, 0b10), (0b111111, 0b01)]);
        let e = encode(&s, &sh);
        assert_eq!(e.len_bits, 2 * 9 + 1);
        assert_eq!(decode(&e, &sh).unwrap(), s);
    }

    #[test]
    fn encoded_len_matches_encode() {
        let sh = shape2d();
        for pts in [
            vec![],
            vec![(5u64, 0b10u8)],
            vec![(0, 0b10), (1, 0b10), (2, 0b01), (3, 0b11), (60, 0b01)],
            (0..16).map(|i| (i as u64, 0b10)).collect::<Vec<_>>(),
        ] {
            let s = set(&pts);
            assert_eq!(encoded_len_bits(&s, &sh), encode(&s, &sh).len_bits);
        }
    }

    #[test]
    fn dense_set_compresses_well() {
        let sh = shape2d();
        // All 64 cells present in relation A: the tree should collapse far
        // below the flat list.
        let s = set(&(0..64u64).map(|z| (z, 0b10)).collect::<Vec<_>>());
        let e = encode(&s, &sh);
        let flat = 64 * 9 + 1;
        assert!(e.len_bits < flat / 2, "{} bits", e.len_bits);
        assert_eq!(decode(&e, &sh).unwrap(), s);
    }

    #[test]
    fn wire_size_rounds_up() {
        let t = EncodedTree {
            bytes: vec![0, 0],
            len_bits: 9,
        };
        assert_eq!(t.wire_size(), 2);
        let t0 = EncodedTree {
            bytes: vec![],
            len_bits: 0,
        };
        assert_eq!(t0.wire_size(), 0);
    }

    #[test]
    fn truncated_input_errors() {
        let sh = shape2d();
        let s = set(&[(0b101011, 0b10), (0b101010, 0b01)]);
        let e = encode(&s, &sh);
        let bad = EncodedTree {
            bytes: e.bytes.clone(),
            len_bits: e.len_bits - 3,
        };
        assert!(matches!(decode(&bad, &sh), Err(DecodeError::UnexpectedEnd)));
    }

    #[test]
    fn trailing_bits_error() {
        let sh = shape2d();
        let s = set(&[(3, 0b10)]);
        let mut e = encode(&s, &sh);
        e.bytes.push(0);
        e.len_bits += 8;
        assert!(matches!(
            decode(&e, &sh),
            Err(DecodeError::TrailingBits { .. })
        ));
    }

    #[test]
    fn flagless_shape_roundtrip() {
        let sh = TreeShape::without_flags(&[2, 2]);
        let s = PointSet::from_points([0u64, 3, 7, 12, 15].map(|z| Point {
            z,
            flags: RelFlags(0b11),
        }));
        let e = encode(&s, &sh);
        assert_eq!(decode(&e, &sh).unwrap(), s);
    }

    #[test]
    fn correlated_data_beats_flat_encoding() {
        // Spatially correlated readings -> nearby z values -> much smaller
        // encoding than n * (total_bits + overhead). This is the mechanism
        // behind Fig. 16.
        let sh = TreeShape::new(&[3, 3, 3, 3], 2);
        let s = set(&(0..100u64).map(|i| (1000 + i, 0b10)).collect::<Vec<_>>());
        let e = encode(&s, &sh);
        let flat = 100 * (1 + 14) + 1;
        assert!(
            e.len_bits * 2 < flat,
            "correlated encoding {} should be < half of flat {flat}",
            e.len_bits
        );
    }
}
