#![warn(missing_docs)]

//! Pointerless region-quadtree encoding of join-attribute tuple sets.
//!
//! SENS-Join (§V) ships *sets* of quantized join-attribute tuples — Z-numbers
//! with relation flags — between nodes. This crate implements the paper's
//! compact wire format and the set primitives computed on it:
//!
//! * [`TreeShape`] — the branching structure of the generalized region
//!   quadtree: one level per Z-order interleave round (`2^k` children at a
//!   level consuming `k` bits), preceded by one level for the **relation
//!   flags** ("the topmost index node represents the relation flags", §V-C),
//! * [`PointSet`] — the logical set: Z-numbers with per-relation membership
//!   flags, plus [`PointSet::union`] / [`PointSet::intersect`] implementing
//!   the paper's `Union`/`Intersect` primitives with flag-OR / flag-AND
//!   semantics,
//! * [`encode`] / [`decode`] — the pointerless bitstring (paper Fig. 9):
//!   depth-first order; an *index node* is a `0` bit followed by a child-
//!   presence mask; a *point list* is `1`-prefixed points encoded relative to
//!   the current path, terminated by a `0` bit; subdivision stops exactly
//!   when listing the points costs fewer bits than subdividing (the paper's
//!   decomposition threshold, §V-C).
//!
//! The format is self-delimiting given the shape, and the DFS order makes
//! union and intersection single merge passes — no generic
//! compression/decompression round-trips (§V-D).
//!
//! # Example
//!
//! ```
//! use sensjoin_quadtree::{PointSet, TreeShape, RelFlags, encode, decode};
//!
//! let shape = TreeShape::new(&[2, 2, 2], 2); // 3 interleave levels + flags
//! let mut set = PointSet::new();
//! set.insert(0b000101, RelFlags::A);
//! set.insert(0b000111, RelFlags::B);
//! set.insert(0b000101, RelFlags::B); // same cell from the other relation
//! let wire = encode(&set, &shape);
//! let back = decode(&wire, &shape).unwrap();
//! assert_eq!(back, set);
//! assert!(back.contains_matching(0b000101, RelFlags::A));
//! ```

mod bits;
mod encoding;
mod point;
mod shape;

pub use bits::{BitReader, BitWriter};
pub use encoding::{contains_encoded, decode, encode, encoded_len_bits, DecodeError, EncodedTree};
pub use point::{Point, PointSet, RelFlags};
pub use shape::TreeShape;
