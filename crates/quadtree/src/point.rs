//! Logical point sets: Z-numbers with relation-membership flags.

/// Relation-membership flags of a point (paper §V-C: `10` = Relation A,
/// `01` = Relation B, `11` = both). Generalized to up to eight relations;
/// relation *i* of a query corresponds to bit *i* counted from the most
/// significant of the configured flag width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelFlags(pub u8);

impl RelFlags {
    /// Membership in the first relation of the query (`10` for two-relation
    /// queries).
    pub const A: RelFlags = RelFlags(0b10);
    /// Membership in the second relation (`01`).
    pub const B: RelFlags = RelFlags(0b01);
    /// Membership in both (`11`, self-joins).
    pub const BOTH: RelFlags = RelFlags(0b11);

    /// Flag for relation index `i` (0-based) out of `n` relations.
    #[inline]
    pub fn relation(i: usize, n: usize) -> RelFlags {
        assert!(i < n && n <= 8);
        RelFlags(1 << (n - 1 - i))
    }

    /// Whether no relation bit is set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether any relation overlaps with `other`.
    #[inline]
    pub fn intersects(self, other: RelFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// Set union of memberships.
    #[inline]
    pub fn or(self, other: RelFlags) -> RelFlags {
        RelFlags(self.0 | other.0)
    }

    /// Set intersection of memberships.
    #[inline]
    pub fn and(self, other: RelFlags) -> RelFlags {
        RelFlags(self.0 & other.0)
    }
}

/// A quantized join-attribute tuple on the wire: its Z-number plus which
/// relations it appeared in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point {
    /// Z-order cell number.
    pub z: u64,
    /// Relation memberships.
    pub flags: RelFlags,
}

/// A set of [`Point`]s: the logical content of the paper's
/// `Join_Attr_Structure`.
///
/// Invariants: points are sorted by Z-number, Z-numbers are unique (equal
/// cells from different relations merge by OR-ing flags — exactly what the
/// base station needs to know), and flags are never empty.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PointSet {
    points: Vec<Point>,
}

impl PointSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from arbitrary points, merging duplicates.
    pub fn from_points(points: impl IntoIterator<Item = Point>) -> Self {
        let mut set = Self::new();
        for p in points {
            set.insert(p.z, p.flags);
        }
        set
    }

    /// Builds directly from a vector already sorted by unique `z` with
    /// non-empty flags. Used by the decoder.
    ///
    /// # Panics
    /// Panics in debug builds if the invariants do not hold.
    pub(crate) fn from_sorted_unchecked(points: Vec<Point>) -> Self {
        debug_assert!(points.windows(2).all(|w| w[0].z < w[1].z));
        debug_assert!(points.iter().all(|p| !p.flags.is_empty()));
        Self { points }
    }

    /// Inserts a point, OR-ing flags if the cell is already present
    /// (the paper's `Insert` primitive).
    pub fn insert(&mut self, z: u64, flags: RelFlags) {
        assert!(
            !flags.is_empty(),
            "points must belong to at least one relation"
        );
        match self.points.binary_search_by_key(&z, |p| p.z) {
            Ok(i) => self.points[i].flags = self.points[i].flags.or(flags),
            Err(i) => self.points.insert(i, Point { z, flags }),
        }
    }

    /// Sets cell `z`'s membership to exactly `flags`: inserts when absent,
    /// overwrites when present, and removes the cell when `flags` is empty.
    /// The in-place maintenance primitive of the incremental filter engine
    /// (unlike [`PointSet::insert`], which can only grow memberships).
    pub fn set_flags(&mut self, z: u64, flags: RelFlags) {
        match self.points.binary_search_by_key(&z, |p| p.z) {
            Ok(i) => {
                if flags.is_empty() {
                    self.points.remove(i);
                } else {
                    self.points[i].flags = flags;
                }
            }
            Err(i) => {
                if !flags.is_empty() {
                    self.points.insert(i, Point { z, flags });
                }
            }
        }
    }

    /// Number of distinct cells in the set.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points, sorted by Z-number.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Whether the set contains cell `z` with a membership overlapping
    /// `flags`. This is the test a node runs against the join filter: "does
    /// my join-attribute tuple appear in the filter for my relation?"
    pub fn contains_matching(&self, z: u64, flags: RelFlags) -> bool {
        self.points
            .binary_search_by_key(&z, |p| p.z)
            .map(|i| self.points[i].flags.intersects(flags))
            .unwrap_or(false)
    }

    /// The flags stored for cell `z`, if present.
    pub fn flags_of(&self, z: u64) -> Option<RelFlags> {
        self.points
            .binary_search_by_key(&z, |p| p.z)
            .ok()
            .map(|i| self.points[i].flags)
    }

    /// Set union — the paper's `Union` primitive: a single merge pass over
    /// the two z-sorted sequences, OR-ing flags of equal cells.
    pub fn union(&self, other: &PointSet) -> PointSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.points.len() && j < other.points.len() {
            let (a, b) = (self.points[i], other.points[j]);
            match a.z.cmp(&b.z) {
                std::cmp::Ordering::Less => {
                    out.push(a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(Point {
                        z: a.z,
                        flags: a.flags.or(b.flags),
                    });
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.points[i..]);
        out.extend_from_slice(&other.points[j..]);
        PointSet { points: out }
    }

    /// Set intersection — the paper's `Intersect` primitive, used by
    /// Selective Filter Forwarding: keeps cells present in both sets with the
    /// AND of the flags, dropping cells whose memberships do not overlap.
    pub fn intersect(&self, other: &PointSet) -> PointSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.points.len() && j < other.points.len() {
            let (a, b) = (self.points[i], other.points[j]);
            match a.z.cmp(&b.z) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let f = a.flags.and(b.flags);
                    if !f.is_empty() {
                        out.push(Point { z: a.z, flags: f });
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        PointSet { points: out }
    }

    /// Iterates over points in Z order.
    pub fn iter(&self) -> impl Iterator<Item = &Point> {
        self.points.iter()
    }
}

impl FromIterator<Point> for PointSet {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        Self::from_points(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pts: &[(u64, u8)]) -> PointSet {
        PointSet::from_points(pts.iter().map(|&(z, f)| Point {
            z,
            flags: RelFlags(f),
        }))
    }

    #[test]
    fn insert_merges_flags() {
        let mut s = PointSet::new();
        s.insert(5, RelFlags::A);
        s.insert(5, RelFlags::B);
        s.insert(3, RelFlags::A);
        assert_eq!(s.len(), 2);
        assert_eq!(s.flags_of(5), Some(RelFlags::BOTH));
        assert_eq!(s.points()[0].z, 3); // sorted
    }

    #[test]
    fn contains_matching_respects_flags() {
        let s = set(&[(7, 0b10)]);
        assert!(s.contains_matching(7, RelFlags::A));
        assert!(!s.contains_matching(7, RelFlags::B));
        assert!(s.contains_matching(7, RelFlags::BOTH));
        assert!(!s.contains_matching(8, RelFlags::BOTH));
    }

    #[test]
    fn union_is_set_union_with_flag_or() {
        let a = set(&[(1, 0b10), (3, 0b10)]);
        let b = set(&[(2, 0b01), (3, 0b01)]);
        let u = a.union(&b);
        assert_eq!(u, set(&[(1, 0b10), (2, 0b01), (3, 0b11)]));
    }

    #[test]
    fn intersect_drops_disjoint_flags() {
        let filter = set(&[(3, 0b10), (4, 0b11)]);
        let subtree = set(&[(3, 0b01), (4, 0b01), (5, 0b11)]);
        let i = filter.intersect(&subtree);
        // z=3: filter says "joins as A" but subtree only has it as B -> drop.
        assert_eq!(i, set(&[(4, 0b01)]));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = set(&[(1, 0b10), (9, 0b11)]);
        assert_eq!(a.union(&PointSet::new()), a);
        assert_eq!(PointSet::new().union(&a), a);
    }

    #[test]
    fn relation_flag_indexing() {
        assert_eq!(RelFlags::relation(0, 2), RelFlags::A);
        assert_eq!(RelFlags::relation(1, 2), RelFlags::B);
        assert_eq!(RelFlags::relation(2, 3), RelFlags(0b001));
    }

    #[test]
    #[should_panic(expected = "at least one relation")]
    fn empty_flags_rejected() {
        PointSet::new().insert(1, RelFlags(0));
    }

    #[test]
    fn set_flags_inserts_overwrites_and_removes() {
        let mut s = set(&[(3, 0b10), (7, 0b11)]);
        s.set_flags(5, RelFlags::B); // insert between
        assert_eq!(s, set(&[(3, 0b10), (5, 0b01), (7, 0b11)]));
        s.set_flags(7, RelFlags::A); // overwrite (can shrink, unlike insert)
        assert_eq!(s.flags_of(7), Some(RelFlags::A));
        s.set_flags(3, RelFlags(0)); // empty flags remove the cell
        s.set_flags(100, RelFlags(0)); // removing an absent cell is a no-op
        assert_eq!(s, set(&[(5, 0b01), (7, 0b10)]));
    }
}
