//! Branching structure of the generalized region quadtree.

/// The per-level branching of the tree built over a Z-order space.
///
/// Level `l` of the tree consumes `levels[l]` key bits, i.e. has
/// `2^levels[l]` child quadrants. For an n-dimensional space with equal
/// per-dimension bit counts every level consumes `n` bits (the classic
/// region quadtree: 4 children in 2-D); unequal dimensions shrink later
/// levels as dimensions run out of bits (see
/// `sensjoin_zorder::ZSpace::level_schedule`).
///
/// The relation flags are the *first* level: the paper prefixes each point
/// with its two flag bits so "the topmost index node represents the relation
/// flags" (§V-C).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeShape {
    /// Bits consumed per level, top first (flag level included).
    levels: Vec<u8>,
    /// Total key bits = flag bits + z bits.
    total_bits: u32,
    /// Number of flag bits (0 if flags are not encoded).
    flag_bits: u8,
}

impl TreeShape {
    /// Builds a shape from a Z-order level schedule plus the relation-flag
    /// width (2 for two-relation queries; 0 to omit flags entirely).
    ///
    /// # Panics
    /// Panics if any level consumes 0 or more than 16 bits, or if the total
    /// exceeds 66 bits (64-bit Z-numbers + 2 flag bits is the paper setting;
    /// we allow up to 8 flag bits as long as flag + z bits fit in a u64 key
    /// when combined by the caller).
    pub fn new(z_schedule: &[u8], flag_bits: u8) -> Self {
        assert!(flag_bits <= 8);
        let mut levels = Vec::with_capacity(z_schedule.len() + 1);
        if flag_bits > 0 {
            levels.push(flag_bits);
        }
        levels.extend_from_slice(z_schedule);
        for &l in &levels {
            assert!(
                l > 0 && l <= 16,
                "level arity bits must be in 1..=16, got {l}"
            );
        }
        let total_bits: u32 = levels.iter().map(|&b| u32::from(b)).sum();
        assert!(total_bits <= 64, "total key bits {total_bits} exceed u64");
        Self {
            levels,
            total_bits,
            flag_bits,
        }
    }

    /// A shape with no flag level (e.g. for single-relation synopses).
    pub fn without_flags(z_schedule: &[u8]) -> Self {
        Self::new(z_schedule, 0)
    }

    /// Bits consumed per level, top first.
    pub fn levels(&self) -> &[u8] {
        &self.levels
    }

    /// Total key bits.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Width of the flag prefix.
    pub fn flag_bits(&self) -> u8 {
        self.flag_bits
    }

    /// Z-number bits (total minus flags).
    pub fn z_bits(&self) -> u32 {
        self.total_bits - u32::from(self.flag_bits)
    }

    /// Combines flags and Z-number into the full tree key.
    #[inline]
    pub fn key(&self, z: u64, flags: u8) -> u64 {
        debug_assert!(self.z_bits() == 64 || z < (1u64 << self.z_bits()).max(1));
        if self.flag_bits == 0 {
            z
        } else {
            (u64::from(flags) << self.z_bits()) | z
        }
    }

    /// Splits a full key back into `(z, flags)`.
    #[inline]
    pub fn split_key(&self, key: u64) -> (u64, u8) {
        if self.flag_bits == 0 {
            (key, 0)
        } else {
            let zb = self.z_bits();
            let z = if zb == 0 { 0 } else { key & ((1u64 << zb) - 1) };
            ((z), (key >> zb) as u8)
        }
    }

    /// Bits remaining *below* level `l` (the relative point width inside a
    /// quadrant at depth `l`).
    pub fn bits_below(&self, l: usize) -> u32 {
        self.levels[l..].iter().map(|&b| u32::from(b)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_level_is_first() {
        let s = TreeShape::new(&[2, 2, 1], 2);
        assert_eq!(s.levels(), &[2, 2, 2, 1]);
        assert_eq!(s.total_bits(), 7);
        assert_eq!(s.z_bits(), 5);
        assert_eq!(s.flag_bits(), 2);
    }

    #[test]
    fn key_roundtrip() {
        let s = TreeShape::new(&[3, 3], 2);
        let k = s.key(0b101010, 0b11);
        assert_eq!(s.split_key(k), (0b101010, 0b11));
        assert_eq!(k >> s.z_bits(), 0b11);
    }

    #[test]
    fn no_flags() {
        let s = TreeShape::without_flags(&[2, 2]);
        assert_eq!(s.flag_bits(), 0);
        assert_eq!(s.key(9, 0), 9);
        assert_eq!(s.split_key(9), (9, 0));
    }

    #[test]
    fn bits_below() {
        let s = TreeShape::new(&[2, 2, 1], 2);
        assert_eq!(s.bits_below(0), 7);
        assert_eq!(s.bits_below(1), 5);
        assert_eq!(s.bits_below(4), 0);
    }

    #[test]
    #[should_panic(expected = "level arity bits")]
    fn zero_level_rejected() {
        TreeShape::without_flags(&[2, 0]);
    }
}
