//! Property-based tests for the quadtree wire format and set primitives.

use proptest::prelude::*;
use sensjoin_quadtree::{decode, encode, encoded_len_bits, Point, PointSet, RelFlags, TreeShape};
use std::collections::BTreeMap;

/// Strategy for a tree shape with varied level structure.
fn shape_strategy() -> impl Strategy<Value = TreeShape> {
    prop_oneof![
        Just(TreeShape::new(&[2, 2, 2], 2)),
        Just(TreeShape::new(&[3, 3, 2, 1], 2)),
        Just(TreeShape::new(&[1, 1, 1, 1, 1, 1], 2)),
        Just(TreeShape::without_flags(&[2, 2, 2, 2])),
        Just(TreeShape::new(&[4, 4, 4], 3)),
    ]
}

fn points_strategy(shape: &TreeShape) -> impl Strategy<Value = Vec<(u64, u8)>> {
    let zmax = if shape.z_bits() == 64 {
        u64::MAX
    } else {
        (1u64 << shape.z_bits()) - 1
    };
    let fmax: u8 = if shape.flag_bits() == 0 {
        0b11
    } else {
        ((1u16 << shape.flag_bits()) - 1) as u8
    };
    prop::collection::vec((0..=zmax, 1..=fmax), 0..80)
}

fn build(pts: &[(u64, u8)]) -> PointSet {
    PointSet::from_points(pts.iter().map(|&(z, f)| Point {
        z,
        flags: RelFlags(f),
    }))
}

/// Reference model: map z -> flag byte.
fn model(pts: &[(u64, u8)]) -> BTreeMap<u64, u8> {
    let mut m = BTreeMap::new();
    for &(z, f) in pts {
        *m.entry(z).or_insert(0) |= f;
    }
    m
}

proptest! {
    /// encode/decode are mutual inverses for any set that fits the shape.
    #[test]
    fn roundtrip((shape, pts) in shape_strategy().prop_flat_map(|s| {
        let ps = points_strategy(&s);
        (Just(s), ps)
    })) {
        let set = build(&pts);
        let e = encode(&set, &shape);
        let back = decode(&e, &shape).unwrap();
        if shape.flag_bits() > 0 {
            prop_assert_eq!(back, set);
        } else {
            // Flagless shapes drop membership info but keep the cells.
            let zs: Vec<u64> = back.iter().map(|p| p.z).collect();
            let want: Vec<u64> = set.iter().map(|p| p.z).collect();
            prop_assert_eq!(zs, want);
        }
    }

    /// The encoder never does worse than the flat root-level list (the list
    /// is always one of the candidates), and the predicted length is exact.
    #[test]
    fn size_bounded_by_flat_list((shape, pts) in shape_strategy().prop_flat_map(|s| {
        let ps = points_strategy(&s);
        (Just(s), ps)
    })) {
        let set = build(&pts);
        let e = encode(&set, &shape);
        prop_assert_eq!(encoded_len_bits(&set, &shape), e.len_bits);
        if !set.is_empty() {
            let flat = set.len() * (1 + shape.total_bits() as usize) + 1;
            prop_assert!(e.len_bits <= flat, "{} > {}", e.len_bits, flat);
        } else {
            prop_assert_eq!(e.len_bits, 0);
        }
    }

    /// union agrees with the BTreeMap model (flag-OR on collisions).
    #[test]
    fn union_matches_model(
        a in prop::collection::vec((0u64..4096, 1u8..=3), 0..60),
        b in prop::collection::vec((0u64..4096, 1u8..=3), 0..60),
    ) {
        let u = build(&a).union(&build(&b));
        let mut want = model(&a);
        for (z, f) in model(&b) {
            *want.entry(z).or_insert(0) |= f;
        }
        let got: BTreeMap<u64, u8> = u.iter().map(|p| (p.z, p.flags.0)).collect();
        prop_assert_eq!(got, want);
    }

    /// intersect agrees with the model (flag-AND, dropping empties).
    #[test]
    fn intersect_matches_model(
        a in prop::collection::vec((0u64..512, 1u8..=3), 0..60),
        b in prop::collection::vec((0u64..512, 1u8..=3), 0..60),
    ) {
        let i = build(&a).intersect(&build(&b));
        let (ma, mb) = (model(&a), model(&b));
        let want: BTreeMap<u64, u8> = ma
            .iter()
            .filter_map(|(z, fa)| {
                mb.get(z).map(|fb| (*z, fa & fb)).filter(|(_, f)| *f != 0)
            })
            .collect();
        let got: BTreeMap<u64, u8> = i.iter().map(|p| (p.z, p.flags.0)).collect();
        prop_assert_eq!(got, want);
    }

    /// Union and intersection survive an encode/decode round-trip: operating
    /// on decoded messages equals operating on the originals. This is the
    /// correctness core of ForwardJoinAttrValues / ForwardJoinFilter.
    #[test]
    fn wire_level_set_ops(
        a in prop::collection::vec((0u64..=255, 1u8..=3), 0..40),
        b in prop::collection::vec((0u64..=255, 1u8..=3), 0..40),
    ) {
        let shape = TreeShape::new(&[2, 2, 2, 2], 2);
        let (sa, sb) = (build(&a), build(&b));
        let da = decode(&encode(&sa, &shape), &shape).unwrap();
        let db = decode(&encode(&sb, &shape), &shape).unwrap();
        prop_assert_eq!(da.union(&db), sa.union(&sb));
        prop_assert_eq!(da.intersect(&db), sa.intersect(&sb));
    }

    /// Monotonicity: a subset never encodes larger than needed — specifically
    /// union(a, b) encodes within the sum of the parts plus the flat-list
    /// bound. (Regression guard against pathological cost decisions.)
    #[test]
    fn union_size_sanity(
        a in prop::collection::vec((0u64..=255, 1u8..=3), 1..40),
    ) {
        let shape = TreeShape::new(&[2, 2, 2, 2], 2);
        let sa = build(&a);
        // Self-union is idempotent and must not change the encoding.
        let u = sa.union(&sa);
        prop_assert_eq!(&u, &sa);
        prop_assert_eq!(encode(&u, &shape), encode(&sa, &shape));
    }
}

proptest! {
    /// contains_encoded on the wire format agrees with the decoded set's
    /// contains_matching for every queried cell.
    #[test]
    fn encoded_membership_agrees_with_decoded(
        pts in prop::collection::vec((0u64..=255, 1u8..=3), 0..50),
        queries in prop::collection::vec((0u64..=255, 1u8..=3), 1..20),
    ) {
        use sensjoin_quadtree::contains_encoded;
        let shape = TreeShape::new(&[2, 2, 2, 2], 2);
        let set = build(&pts);
        let wire = encode(&set, &shape);
        for (z, f) in queries {
            let flags = RelFlags(f);
            prop_assert_eq!(
                contains_encoded(&wire, &shape, z, flags).unwrap(),
                set.contains_matching(z, flags),
                "z={} flags={:?}", z, flags
            );
        }
    }
}
