//! Adversarial-input robustness: the decoder must reject, never panic on or
//! misinterpret, arbitrary byte strings. Wire messages in a WSN can be
//! corrupted; a malformed structure must surface as `DecodeError`.

use proptest::prelude::*;
use sensjoin_quadtree::{
    decode, encode, DecodeError, EncodedTree, Point, PointSet, RelFlags, TreeShape,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes either decode into a valid set or error cleanly.
    #[test]
    fn random_bytes_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
        trim in 0usize..8,
    ) {
        let shape = TreeShape::new(&[2, 2, 2, 2], 2);
        let len_bits = (bytes.len() * 8).saturating_sub(trim);
        let tree = EncodedTree { bytes, len_bits };
        if let Ok(set) = decode(&tree, &shape) {
            // Whatever decoded must re-encode and round-trip; errors are
            // clean rejections.
            let re = encode(&set, &shape);
            prop_assert_eq!(decode(&re, &shape).unwrap(), set);
        }
    }

    /// Single-bit corruption of a valid encoding is either detected or
    /// yields a different-but-valid set — never a crash.
    #[test]
    fn bit_flips_handled(
        pts in prop::collection::vec((0u64..=255, 1u8..=3), 1..30),
        flip in 0usize..64,
    ) {
        let shape = TreeShape::new(&[2, 2, 2, 2], 2);
        let set = PointSet::from_points(
            pts.iter().map(|&(z, f)| Point { z, flags: RelFlags(f) }),
        );
        let mut tree = encode(&set, &shape);
        prop_assume!(tree.len_bits > 0);
        let bit = flip % tree.len_bits;
        tree.bytes[bit / 8] ^= 0x80 >> (bit % 8);
        match decode(&tree, &shape) {
            Ok(other) => {
                let re = encode(&other, &shape);
                prop_assert_eq!(decode(&re, &shape).unwrap(), other);
            }
            Err(
                DecodeError::UnexpectedEnd
                | DecodeError::EmptyMask
                | DecodeError::TrailingBits { .. }
                | DecodeError::DuplicatePoint { .. }
                | DecodeError::EmptyFlags
                | DecodeError::TooDeep,
            ) => {}
        }
    }
}
