//! Join-predicate classification for partitioned evaluation.
//!
//! The base-station engine wants to avoid the nested-loop descent whenever a
//! join predicate has enough structure to drive an index: an equality
//! between two single-relation expressions can be hash-partitioned, and a
//! difference-form comparison can be range-partitioned over sorted keys.
//! [`classify`] recognizes these shapes; everything else stays
//! [`PredClass::General`] and is evaluated by residual filtering only.
//!
//! Classification never rewrites the expressions algebraically: the engine
//! evaluates the *original* subtrees stored here, so every candidate test is
//! computation-for-computation identical to the plain predicate evaluation
//! it replaces. That (plus IEEE-754 comparison/subtraction monotonicity) is
//! what lets the partitioned engine guarantee bit-identical results.

use crate::ast::{BinOp, CmpOp};
use crate::compile::CExpr;

/// One side of a recognized two-relation predicate: an arithmetic expression
/// referencing exactly one relation.
#[derive(Debug, Clone)]
pub struct PredSide {
    /// The only relation the expression references.
    pub rel: usize,
    /// The (unrewritten) subtree of the original predicate.
    pub expr: CExpr,
}

/// The recognized comparison shape connecting the two sides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BandForm {
    /// `lhs cmp rhs` — the comparison operands already separate by relation.
    Direct(CmpOp),
    /// `(lhs - rhs) cmp c` (constant-comparison side mirrored into `op`).
    Diff {
        /// The comparison operator (after mirroring `c cmp (lhs-rhs)`).
        op: CmpOp,
        /// The constant bound.
        c: f64,
    },
    /// `|lhs - rhs| cmp c` (constant-comparison side mirrored into `op`).
    AbsDiff {
        /// The comparison operator (after mirroring).
        op: CmpOp,
        /// The constant bound.
        c: f64,
    },
}

/// The partitioning class of one join predicate (conjunct).
#[derive(Debug, Clone)]
pub enum PredClass {
    /// `f(A) = g(B)`: hash-partitionable equality.
    Equi {
        /// The left comparison operand.
        lhs: PredSide,
        /// The right comparison operand.
        rhs: PredSide,
    },
    /// A difference-form comparison, range-partitionable on sorted keys.
    Band {
        /// The `f` side (left operand of the comparison or subtraction).
        lhs: PredSide,
        /// The `g` side.
        rhs: PredSide,
        /// The comparison shape.
        form: BandForm,
    },
    /// No exploitable structure: residual evaluation only.
    General,
}

impl PredClass {
    /// The two relations of a classified predicate (`lhs.rel`, `rhs.rel`).
    pub fn relations(&self) -> Option<(usize, usize)> {
        match self {
            PredClass::Equi { lhs, rhs } | PredClass::Band { lhs, rhs, .. } => {
                Some((lhs.rel, rhs.rel))
            }
            PredClass::General => None,
        }
    }
}

/// The relation index an expression references, if it references exactly one.
fn single_rel(e: &CExpr) -> Option<usize> {
    let rels = e.relations();
    (rels.len() == 1).then(|| *rels.first().expect("len 1"))
}

/// Mirrors a comparison across its operands: `c op x` ⇔ `x mirror(op) c`.
fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
    }
}

/// Classifies one join predicate (a WHERE conjunct over ≥ 2 relations).
///
/// `Ne` comparisons are always [`PredClass::General`]: their candidate set
/// is a complement, which no index here accelerates.
pub fn classify(pred: &CExpr) -> PredClass {
    let CExpr::Cmp { op, lhs, rhs } = pred else {
        return PredClass::General; // OR / NOT conjuncts
    };
    if *op == CmpOp::Ne {
        return PredClass::General;
    }
    // Direct: each comparison operand references exactly one relation.
    if let (Some(rl), Some(rr)) = (single_rel(lhs), single_rel(rhs)) {
        if rl != rr {
            let l = PredSide {
                rel: rl,
                expr: (**lhs).clone(),
            };
            let r = PredSide {
                rel: rr,
                expr: (**rhs).clone(),
            };
            return if *op == CmpOp::Eq {
                PredClass::Equi { lhs: l, rhs: r }
            } else {
                PredClass::Band {
                    lhs: l,
                    rhs: r,
                    form: BandForm::Direct(*op),
                }
            };
        }
    }
    // Difference forms: `X cmp c` or `c cmp X` with X = f-g or |f-g|.
    let (x, c, op) = match (&**lhs, &**rhs) {
        (x, CExpr::Number(c)) => (x, *c, *op),
        (CExpr::Number(c), x) => (x, *c, mirror(*op)),
        _ => return PredClass::General,
    };
    if c.is_nan() {
        return PredClass::General;
    }
    let (diff, abs) = match x {
        CExpr::Bin {
            op: BinOp::Sub,
            lhs,
            rhs,
        } => ((lhs, rhs), false),
        CExpr::Abs(inner) => match &**inner {
            CExpr::Bin {
                op: BinOp::Sub,
                lhs,
                rhs,
            } => ((lhs, rhs), true),
            _ => return PredClass::General,
        },
        _ => return PredClass::General,
    };
    let (Some(rl), Some(rr)) = (single_rel(diff.0), single_rel(diff.1)) else {
        return PredClass::General;
    };
    if rl == rr {
        return PredClass::General;
    }
    let form = if abs {
        BandForm::AbsDiff { op, c }
    } else {
        BandForm::Diff { op, c }
    };
    PredClass::Band {
        lhs: PredSide {
            rel: rl,
            expr: (*diff.0.clone()),
        },
        rhs: PredSide {
            rel: rr,
            expr: (*diff.1.clone()),
        },
        form,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::CompiledQuery;
    use sensjoin_relation::{AttrType, Attribute, Schema};

    fn classes(sql: &str) -> Vec<PredClass> {
        let schema = Schema::new(
            "Sensors",
            vec![
                Attribute::new("x", AttrType::Meters),
                Attribute::new("y", AttrType::Meters),
                Attribute::new("temp", AttrType::Celsius),
            ],
        );
        let q = parse(sql).unwrap();
        let schemas: Vec<Schema> = q.from.iter().map(|_| schema.clone()).collect();
        let cq = CompiledQuery::compile(&q, &schemas).unwrap();
        cq.pred_classes().to_vec()
    }

    #[test]
    fn equality_is_equi() {
        let c = classes("SELECT A.x, B.x FROM Sensors A, Sensors B WHERE A.temp = B.temp ONCE");
        assert!(matches!(
            &c[0],
            PredClass::Equi { lhs, rhs } if lhs.rel == 0 && rhs.rel == 1
        ));
    }

    #[test]
    fn difference_threshold_is_band() {
        let c =
            classes("SELECT A.x, B.x FROM Sensors A, Sensors B WHERE A.temp - B.temp > 4.0 ONCE");
        assert!(matches!(
            &c[0],
            PredClass::Band {
                form: BandForm::Diff { op: CmpOp::Gt, c },
                ..
            } if *c == 4.0
        ));
    }

    #[test]
    fn absolute_band_is_band() {
        let c =
            classes("SELECT A.x, B.x FROM Sensors A, Sensors B WHERE |A.temp - B.temp| < 0.5 ONCE");
        assert!(matches!(
            &c[0],
            PredClass::Band {
                form: BandForm::AbsDiff { op: CmpOp::Lt, c },
                ..
            } if *c == 0.5
        ));
    }

    #[test]
    fn mirrored_constant_side_is_normalized() {
        let c =
            classes("SELECT A.x, B.x FROM Sensors A, Sensors B WHERE 4.0 < A.temp - B.temp ONCE");
        assert!(matches!(
            &c[0],
            PredClass::Band {
                form: BandForm::Diff { op: CmpOp::Gt, .. },
                ..
            }
        ));
    }

    #[test]
    fn direct_inequality_is_band() {
        let c = classes("SELECT A.x, B.x FROM Sensors A, Sensors B WHERE A.temp < B.temp ONCE");
        assert!(matches!(
            &c[0],
            PredClass::Band {
                form: BandForm::Direct(CmpOp::Lt),
                ..
            }
        ));
    }

    #[test]
    fn unstructured_predicates_are_general() {
        for sql in [
            // distance() is not a difference form.
            "SELECT A.x, B.x FROM Sensors A, Sensors B \
             WHERE distance(A.x, A.y, B.x, B.y) < 50 ONCE",
            // OR conjunct.
            "SELECT A.x, B.x FROM Sensors A, Sensors B \
             WHERE A.temp > B.temp OR A.x > B.x ONCE",
            // Ne comparison.
            "SELECT A.x, B.x FROM Sensors A, Sensors B WHERE A.temp != B.temp ONCE",
            // Three-relation conjunct.
            "SELECT A.x, B.x, C.x FROM Sensors A, Sensors B, Sensors C \
             WHERE A.temp - B.temp > C.temp ONCE",
        ] {
            let c = classes(sql);
            assert!(matches!(c[0], PredClass::General), "{sql}");
        }
    }

    #[test]
    fn compound_sides_keep_original_subtrees() {
        let c = classes(
            "SELECT A.x, B.x FROM Sensors A, Sensors B WHERE (A.x + A.y) - B.x > 10.0 ONCE",
        );
        match &c[0] {
            PredClass::Band { lhs, rhs, .. } => {
                assert!(matches!(lhs.expr, CExpr::Bin { op: BinOp::Add, .. }));
                assert!(matches!(rhs.expr, CExpr::Col { rel: 1, .. }));
            }
            other => panic!("expected band, got {other:?}"),
        }
    }
}
