//! Abstract syntax of the query dialect.

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
}

/// Aggregate functions allowed in the SELECT list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sum.
    Sum,
    /// Arithmetic mean.
    Avg,
    /// Row count.
    Count,
}

/// An expression over attributes of the FROM relations.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64),
    /// Qualified attribute reference `qualifier.attr` (Q1's `A.temp`).
    /// Resolution to relation/attribute indices happens at compile time.
    Attr {
        /// Relation alias (or name).
        qualifier: String,
        /// Attribute name.
        attr: String,
    },
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Absolute value — both `|x|` and `abs(x)` parse to this.
    Abs(Box<Expr>),
    /// Binary arithmetic.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Euclidean distance `distance(x1, y1, x2, y2)` (used by Q1/Q2).
    Distance {
        /// The four coordinate arguments.
        args: Box<[Expr; 4]>,
    },
    /// Comparison (a predicate when it appears in WHERE).
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
}

impl Expr {
    /// Collects every qualified attribute reference in the expression.
    pub fn attrs(&self) -> Vec<(&str, &str)> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Attr { qualifier, attr } = e {
                out.push((qualifier.as_str(), attr.as_str()));
            }
        });
        out
    }

    /// Visits every sub-expression depth-first.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Number(_) | Expr::Attr { .. } => {}
            Expr::Neg(e) | Expr::Abs(e) | Expr::Not(e) => e.walk(f),
            Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Distance { args } => {
                for a in args.iter() {
                    a.walk(f);
                }
            }
        }
    }

    /// Splits a conjunction into its top-level conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::And(a, b) => {
                let mut v = a.conjuncts();
                v.extend(b.conjuncts());
                v
            }
            other => vec![other],
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// Optional aggregate wrapping the expression (Q1's `MIN(...)`).
    pub agg: Option<AggFunc>,
    /// The projected expression.
    pub expr: Expr,
    /// Optional `AS` alias.
    pub alias: Option<String>,
}

/// Temporal scope of a query (§III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Temporal {
    /// `ONCE` — a snapshot query over the current state.
    Once,
    /// `SAMPLE PERIOD x` — re-execute every `x` seconds on the most recent
    /// snapshot.
    SamplePeriod(f64),
}

/// A FROM-clause entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FromItem {
    /// Relation name.
    pub relation: String,
    /// Alias (defaults to the relation name; self-joins require distinct
    /// aliases).
    pub alias: String,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Projected items.
    pub select: Vec<SelectItem>,
    /// Input relations in order.
    pub from: Vec<FromItem>,
    /// The WHERE predicate, if any.
    pub predicate: Option<Expr>,
    /// GROUP BY expressions (empty = no grouping).
    pub group_by: Vec<Expr>,
    /// Snapshot or continuous execution.
    pub temporal: Temporal,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(q: &str, a: &str) -> Expr {
        Expr::Attr {
            qualifier: q.into(),
            attr: a.into(),
        }
    }

    #[test]
    fn conjunct_splitting() {
        let e = Expr::And(
            Box::new(Expr::And(
                Box::new(Expr::Number(1.0)),
                Box::new(Expr::Number(2.0)),
            )),
            Box::new(Expr::Or(
                Box::new(Expr::Number(3.0)),
                Box::new(Expr::Number(4.0)),
            )),
        );
        let cs = e.conjuncts();
        assert_eq!(cs.len(), 3);
        assert!(matches!(cs[2], Expr::Or(..)));
    }

    #[test]
    fn attr_collection() {
        let e = Expr::Cmp {
            op: CmpOp::Lt,
            lhs: Box::new(Expr::Abs(Box::new(Expr::Bin {
                op: BinOp::Sub,
                lhs: Box::new(attr("A", "temp")),
                rhs: Box::new(attr("B", "temp")),
            }))),
            rhs: Box::new(Expr::Number(0.3)),
        };
        assert_eq!(e.attrs(), vec![("A", "temp"), ("B", "temp")]);
    }

    #[test]
    fn distance_walk_covers_args() {
        let e = Expr::Distance {
            args: Box::new([
                attr("A", "x"),
                attr("A", "y"),
                attr("B", "x"),
                attr("B", "y"),
            ]),
        };
        assert_eq!(e.attrs().len(), 4);
    }
}
