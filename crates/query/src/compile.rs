//! Name resolution, type checking and predicate classification.

use crate::analyze::{classify, PredClass};
use crate::ast::{AggFunc, BinOp, CmpOp, Expr, Query, Temporal};
use crate::eval::{eval_expr, eval_predicate, EvalEnv};
use crate::interval::{eval_predicate_interval, Interval, Tri};
use sensjoin_relation::{AttrType, Schema};
use std::collections::BTreeSet;

/// A compiled (name-resolved) expression: attribute references are
/// `(relation index, attribute index)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// Numeric literal.
    Number(f64),
    /// Resolved attribute reference.
    Col {
        /// Index into the FROM list.
        rel: usize,
        /// Attribute index within that relation's schema.
        attr: usize,
    },
    /// Negation.
    Neg(Box<CExpr>),
    /// Absolute value.
    Abs(Box<CExpr>),
    /// Binary arithmetic.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<CExpr>,
        /// Right operand.
        rhs: Box<CExpr>,
    },
    /// Euclidean distance.
    Distance {
        /// Coordinate arguments.
        args: Box<[CExpr; 4]>,
    },
    /// Comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<CExpr>,
        /// Right operand.
        rhs: Box<CExpr>,
    },
    /// Conjunction.
    And(Box<CExpr>, Box<CExpr>),
    /// Disjunction.
    Or(Box<CExpr>, Box<CExpr>),
    /// Negation (logical).
    Not(Box<CExpr>),
}

impl CExpr {
    /// The set of relation indices referenced.
    pub fn relations(&self) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        self.walk(&mut |e| {
            if let CExpr::Col { rel, .. } = e {
                out.insert(*rel);
            }
        });
        out
    }

    /// Attribute indices of relation `rel` referenced in this expression.
    pub fn attrs_of(&self, rel: usize) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        self.walk(&mut |e| {
            if let CExpr::Col { rel: r, attr } = e {
                if *r == rel {
                    out.insert(*attr);
                }
            }
        });
        out
    }

    fn walk(&self, f: &mut impl FnMut(&CExpr)) {
        f(self);
        match self {
            CExpr::Number(_) | CExpr::Col { .. } => {}
            CExpr::Neg(e) | CExpr::Abs(e) | CExpr::Not(e) => e.walk(f),
            CExpr::Bin { lhs, rhs, .. } | CExpr::Cmp { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            CExpr::And(a, b) | CExpr::Or(a, b) => {
                a.walk(f);
                b.walk(f);
            }
            CExpr::Distance { args } => {
                for a in args.iter() {
                    a.walk(f);
                }
            }
        }
    }
}

/// Errors during compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// FROM item count differs from the supplied schemas.
    SchemaCount {
        /// FROM items.
        expected: usize,
        /// Schemas given.
        got: usize,
    },
    /// A schema's name does not match its FROM item.
    RelationMismatch {
        /// FROM position.
        index: usize,
        /// Expected relation name.
        expected: String,
        /// Schema name supplied.
        got: String,
    },
    /// Two FROM items share an alias.
    DuplicateAlias(String),
    /// An attribute qualifier matched no alias.
    UnknownQualifier(String),
    /// A referenced attribute is missing from its relation's schema.
    UnknownAttribute {
        /// The alias used.
        qualifier: String,
        /// The attribute name.
        attr: String,
    },
    /// A boolean expression appeared where a number was needed, or vice
    /// versa.
    TypeError(String),
    /// Fewer than two relations — not a join query.
    NotAJoin,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::SchemaCount { expected, got } => {
                write!(
                    f,
                    "query has {expected} relations but {got} schemas were supplied"
                )
            }
            CompileError::RelationMismatch {
                index,
                expected,
                got,
            } => {
                write!(
                    f,
                    "FROM item {index} is {expected:?} but schema {got:?} was supplied"
                )
            }
            CompileError::DuplicateAlias(a) => write!(f, "duplicate alias {a:?}"),
            CompileError::UnknownQualifier(q) => write!(f, "unknown relation alias {q:?}"),
            CompileError::UnknownAttribute { qualifier, attr } => {
                write!(f, "relation {qualifier:?} has no attribute {attr:?}")
            }
            CompileError::TypeError(msg) => write!(f, "type error: {msg}"),
            CompileError::NotAJoin => write!(f, "join queries need at least two relations"),
        }
    }
}

impl std::error::Error for CompileError {}

/// One compiled SELECT item.
#[derive(Debug, Clone)]
pub struct CompiledSelect {
    /// Optional aggregate.
    pub agg: Option<AggFunc>,
    /// The projected expression.
    pub expr: CExpr,
    /// Output column name.
    pub name: String,
}

/// A fully analyzed join query.
///
/// Compilation classifies the WHERE conjuncts:
///
/// * conjuncts over **zero** relations are folded immediately,
/// * conjuncts over **one** relation become *local predicates*, evaluated at
///   the producing node (early selection),
/// * conjuncts over **two or more** relations are *join predicates*; the
///   attributes they reference are the query's **join attributes**
///   (paper Definition 1).
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    schemas: Vec<Schema>,
    aliases: Vec<String>,
    select: Vec<CompiledSelect>,
    group_by: Vec<CExpr>,
    local_preds: Vec<Vec<CExpr>>,
    join_preds: Vec<CExpr>,
    pred_classes: Vec<PredClass>,
    join_attrs: Vec<Vec<usize>>,
    referenced: Vec<Vec<usize>>,
    temporal: Temporal,
    const_false: bool,
}

impl CompiledQuery {
    /// Compiles `query` against one schema per FROM item (positional; names
    /// must match, letting self-joins bind the same schema twice).
    pub fn compile(query: &Query, schemas: &[Schema]) -> Result<Self, CompileError> {
        if query.from.len() < 2 {
            return Err(CompileError::NotAJoin);
        }
        if schemas.len() != query.from.len() {
            return Err(CompileError::SchemaCount {
                expected: query.from.len(),
                got: schemas.len(),
            });
        }
        let mut aliases = Vec::with_capacity(query.from.len());
        for (i, item) in query.from.iter().enumerate() {
            if schemas[i].name() != item.relation {
                return Err(CompileError::RelationMismatch {
                    index: i,
                    expected: item.relation.clone(),
                    got: schemas[i].name().to_owned(),
                });
            }
            if aliases.contains(&item.alias) {
                return Err(CompileError::DuplicateAlias(item.alias.clone()));
            }
            aliases.push(item.alias.clone());
        }

        let resolver = Resolver {
            aliases: &aliases,
            schemas,
        };
        let mut select = Vec::with_capacity(query.select.len());
        for (i, item) in query.select.iter().enumerate() {
            let expr = resolver.resolve(&item.expr, false)?;
            let name = item.alias.clone().unwrap_or_else(|| format!("col{i}"));
            select.push(CompiledSelect {
                agg: item.agg,
                expr,
                name,
            });
        }
        let group_by: Vec<CExpr> = query
            .group_by
            .iter()
            .map(|e| resolver.resolve(e, false))
            .collect::<Result<_, _>>()?;
        // SQL grouping rules: without GROUP BY, aggregates must be all or
        // nothing; with GROUP BY, every bare select item must be one of the
        // grouping expressions.
        let n_agg = select.iter().filter(|s| s.agg.is_some()).count();
        if group_by.is_empty() {
            if n_agg != 0 && n_agg != select.len() {
                return Err(CompileError::TypeError(
                    "mixing aggregates and plain expressions requires GROUP BY".into(),
                ));
            }
        } else {
            for s in &select {
                if s.agg.is_none() && !group_by.contains(&s.expr) {
                    return Err(CompileError::TypeError(format!(
                        "select item {:?} is neither aggregated nor in GROUP BY",
                        s.name
                    )));
                }
            }
        }

        let mut local_preds = vec![Vec::new(); query.from.len()];
        let mut join_preds = Vec::new();
        let mut const_false = false;
        if let Some(pred) = &query.predicate {
            for conjunct in pred.conjuncts() {
                let c = resolver.resolve(conjunct, true)?;
                let rels = c.relations();
                match rels.len() {
                    0 => {
                        // Constant: fold now.
                        let env = |_: usize, _: usize| -> f64 {
                            unreachable!("constant predicate has no columns")
                        };
                        if !eval_predicate(&c, &env) {
                            const_false = true;
                        }
                    }
                    1 => {
                        let rel = *rels.first().expect("len 1");
                        local_preds[rel].push(c);
                    }
                    _ => join_preds.push(c),
                }
            }
        }

        let pred_classes: Vec<PredClass> = join_preds.iter().map(classify).collect();

        let join_attrs: Vec<Vec<usize>> = (0..query.from.len())
            .map(|rel| {
                let mut set = BTreeSet::new();
                for p in &join_preds {
                    set.extend(p.attrs_of(rel));
                }
                set.into_iter().collect()
            })
            .collect();

        let referenced: Vec<Vec<usize>> = (0..query.from.len())
            .map(|rel| {
                let mut set = BTreeSet::new();
                for s in &select {
                    set.extend(s.expr.attrs_of(rel));
                }
                for g in &group_by {
                    set.extend(g.attrs_of(rel));
                }
                for p in &join_preds {
                    set.extend(p.attrs_of(rel));
                }
                for p in &local_preds[rel] {
                    set.extend(p.attrs_of(rel));
                }
                set.into_iter().collect()
            })
            .collect();

        Ok(Self {
            schemas: schemas.to_vec(),
            aliases,
            select,
            group_by,
            local_preds,
            join_preds,
            pred_classes,
            join_attrs,
            referenced,
            temporal: query.temporal,
            const_false,
        })
    }

    /// Number of relations in the FROM clause.
    pub fn num_relations(&self) -> usize {
        self.schemas.len()
    }

    /// Schema of relation `rel`.
    pub fn schema(&self, rel: usize) -> &Schema {
        &self.schemas[rel]
    }

    /// Alias of relation `rel`.
    pub fn alias(&self, rel: usize) -> &str {
        &self.aliases[rel]
    }

    /// The compiled SELECT list.
    pub fn select(&self) -> &[CompiledSelect] {
        &self.select
    }

    /// Whether every SELECT item is an aggregate (Q1-style query). Grouped
    /// queries are not "aggregate queries" in this sense: they produce one
    /// row per group.
    pub fn is_aggregate(&self) -> bool {
        self.group_by.is_empty()
            && !self.select.is_empty()
            && self.select.iter().all(|s| s.agg.is_some())
    }

    /// The resolved GROUP BY expressions (empty = no grouping).
    pub fn group_by(&self) -> &[CExpr] {
        &self.group_by
    }

    /// Whether the query groups its output.
    pub fn has_group_by(&self) -> bool {
        !self.group_by.is_empty()
    }

    /// Evaluates the grouping key on a binding.
    pub fn eval_group_key(&self, env: &impl EvalEnv) -> Vec<f64> {
        self.group_by.iter().map(|g| eval_expr(g, env)).collect()
    }

    /// Folds one group's rows into an output row (grouped queries): each
    /// aggregate item folds over the group, each bare item takes its
    /// (group-constant) value from the first row. `rows` must be non-empty.
    pub fn fold_group(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        assert!(self.has_group_by() && !rows.is_empty());
        self.select
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let col = rows.iter().map(|r| r[i]);
                match s.agg {
                    None => rows[0][i],
                    Some(AggFunc::Count) => rows.len() as f64,
                    Some(AggFunc::Min) => col.fold(f64::INFINITY, f64::min),
                    Some(AggFunc::Max) => col.fold(f64::NEG_INFINITY, f64::max),
                    Some(AggFunc::Sum) => col.sum(),
                    Some(AggFunc::Avg) => col.sum::<f64>() / rows.len() as f64,
                }
            })
            .collect()
    }

    /// Join predicates (conjuncts over ≥ 2 relations).
    pub fn join_preds(&self) -> &[CExpr] {
        &self.join_preds
    }

    /// Partitioning classes of the join predicates (parallel to
    /// [`CompiledQuery::join_preds`]): equi / band predicates carry the
    /// structure a partitioned engine can index on; everything else is
    /// [`PredClass::General`].
    pub fn pred_classes(&self) -> &[PredClass] {
        &self.pred_classes
    }

    /// Local predicates of relation `rel`.
    pub fn local_preds(&self, rel: usize) -> &[CExpr] {
        &self.local_preds[rel]
    }

    /// Join-attribute indices of relation `rel`, sorted.
    pub fn join_attrs(&self, rel: usize) -> &[usize] {
        &self.join_attrs[rel]
    }

    /// Attributes of `rel` referenced anywhere in the query — the early
    /// projection both join methods apply before shipping tuples.
    pub fn referenced_attrs(&self, rel: usize) -> &[usize] {
        &self.referenced[rel]
    }

    /// Wire size of a projected (complete) tuple of `rel`.
    pub fn tuple_wire_size(&self, rel: usize) -> usize {
        self.schemas[rel].projected_wire_size(&self.referenced[rel])
    }

    /// Wire size of a raw join-attribute tuple of `rel` (without the
    /// quadtree representation).
    pub fn join_attr_wire_size(&self, rel: usize) -> usize {
        self.schemas[rel].projected_wire_size(&self.join_attrs[rel])
    }

    /// The temporal clause.
    pub fn temporal(&self) -> Temporal {
        self.temporal
    }

    /// Whether a constant WHERE conjunct is false (empty result).
    pub fn is_const_false(&self) -> bool {
        self.const_false
    }

    /// Evaluates all local predicates of `rel` on a tuple's values
    /// (`values[i]` = attribute `i` of the schema).
    pub fn eval_local(&self, rel: usize, values: &[f64]) -> bool {
        let env = |r: usize, a: usize| -> f64 {
            debug_assert_eq!(r, rel, "local predicate touching another relation");
            values[a]
        };
        self.local_preds[rel]
            .iter()
            .all(|p| eval_predicate(p, &env))
    }

    /// Evaluates the join predicates on a full binding.
    pub fn eval_join(&self, env: &impl EvalEnv) -> bool {
        !self.const_false && self.join_preds.iter().all(|p| eval_predicate(p, env))
    }

    /// Conservative cell-level join test: `true` iff every join predicate is
    /// *possibly* satisfied when each attribute only known up to an interval.
    pub fn possibly_joins(&self, env: &impl Fn(usize, usize) -> Interval) -> bool {
        !self.const_false
            && self
                .join_preds
                .iter()
                .all(|p| eval_predicate_interval(p, env) != Tri::False)
    }

    /// Evaluates the SELECT expressions on a binding (pre-aggregation).
    pub fn eval_select_row(&self, env: &impl EvalEnv) -> Vec<f64> {
        self.select
            .iter()
            .map(|s| eval_expr(&s.expr, env))
            .collect()
    }

    /// Folds aggregate SELECT items over the produced rows. `None` entries
    /// mean SQL NULL (aggregate over an empty input, except COUNT).
    ///
    /// # Panics
    /// Panics if the query is not an aggregate query.
    pub fn aggregate(&self, rows: &[Vec<f64>]) -> Vec<Option<f64>> {
        assert!(
            self.is_aggregate(),
            "aggregate() requires an aggregate query"
        );
        self.select
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let col = rows.iter().map(|r| r[i]);
                match s.agg.expect("checked aggregate") {
                    AggFunc::Count => Some(rows.len() as f64),
                    AggFunc::Min => col.reduce(f64::min),
                    AggFunc::Max => col.reduce(f64::max),
                    AggFunc::Sum => {
                        if rows.is_empty() {
                            None
                        } else {
                            Some(col.sum())
                        }
                    }
                    AggFunc::Avg => {
                        if rows.is_empty() {
                            None
                        } else {
                            Some(col.sum::<f64>() / rows.len() as f64)
                        }
                    }
                }
            })
            .collect()
    }

    /// The layout of the shared quantization space: deduplicated join-
    /// attribute dimensions (name + type, first-seen order) and, per
    /// relation, the dimension index of each of its join attributes
    /// (parallel to [`CompiledQuery::join_attrs`]).
    ///
    /// Join attributes with equal names and types share a dimension — for
    /// the homogeneous self-joins of the paper's evaluation this reproduces
    /// its single shared space exactly; heterogeneous queries get extra
    /// dimensions which foreign points fill with cell 0.
    pub fn join_layout(&self) -> (Vec<(String, AttrType)>, Vec<Vec<usize>>) {
        let mut dims: Vec<(String, AttrType)> = Vec::new();
        let mut maps = Vec::with_capacity(self.num_relations());
        for rel in 0..self.num_relations() {
            let mut map = Vec::with_capacity(self.join_attrs[rel].len());
            for &a in &self.join_attrs[rel] {
                let attr = &self.schemas[rel].attrs()[a];
                let key = (attr.name().to_owned(), attr.ty());
                let dim = match dims.iter().position(|d| *d == key) {
                    Some(i) => i,
                    None => {
                        dims.push(key);
                        dims.len() - 1
                    }
                };
                map.push(dim);
            }
            maps.push(map);
        }
        (dims, maps)
    }
}

struct Resolver<'a> {
    aliases: &'a [String],
    schemas: &'a [Schema],
}

impl Resolver<'_> {
    fn resolve(&self, expr: &Expr, want_bool: bool) -> Result<CExpr, CompileError> {
        let c = self.go(expr)?;
        let is_bool = matches!(
            c,
            CExpr::Cmp { .. } | CExpr::And(..) | CExpr::Or(..) | CExpr::Not(..)
        );
        if is_bool != want_bool {
            return Err(CompileError::TypeError(format!(
                "expected {} expression, found {}",
                if want_bool { "boolean" } else { "numeric" },
                if is_bool { "boolean" } else { "numeric" },
            )));
        }
        Ok(c)
    }

    fn num(&self, expr: &Expr) -> Result<CExpr, CompileError> {
        self.resolve(expr, false)
    }

    fn boolean(&self, expr: &Expr) -> Result<CExpr, CompileError> {
        self.resolve(expr, true)
    }

    fn go(&self, expr: &Expr) -> Result<CExpr, CompileError> {
        Ok(match expr {
            Expr::Number(n) => CExpr::Number(*n),
            Expr::Attr { qualifier, attr } => {
                let rel = self
                    .aliases
                    .iter()
                    .position(|a| a == qualifier)
                    .ok_or_else(|| CompileError::UnknownQualifier(qualifier.clone()))?;
                let idx = self.schemas[rel].index_of(attr).ok_or_else(|| {
                    CompileError::UnknownAttribute {
                        qualifier: qualifier.clone(),
                        attr: attr.clone(),
                    }
                })?;
                CExpr::Col { rel, attr: idx }
            }
            Expr::Neg(e) => CExpr::Neg(Box::new(self.num(e)?)),
            Expr::Abs(e) => CExpr::Abs(Box::new(self.num(e)?)),
            Expr::Bin { op, lhs, rhs } => CExpr::Bin {
                op: *op,
                lhs: Box::new(self.num(lhs)?),
                rhs: Box::new(self.num(rhs)?),
            },
            Expr::Distance { args } => {
                let [a, b, c, d] = args.as_ref();
                CExpr::Distance {
                    args: Box::new([self.num(a)?, self.num(b)?, self.num(c)?, self.num(d)?]),
                }
            }
            Expr::Cmp { op, lhs, rhs } => CExpr::Cmp {
                op: *op,
                lhs: Box::new(self.num(lhs)?),
                rhs: Box::new(self.num(rhs)?),
            },
            Expr::And(a, b) => CExpr::And(Box::new(self.boolean(a)?), Box::new(self.boolean(b)?)),
            Expr::Or(a, b) => CExpr::Or(Box::new(self.boolean(a)?), Box::new(self.boolean(b)?)),
            Expr::Not(e) => CExpr::Not(Box::new(self.boolean(e)?)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use sensjoin_relation::Attribute;

    fn sensors_schema() -> Schema {
        Schema::new(
            "Sensors",
            vec![
                Attribute::new("x", AttrType::Meters),
                Attribute::new("y", AttrType::Meters),
                Attribute::new("temp", AttrType::Celsius),
                Attribute::new("hum", AttrType::Percent),
                Attribute::new("pres", AttrType::Hectopascal),
            ],
        )
    }

    fn compile(sql: &str) -> CompiledQuery {
        let q = parse(sql).unwrap();
        let schemas: Vec<Schema> = q.from.iter().map(|_| sensors_schema()).collect();
        CompiledQuery::compile(&q, &schemas).unwrap()
    }

    #[test]
    fn q1_analysis() {
        let cq = compile(
            "SELECT MIN(distance(A.x, A.y, B.x, B.y)) FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 10.0 ONCE",
        );
        assert!(cq.is_aggregate());
        assert_eq!(cq.join_preds().len(), 1);
        assert_eq!(cq.join_attrs(0), &[2]); // temp
        assert_eq!(cq.join_attrs(1), &[2]);
        // Referenced: x, y (select) + temp (join) = 3 of 5 -> the paper's
        // "33% join attributes" default (1 join attr of 3 overall).
        assert_eq!(cq.referenced_attrs(0), &[0, 1, 2]);
        assert_eq!(cq.tuple_wire_size(0), 6);
        assert_eq!(cq.join_attr_wire_size(0), 2);
    }

    #[test]
    fn q2_analysis() {
        let cq = compile(
            "SELECT |A.hum - B.hum|, |A.pres - B.pres| FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.3 AND distance(A.x, A.y, B.x, B.y) > 100 ONCE",
        );
        assert!(!cq.is_aggregate());
        assert_eq!(cq.join_preds().len(), 2);
        assert_eq!(cq.join_attrs(0), &[0, 1, 2]); // x, y, temp
                                                  // Referenced: x y temp hum pres = 5; 3 join attrs of 5 -> 60%.
        assert_eq!(cq.referenced_attrs(0).len(), 5);
    }

    #[test]
    fn local_vs_join_predicates() {
        let cq = compile(
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE A.hum > 50 AND B.hum > 50 AND A.temp < B.temp AND 1 < 2 ONCE",
        );
        assert_eq!(cq.local_preds(0).len(), 1);
        assert_eq!(cq.local_preds(1).len(), 1);
        assert_eq!(cq.join_preds().len(), 1);
        assert!(!cq.is_const_false());
        assert!(cq.eval_local(0, &[0.0, 0.0, 21.0, 60.0, 1000.0]));
        assert!(!cq.eval_local(0, &[0.0, 0.0, 21.0, 40.0, 1000.0]));
    }

    #[test]
    fn const_false_detected() {
        let cq = compile("SELECT A.temp, B.temp FROM Sensors A, Sensors B WHERE 2 < 1 ONCE");
        assert!(cq.is_const_false());
        let env = |_: usize, _: usize| 0.0;
        assert!(!cq.eval_join(&env));
    }

    #[test]
    fn join_layout_shares_dimensions_for_self_join() {
        let cq = compile(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.3 AND distance(A.x, A.y, B.x, B.y) > 100 ONCE",
        );
        let (dims, maps) = cq.join_layout();
        assert_eq!(dims.len(), 3); // x, y, temp shared by A and B
        assert_eq!(maps[0], maps[1]);
    }

    #[test]
    fn eval_join_pair() {
        let cq = compile(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.5 ONCE",
        );
        let a = [0.0, 0.0, 21.3, 40.0, 1000.0];
        let b = [5.0, 5.0, 21.6, 45.0, 1001.0];
        let env = move |rel: usize, attr: usize| if rel == 0 { a[attr] } else { b[attr] };
        assert!(cq.eval_join(&env));
        assert_eq!(cq.eval_select_row(&env), vec![40.0, 45.0]);
        let b2 = [5.0, 5.0, 25.0, 45.0, 1001.0];
        let env2 = move |rel: usize, attr: usize| if rel == 0 { a[attr] } else { b2[attr] };
        assert!(!cq.eval_join(&env2));
    }

    #[test]
    fn possibly_joins_is_conservative() {
        let cq = compile(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.5 ONCE",
        );
        // Cells of width 1 around 21 and 22: |diff| in [0, 2] -> maybe.
        let env = |rel: usize, _attr: usize| {
            if rel == 0 {
                Interval::new(21.0, 22.0)
            } else {
                Interval::new(22.0, 23.0)
            }
        };
        assert!(cq.possibly_joins(&env));
        // Cells far apart -> impossible.
        let env2 = |rel: usize, _attr: usize| {
            if rel == 0 {
                Interval::new(10.0, 11.0)
            } else {
                Interval::new(30.0, 31.0)
            }
        };
        assert!(!cq.possibly_joins(&env2));
    }

    #[test]
    fn aggregate_folding() {
        let cq = compile(
            "SELECT MIN(A.temp), MAX(B.temp), AVG(A.temp), COUNT(A.temp), SUM(B.temp) \
             FROM Sensors A, Sensors B WHERE A.temp < B.temp ONCE",
        );
        let rows = vec![vec![1.0, 5.0, 1.0, 0.0, 5.0], vec![3.0, 7.0, 3.0, 0.0, 7.0]];
        let agg = cq.aggregate(&rows);
        assert_eq!(
            agg,
            vec![Some(1.0), Some(7.0), Some(2.0), Some(2.0), Some(12.0)]
        );
        let empty = cq.aggregate(&[]);
        assert_eq!(empty, vec![None, None, None, Some(0.0), None]);
    }

    #[test]
    fn errors() {
        let q = parse("SELECT A.temp, B.temp FROM Sensors A, Sensors B ONCE").unwrap();
        assert!(matches!(
            CompiledQuery::compile(&q, &[sensors_schema()]),
            Err(CompileError::SchemaCount { .. })
        ));
        let single = parse("SELECT Sensors.temp FROM Sensors ONCE").unwrap();
        assert!(matches!(
            CompiledQuery::compile(&single, &[sensors_schema()]),
            Err(CompileError::NotAJoin)
        ));
        let q2 = parse("SELECT A.nope, B.temp FROM Sensors A, Sensors B ONCE").unwrap();
        assert!(matches!(
            CompiledQuery::compile(&q2, &[sensors_schema(), sensors_schema()]),
            Err(CompileError::UnknownAttribute { .. })
        ));
        let q3 = parse("SELECT C.temp, B.temp FROM Sensors A, Sensors B ONCE").unwrap();
        assert!(matches!(
            CompiledQuery::compile(&q3, &[sensors_schema(), sensors_schema()]),
            Err(CompileError::UnknownQualifier(_))
        ));
        let q4 = parse("SELECT A.temp, A.temp FROM Sensors A, Sensors A ONCE").unwrap();
        assert!(matches!(
            CompiledQuery::compile(&q4, &[sensors_schema(), sensors_schema()]),
            Err(CompileError::DuplicateAlias(_))
        ));
        let q5 = parse("SELECT A.temp < B.temp FROM Sensors A, Sensors B ONCE").unwrap();
        assert!(matches!(
            CompiledQuery::compile(&q5, &[sensors_schema(), sensors_schema()]),
            Err(CompileError::TypeError(_))
        ));
        let q6 =
            parse("SELECT A.temp, B.temp FROM Sensors A, Sensors B WHERE A.temp + 1 ONCE").unwrap();
        assert!(matches!(
            CompiledQuery::compile(&q6, &[sensors_schema(), sensors_schema()]),
            Err(CompileError::TypeError(_))
        ));
        let q7 = parse("SELECT A.temp, B.temp FROM Sensors A, Other B ONCE").unwrap();
        assert!(matches!(
            CompiledQuery::compile(&q7, &[sensors_schema(), sensors_schema()]),
            Err(CompileError::RelationMismatch { .. })
        ));
    }
}
