//! Scalar evaluation of compiled expressions.

use crate::compile::CExpr;
use crate::{BinOp, CmpOp};

/// Supplies the concrete value of attribute `attr` of relation `rel` for the
/// current binding (typically a pair of tuples in a two-way join).
pub trait EvalEnv {
    /// The value of `(rel, attr)`.
    fn value(&self, rel: usize, attr: usize) -> f64;
}

impl<F: Fn(usize, usize) -> f64> EvalEnv for F {
    fn value(&self, rel: usize, attr: usize) -> f64 {
        self(rel, attr)
    }
}

/// Evaluates an arithmetic expression.
///
/// # Panics
/// Panics on boolean nodes — the compiler rejects those in arithmetic
/// positions.
pub fn eval_expr(expr: &CExpr, env: &impl EvalEnv) -> f64 {
    match expr {
        CExpr::Number(n) => *n,
        CExpr::Col { rel, attr } => env.value(*rel, *attr),
        CExpr::Neg(e) => -eval_expr(e, env),
        CExpr::Abs(e) => eval_expr(e, env).abs(),
        CExpr::Bin { op, lhs, rhs } => {
            let l = eval_expr(lhs, env);
            let r = eval_expr(rhs, env);
            match op {
                BinOp::Add => l + r,
                BinOp::Sub => l - r,
                BinOp::Mul => l * r,
                BinOp::Div => l / r,
            }
        }
        CExpr::Distance { args } => {
            let [x1, y1, x2, y2] = args.as_ref();
            let dx = eval_expr(x1, env) - eval_expr(x2, env);
            let dy = eval_expr(y1, env) - eval_expr(y2, env);
            (dx * dx + dy * dy).sqrt()
        }
        CExpr::Cmp { .. } | CExpr::And(..) | CExpr::Or(..) | CExpr::Not(..) => {
            unreachable!("boolean expression in arithmetic position (rejected at compile)")
        }
    }
}

/// Evaluates a predicate. NaN comparisons are false (SQL-unknown collapses
/// to false for filtering purposes).
pub fn eval_predicate(expr: &CExpr, env: &impl EvalEnv) -> bool {
    match expr {
        CExpr::Cmp { op, lhs, rhs } => {
            let l = eval_expr(lhs, env);
            let r = eval_expr(rhs, env);
            match op {
                CmpOp::Lt => l < r,
                CmpOp::Le => l <= r,
                CmpOp::Gt => l > r,
                CmpOp::Ge => l >= r,
                CmpOp::Eq => l == r,
                CmpOp::Ne => l != r,
            }
        }
        CExpr::And(a, b) => eval_predicate(a, env) && eval_predicate(b, env),
        CExpr::Or(a, b) => eval_predicate(a, env) || eval_predicate(b, env),
        CExpr::Not(e) => !eval_predicate(e, env),
        other => unreachable!("arithmetic expression {other:?} in predicate position"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(rel: usize, attr: usize) -> CExpr {
        CExpr::Col { rel, attr }
    }

    #[test]
    fn arithmetic_evaluation() {
        // |(0,0) - (1,0)| * 2 with env values 5 and 8.
        let e = CExpr::Bin {
            op: BinOp::Mul,
            lhs: Box::new(CExpr::Abs(Box::new(CExpr::Bin {
                op: BinOp::Sub,
                lhs: Box::new(col(0, 0)),
                rhs: Box::new(col(1, 0)),
            }))),
            rhs: Box::new(CExpr::Number(2.0)),
        };
        let env = |rel: usize, _attr: usize| if rel == 0 { 5.0 } else { 8.0 };
        assert_eq!(eval_expr(&e, &env), 6.0);
    }

    #[test]
    fn distance_evaluation() {
        let e = CExpr::Distance {
            args: Box::new([
                CExpr::Number(0.0),
                CExpr::Number(0.0),
                CExpr::Number(3.0),
                CExpr::Number(4.0),
            ]),
        };
        let env = |_: usize, _: usize| 0.0;
        assert!((eval_expr(&e, &env) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn predicate_logic() {
        let lt = CExpr::Cmp {
            op: CmpOp::Lt,
            lhs: Box::new(CExpr::Number(1.0)),
            rhs: Box::new(CExpr::Number(2.0)),
        };
        let gt = CExpr::Cmp {
            op: CmpOp::Gt,
            lhs: Box::new(CExpr::Number(1.0)),
            rhs: Box::new(CExpr::Number(2.0)),
        };
        let env = |_: usize, _: usize| 0.0;
        assert!(eval_predicate(&lt, &env));
        assert!(!eval_predicate(&gt, &env));
        assert!(!eval_predicate(
            &CExpr::And(Box::new(lt.clone()), Box::new(gt.clone())),
            &env
        ));
        assert!(eval_predicate(
            &CExpr::Or(Box::new(lt), Box::new(gt.clone())),
            &env
        ));
        assert!(eval_predicate(&CExpr::Not(Box::new(gt)), &env));
    }
}
