//! Interval arithmetic and three-valued predicate evaluation.
//!
//! The pre-join at the base station operates on *quantized* join-attribute
//! values — each value is only known up to its quantization cell. To decide
//! whether a pair of cells can contain joining tuples, every join expression
//! is evaluated over closed intervals; comparisons return three-valued truth
//! ([`Tri`]). A pair survives the pre-join iff the predicate is *possibly*
//! true. Over-approximation is safe (false positives: complete tuples are
//! shipped unnecessarily, §V-B footnote 2); under-approximation would lose
//! result rows and is impossible by construction: every interval operation
//! here returns a superset of the true image.

use crate::compile::CExpr;
use crate::{BinOp, CmpOp};

/// A closed interval `[lo, hi]`; bounds may be infinite (boundary
/// quantization cells extend to ±∞ to absorb range clamping).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

#[allow(clippy::should_implement_trait)] // named set ops, not operator overloads
impl Interval {
    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    /// Panics (debug) if `lo > hi` or a bound is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        debug_assert!(!lo.is_nan() && !hi.is_nan());
        debug_assert!(lo <= hi, "invalid interval [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Self::new(v, v)
    }

    /// The whole real line.
    pub fn whole() -> Self {
        Self {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Interval addition.
    pub fn add(self, o: Interval) -> Interval {
        Interval::new(add_lo(self.lo, o.lo), add_hi(self.hi, o.hi))
    }

    /// Interval subtraction.
    pub fn sub(self, o: Interval) -> Interval {
        Interval::new(add_lo(self.lo, -o.hi), add_hi(self.hi, -o.lo))
    }

    /// Negation.
    pub fn neg(self) -> Interval {
        Interval::new(-self.hi, -self.lo)
    }

    /// Absolute value.
    pub fn abs(self) -> Interval {
        if self.lo >= 0.0 {
            self
        } else if self.hi <= 0.0 {
            self.neg()
        } else {
            Interval::new(0.0, self.hi.max(-self.lo))
        }
    }

    /// Multiplication (inf-safe: `0 · ±∞` is treated as 0, which is correct
    /// for images of real sets).
    pub fn mul(self, o: Interval) -> Interval {
        let cands = [
            mul1(self.lo, o.lo),
            mul1(self.lo, o.hi),
            mul1(self.hi, o.lo),
            mul1(self.hi, o.hi),
        ];
        let lo = cands.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = cands.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Interval::new(lo, hi)
    }

    /// Square (tighter than `mul(self)` when the interval spans zero).
    pub fn square(self) -> Interval {
        if self.lo >= 0.0 {
            Interval::new(mul1(self.lo, self.lo), mul1(self.hi, self.hi))
        } else if self.hi <= 0.0 {
            Interval::new(mul1(self.hi, self.hi), mul1(self.lo, self.lo))
        } else {
            Interval::new(0.0, mul1(self.lo, self.lo).max(mul1(self.hi, self.hi)))
        }
    }

    /// Division; if the divisor contains zero the result widens to the whole
    /// line (conservative).
    pub fn div(self, o: Interval) -> Interval {
        if o.contains(0.0) {
            return Interval::whole();
        }
        let inv = Interval::new(1.0 / o.hi, 1.0 / o.lo);
        self.mul(inv)
    }

    /// Square root of the non-negative part (domain-clamped: callers only
    /// apply it to squared sums).
    pub fn sqrt(self) -> Interval {
        Interval::new(self.lo.max(0.0).sqrt(), self.hi.max(0.0).sqrt())
    }
}

// inf-safe helpers: -inf + inf can only arise from programmer error here
// because we always add lows to lows and highs to highs of valid intervals —
// but clamp defensively anyway.
fn add_lo(a: f64, b: f64) -> f64 {
    let s = a + b;
    if s.is_nan() {
        f64::NEG_INFINITY
    } else {
        s
    }
}

fn add_hi(a: f64, b: f64) -> f64 {
    let s = a + b;
    if s.is_nan() {
        f64::INFINITY
    } else {
        s
    }
}

fn mul1(a: f64, b: f64) -> f64 {
    if a == 0.0 || b == 0.0 {
        0.0
    } else {
        a * b
    }
}

/// Three-valued truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// Certainly true for all values in the cells.
    True,
    /// Certainly false for all values in the cells.
    False,
    /// Depends on the concrete values.
    Maybe,
}

#[allow(clippy::should_implement_trait)] // Kleene logic, not std::ops::Not
impl Tri {
    /// Kleene conjunction.
    pub fn and(self, o: Tri) -> Tri {
        match (self, o) {
            (Tri::False, _) | (_, Tri::False) => Tri::False,
            (Tri::True, Tri::True) => Tri::True,
            _ => Tri::Maybe,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, o: Tri) -> Tri {
        match (self, o) {
            (Tri::True, _) | (_, Tri::True) => Tri::True,
            (Tri::False, Tri::False) => Tri::False,
            _ => Tri::Maybe,
        }
    }

    /// Negation.
    pub fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Maybe => Tri::Maybe,
        }
    }

    /// Whether the predicate could hold — the pre-join's survival test.
    pub fn possible(self) -> bool {
        self != Tri::False
    }
}

/// Evaluates an arithmetic expression over intervals. `env` supplies the
/// interval of attribute `attr` of relation `rel`.
pub fn eval_expr_interval(expr: &CExpr, env: &impl Fn(usize, usize) -> Interval) -> Interval {
    match expr {
        CExpr::Number(n) => Interval::point(*n),
        CExpr::Col { rel, attr } => env(*rel, *attr),
        CExpr::Neg(e) => eval_expr_interval(e, env).neg(),
        CExpr::Abs(e) => eval_expr_interval(e, env).abs(),
        CExpr::Bin { op, lhs, rhs } => {
            let l = eval_expr_interval(lhs, env);
            let r = eval_expr_interval(rhs, env);
            match op {
                BinOp::Add => l.add(r),
                BinOp::Sub => l.sub(r),
                BinOp::Mul => l.mul(r),
                BinOp::Div => l.div(r),
            }
        }
        CExpr::Distance { args } => {
            let [x1, y1, x2, y2] = args.as_ref();
            let dx = eval_expr_interval(x1, env).sub(eval_expr_interval(x2, env));
            let dy = eval_expr_interval(y1, env).sub(eval_expr_interval(y2, env));
            dx.square().add(dy.square()).sqrt()
        }
        CExpr::Cmp { .. } | CExpr::And(..) | CExpr::Or(..) | CExpr::Not(..) => {
            unreachable!("boolean expression in arithmetic position (rejected at compile)")
        }
    }
}

/// Evaluates a predicate over intervals, returning three-valued truth.
pub fn eval_predicate_interval(expr: &CExpr, env: &impl Fn(usize, usize) -> Interval) -> Tri {
    match expr {
        CExpr::Cmp { op, lhs, rhs } => {
            let l = eval_expr_interval(lhs, env);
            let r = eval_expr_interval(rhs, env);
            match op {
                CmpOp::Lt => cmp_lt(l, r),
                CmpOp::Le => cmp_le(l, r),
                CmpOp::Gt => cmp_lt(r, l),
                CmpOp::Ge => cmp_le(r, l),
                CmpOp::Eq => cmp_eq(l, r),
                CmpOp::Ne => cmp_eq(l, r).not(),
            }
        }
        CExpr::And(a, b) => eval_predicate_interval(a, env).and(eval_predicate_interval(b, env)),
        CExpr::Or(a, b) => eval_predicate_interval(a, env).or(eval_predicate_interval(b, env)),
        CExpr::Not(e) => eval_predicate_interval(e, env).not(),
        other => unreachable!("arithmetic expression {other:?} in predicate position"),
    }
}

fn cmp_lt(l: Interval, r: Interval) -> Tri {
    if l.hi < r.lo {
        Tri::True
    } else if l.lo >= r.hi {
        Tri::False
    } else {
        Tri::Maybe
    }
}

fn cmp_le(l: Interval, r: Interval) -> Tri {
    if l.hi <= r.lo {
        Tri::True
    } else if l.lo > r.hi {
        Tri::False
    } else {
        Tri::Maybe
    }
}

fn cmp_eq(l: Interval, r: Interval) -> Tri {
    if l.hi < r.lo || r.hi < l.lo {
        Tri::False
    } else if l.lo == l.hi && r.lo == r.hi && l.lo == r.lo {
        Tri::True
    } else {
        Tri::Maybe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn arithmetic() {
        assert_eq!(iv(1.0, 2.0).add(iv(10.0, 20.0)), iv(11.0, 22.0));
        assert_eq!(iv(1.0, 2.0).sub(iv(10.0, 20.0)), iv(-19.0, -8.0));
        assert_eq!(iv(-2.0, 3.0).mul(iv(4.0, 5.0)), iv(-10.0, 15.0));
        assert_eq!(iv(-2.0, 3.0).abs(), iv(0.0, 3.0));
        assert_eq!(iv(-3.0, -1.0).abs(), iv(1.0, 3.0));
        assert_eq!(iv(-2.0, 3.0).square(), iv(0.0, 9.0));
        assert_eq!(iv(4.0, 9.0).sqrt(), iv(2.0, 3.0));
    }

    #[test]
    fn division_with_zero_divisor_widens() {
        assert_eq!(iv(1.0, 2.0).div(iv(-1.0, 1.0)), Interval::whole());
        assert_eq!(iv(4.0, 8.0).div(iv(2.0, 4.0)), iv(1.0, 4.0));
    }

    #[test]
    fn infinite_bounds_are_safe() {
        let unbounded = iv(f64::NEG_INFINITY, 5.0);
        let r = unbounded.mul(iv(0.0, 2.0));
        assert_eq!(r.lo, f64::NEG_INFINITY);
        assert_eq!(r.hi, 10.0);
        let s = unbounded.add(iv(1.0, f64::INFINITY));
        assert_eq!(s, Interval::whole());
        assert_eq!(iv(0.0, f64::INFINITY).square().hi, f64::INFINITY);
    }

    #[test]
    fn tri_logic() {
        use Tri::*;
        assert_eq!(True.and(Maybe), Maybe);
        assert_eq!(False.and(Maybe), False);
        assert_eq!(True.or(Maybe), True);
        assert_eq!(False.or(Maybe), Maybe);
        assert_eq!(Maybe.not(), Maybe);
        assert!(Maybe.possible());
        assert!(!False.possible());
    }

    #[test]
    fn comparisons() {
        assert_eq!(cmp_lt(iv(1.0, 2.0), iv(3.0, 4.0)), Tri::True);
        assert_eq!(cmp_lt(iv(3.0, 4.0), iv(1.0, 2.0)), Tri::False);
        assert_eq!(cmp_lt(iv(1.0, 3.0), iv(2.0, 4.0)), Tri::Maybe);
        // Touching intervals: 2 < 2 is false but 1.9 < 2 possible.
        assert_eq!(cmp_lt(iv(1.0, 2.0), iv(2.0, 4.0)), Tri::Maybe);
        assert_eq!(cmp_le(iv(1.0, 2.0), iv(2.0, 4.0)), Tri::True);
        assert_eq!(cmp_eq(iv(1.0, 2.0), iv(3.0, 4.0)), Tri::False);
        assert_eq!(cmp_eq(iv(2.0, 2.0), iv(2.0, 2.0)), Tri::True);
        assert_eq!(cmp_eq(iv(1.0, 3.0), iv(2.0, 5.0)), Tri::Maybe);
    }
}
