#![warn(missing_docs)]

//! Declarative join queries over sensor relations.
//!
//! The paper's interface (§III) is a TinyDB-flavored SQL dialect:
//!
//! ```sql
//! SELECT R1.attrs, ..., Rn.attrs
//! FROM Relation_1 R1, ..., Relation_n Rn
//! WHERE preds(R1) AND ... AND preds(Rn)
//!   AND join-exprs(R1.join-attrs, ..., Rn.join-attrs)
//! {SAMPLE PERIOD x | ONCE}
//! ```
//!
//! This crate provides:
//!
//! * a hand-written tokenizer and recursive-descent parser ([`parse`]) for that
//!   dialect, including `|x|` absolute-value bars, the `distance(x1,y1,x2,y2)`
//!   builtin and `MIN`/`MAX`/`SUM`/`AVG`/`COUNT` aggregates (queries Q1/Q2
//!   of the paper parse verbatim),
//! * the [`ast`] — untyped expressions over qualified attribute references,
//! * [`CompiledQuery`] — name resolution against schemas, conjunct
//!   classification into *local* predicates (single relation, evaluated at
//!   the node, §III "Optionally, the WHERE-clauses can narrow down the
//!   scope") and *join* predicates (≥ 2 relations), and extraction of the
//!   per-relation **join attributes** (paper Definition 1),
//! * scalar predicate/expression evaluation over tuple bindings, and
//! * [`interval`] — interval-arithmetic evaluation returning three-valued
//!   truth. This generalizes the paper's footnote 2 (widening Θ-join
//!   constants to the quantization resolution) to *arbitrary* join
//!   expressions: the pre-join asks "can any concrete values inside these
//!   quantization cells satisfy the condition?", which can yield false
//!   positives but never false negatives.
//!
//! # Example
//!
//! ```
//! use sensjoin_query::{parse, CompiledQuery};
//! use sensjoin_relation::{Schema, Attribute, AttrType};
//!
//! let q = parse(
//!     "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
//!      WHERE |A.temp - B.temp| < 0.3 \
//!      AND distance(A.x, A.y, B.x, B.y) > 100 ONCE",
//! ).unwrap();
//! let schema = Schema::new("Sensors", vec![
//!     Attribute::new("x", AttrType::Meters),
//!     Attribute::new("y", AttrType::Meters),
//!     Attribute::new("temp", AttrType::Celsius),
//!     Attribute::new("hum", AttrType::Percent),
//! ]);
//! let cq = CompiledQuery::compile(&q, &[schema.clone(), schema]).unwrap();
//! assert_eq!(cq.join_attrs(0), &[0, 1, 2]); // x, y, temp
//! assert_eq!(cq.num_relations(), 2);
//! ```

pub mod analyze;
pub mod ast;
mod compile;
mod eval;
pub mod interval;
mod parser;
mod token;

pub use analyze::{BandForm, PredClass, PredSide};
pub use ast::{AggFunc, BinOp, CmpOp, Expr, Query, SelectItem, Temporal};
pub use compile::{CExpr, CompileError, CompiledQuery, CompiledSelect};
pub use eval::{eval_expr, eval_predicate, EvalEnv};
pub use interval::{eval_expr_interval, eval_predicate_interval, Interval, Tri};
pub use parser::{parse, ParseError};
