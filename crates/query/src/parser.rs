//! Recursive-descent parser for the query dialect.

use crate::ast::{AggFunc, BinOp, CmpOp, Expr, FromItem, Query, SelectItem, Temporal};
use crate::token::{tokenize, Keyword, Token};

/// A parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description of what went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        message: message.into(),
    })
}

/// Parses a query string.
///
/// Grammar (informally):
///
/// ```text
/// query    := SELECT select (',' select)* FROM from (',' from)*
///             [WHERE or_expr] [GROUP BY or_expr (',' or_expr)*]
///             (ONCE | SAMPLE PERIOD number)
/// select   := [agg '('] or_expr [')'] [AS ident]
/// from     := ident [ident]
/// or_expr  := and_expr (OR and_expr)*
/// and_expr := not_expr (AND not_expr)*
/// not_expr := NOT not_expr | cmp
/// cmp      := sum [cmpop sum]
/// sum      := term (('+'|'-') term)*
/// term     := unary (('*'|'/') unary)*
/// unary    := '-' unary | primary
/// primary  := number | '|' or_expr '|' | '(' or_expr ')'
///           | 'abs' '(' or_expr ')'
///           | 'distance' '(' or_expr ',' ... ')'   -- 4 args
///           | ident '.' ident
/// ```
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(input).map_err(|e| ParseError {
        message: format!("{} (at byte {})", e.message, e.at),
    })?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return err(format!("trailing input after query: {:?}", p.tokens[p.pos]));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Token) -> Result<(), ParseError> {
        match self.next() {
            Some(got) if got == t => Ok(()),
            Some(got) => err(format!("expected {t:?}, found {got:?}")),
            None => err(format!("expected {t:?}, found end of input")),
        }
    }

    fn keyword(&mut self, k: Keyword) -> Result<(), ParseError> {
        self.expect(Token::Keyword(k))
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.keyword(Keyword::Select)?;
        let mut select = vec![self.select_item()?];
        while self.eat(&Token::Comma) {
            select.push(self.select_item()?);
        }
        self.keyword(Keyword::From)?;
        let mut from = vec![self.from_item()?];
        while self.eat(&Token::Comma) {
            from.push(self.from_item()?);
        }
        let predicate = if self.eat(&Token::Keyword(Keyword::Where)) {
            Some(self.or_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat(&Token::Keyword(Keyword::Group)) {
            self.keyword(Keyword::By)?;
            group_by.push(self.or_expr()?);
            while self.eat(&Token::Comma) {
                group_by.push(self.or_expr()?);
            }
        }
        let temporal = match self.next() {
            Some(Token::Keyword(Keyword::Once)) => Temporal::Once,
            Some(Token::Keyword(Keyword::Sample)) => {
                self.keyword(Keyword::Period)?;
                match self.next() {
                    Some(Token::Number(x)) if x > 0.0 => Temporal::SamplePeriod(x),
                    other => return err(format!("expected positive period, found {other:?}")),
                }
            }
            other => return err(format!("expected ONCE or SAMPLE PERIOD, found {other:?}")),
        };
        Ok(Query {
            select,
            from,
            predicate,
            group_by,
            temporal,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        let agg = match self.peek() {
            Some(Token::Keyword(Keyword::Min)) => Some(AggFunc::Min),
            Some(Token::Keyword(Keyword::Max)) => Some(AggFunc::Max),
            Some(Token::Keyword(Keyword::Sum)) => Some(AggFunc::Sum),
            Some(Token::Keyword(Keyword::Avg)) => Some(AggFunc::Avg),
            Some(Token::Keyword(Keyword::Count)) => Some(AggFunc::Count),
            _ => None,
        };
        if agg.is_some() {
            self.pos += 1;
            self.expect(Token::LParen)?;
        }
        let expr = self.or_expr()?;
        if agg.is_some() {
            self.expect(Token::RParen)?;
        }
        let alias = if self.eat(&Token::Keyword(Keyword::As)) {
            match self.next() {
                Some(Token::Ident(name)) => Some(name),
                other => return err(format!("expected alias, found {other:?}")),
            }
        } else {
            None
        };
        Ok(SelectItem { agg, expr, alias })
    }

    #[allow(clippy::wrong_self_convention)] // parses a FROM item, not a conversion
    fn from_item(&mut self) -> Result<FromItem, ParseError> {
        let relation = match self.next() {
            Some(Token::Ident(name)) => name,
            other => return err(format!("expected relation name, found {other:?}")),
        };
        let alias = if matches!(self.peek(), Some(Token::Ident(_))) {
            match self.next() {
                Some(Token::Ident(a)) => a,
                _ => unreachable!("peeked an identifier"),
            }
        } else {
            relation.clone()
        };
        Ok(FromItem { relation, alias })
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.and_expr()?;
        while self.eat(&Token::Keyword(Keyword::Or)) {
            let rhs = self.and_expr()?;
            e = Expr::Or(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.not_expr()?;
        while self.eat(&Token::Keyword(Keyword::And)) {
            let rhs = self.not_expr()?;
            e = Expr::And(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Keyword(Keyword::Not)) {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp()
        }
    }

    fn cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.sum()?;
        let op = match self.peek() {
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.sum()?;
        Ok(Expr::Cmp {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn sum(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.term()?;
            e = Expr::Bin {
                op,
                lhs: Box::new(e),
                rhs: Box::new(rhs),
            };
        }
        Ok(e)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            e = Expr::Bin {
                op,
                lhs: Box::new(e),
                rhs: Box::new(rhs),
            };
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Minus) {
            Ok(Expr::Neg(Box::new(self.unary()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(Expr::Number(n)),
            Some(Token::Bar) => {
                let inner = self.or_expr()?;
                self.expect(Token::Bar)?;
                Ok(Expr::Abs(Box::new(inner)))
            }
            Some(Token::LParen) => {
                let inner = self.or_expr()?;
                self.expect(Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                if name.eq_ignore_ascii_case("abs") && self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let inner = self.or_expr()?;
                    self.expect(Token::RParen)?;
                    return Ok(Expr::Abs(Box::new(inner)));
                }
                if name.eq_ignore_ascii_case("distance") && self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let a = self.or_expr()?;
                    self.expect(Token::Comma)?;
                    let b = self.or_expr()?;
                    self.expect(Token::Comma)?;
                    let c = self.or_expr()?;
                    self.expect(Token::Comma)?;
                    let d = self.or_expr()?;
                    self.expect(Token::RParen)?;
                    return Ok(Expr::Distance {
                        args: Box::new([a, b, c, d]),
                    });
                }
                self.expect(Token::Dot)?;
                match self.next() {
                    Some(Token::Ident(attr)) => Ok(Expr::Attr {
                        qualifier: name,
                        attr,
                    }),
                    other => err(format!("expected attribute after '.', found {other:?}")),
                }
            }
            other => err(format!("expected expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Q1 parses verbatim.
    #[test]
    fn paper_q1() {
        let q = parse(
            "SELECT MIN(distance(A.x, A.y, B.x, B.y)) \
             FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 10.0 \
             ONCE",
        )
        .unwrap();
        assert_eq!(q.select.len(), 1);
        assert_eq!(q.select[0].agg, Some(AggFunc::Min));
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[0].alias, "A");
        assert_eq!(q.from[1].relation, "Sensors");
        assert_eq!(q.temporal, Temporal::Once);
        assert!(q.predicate.is_some());
    }

    /// The paper's Q2 parses verbatim.
    #[test]
    fn paper_q2() {
        let q = parse(
            "SELECT |A.hum - B.hum|, |A.pres - B.pres| \
             FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.3 \
             AND distance(A.x, A.y, B.x, B.y) > 100 \
             ONCE",
        )
        .unwrap();
        assert_eq!(q.select.len(), 2);
        assert!(matches!(q.select[0].expr, Expr::Abs(_)));
        let conjs = q.predicate.as_ref().unwrap().conjuncts().len();
        assert_eq!(conjs, 2);
    }

    #[test]
    fn sample_period() {
        let q = parse("SELECT A.t FROM S A SAMPLE PERIOD 30").unwrap();
        assert_eq!(q.temporal, Temporal::SamplePeriod(30.0));
        assert!(q.predicate.is_none());
        assert!(parse("SELECT A.t FROM S A SAMPLE PERIOD 0").is_err());
    }

    #[test]
    fn precedence() {
        let q = parse("SELECT A.x FROM S A WHERE A.a + A.b * 2 < 10 AND NOT A.c > 1 ONCE").unwrap();
        let p = q.predicate.unwrap();
        let cs = p.conjuncts();
        assert_eq!(cs.len(), 2);
        match cs[0] {
            Expr::Cmp { lhs, .. } => match lhs.as_ref() {
                Expr::Bin {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(rhs.as_ref(), Expr::Bin { op: BinOp::Mul, .. }));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(cs[1], Expr::Not(_)));
    }

    #[test]
    fn aliases_and_as() {
        let q = parse("SELECT A.x AS pos_x FROM Sensors A ONCE").unwrap();
        assert_eq!(q.select[0].alias.as_deref(), Some("pos_x"));
    }

    #[test]
    fn default_alias_is_relation_name() {
        let q = parse("SELECT Sensors.x FROM Sensors ONCE").unwrap();
        assert_eq!(q.from[0].alias, "Sensors");
    }

    #[test]
    fn three_way_join() {
        let q = parse(
            "SELECT A.t, B.t, C.t FROM R A, S B, T C \
             WHERE A.t < B.t AND B.t < C.t ONCE",
        )
        .unwrap();
        assert_eq!(q.from.len(), 3);
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("SELECT FROM S ONCE").is_err());
        assert!(parse("SELECT A.x FROM S A").is_err()); // missing temporal
        assert!(parse("SELECT A.x FROM S A ONCE garbage").is_err());
        assert!(parse("SELECT A.x FROM S A WHERE A.x < ONCE").is_err());
        assert!(parse("SELECT distance(A.x, A.y) FROM S A ONCE").is_err()); // arity
        assert!(parse("SELECT |A.x FROM S A ONCE").is_err()); // unclosed bar
    }

    #[test]
    fn nested_abs_and_negation() {
        let q = parse("SELECT abs(A.x - -3) FROM S A ONCE").unwrap();
        assert!(matches!(q.select[0].expr, Expr::Abs(_)));
    }
}
