//! Tokenizer for the query dialect.

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (uppercased).
    Keyword(Keyword),
    /// Identifier (original case preserved).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `|` (absolute-value bar).
    Bar,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `=`.
    Eq,
    /// `!=` or `<>`.
    Ne,
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Select,
    From,
    Where,
    And,
    Or,
    Not,
    As,
    Once,
    Sample,
    Period,
    Min,
    Max,
    Sum,
    Avg,
    Count,
    Group,
    By,
}

impl Keyword {
    fn parse(word: &str) -> Option<Keyword> {
        Some(match word.to_ascii_uppercase().as_str() {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "AS" => Keyword::As,
            "ONCE" => Keyword::Once,
            "SAMPLE" => Keyword::Sample,
            "PERIOD" => Keyword::Period,
            "MIN" => Keyword::Min,
            "MAX" => Keyword::Max,
            "SUM" => Keyword::Sum,
            "AVG" => Keyword::Avg,
            "COUNT" => Keyword::Count,
            "GROUP" => Keyword::Group,
            "BY" => Keyword::By,
            _ => return None,
        })
    }
}

/// A tokenizer error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// Description.
    pub message: String,
}

/// Tokenizes a query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' if i + 1 >= bytes.len() || !bytes[i + 1].is_ascii_digit() => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '|' => {
                out.push(Token::Bar);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LexError {
                        at: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                // Optional exponent.
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                let value = text.parse::<f64>().map_err(|_| LexError {
                    at: start,
                    message: format!("invalid number {text:?}"),
                })?;
                out.push(Token::Number(value));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                match Keyword::parse(word) {
                    Some(k) => out.push(Token::Keyword(k)),
                    None => out.push(Token::Ident(word.to_owned())),
                }
            }
            other => {
                return Err(LexError {
                    at: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q1_tokens() {
        let toks = tokenize(
            "SELECT MIN(distance(A.x, A.y, B.x, B.y)) FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 10.0 ONCE",
        )
        .unwrap();
        assert_eq!(toks[0], Token::Keyword(Keyword::Select));
        assert_eq!(toks[1], Token::Keyword(Keyword::Min));
        assert!(toks.contains(&Token::Number(10.0)));
        assert_eq!(*toks.last().unwrap(), Token::Keyword(Keyword::Once));
    }

    #[test]
    fn operators() {
        let toks = tokenize("< <= > >= = != <>").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne,
                Token::Ne
            ]
        );
    }

    #[test]
    fn numbers() {
        let toks = tokenize("0.3 100 1e3 2.5E-2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Number(0.3),
                Token::Number(100.0),
                Token::Number(1000.0),
                Token::Number(0.025)
            ]
        );
    }

    #[test]
    fn qualified_names_and_bars() {
        let toks = tokenize("|A.hum - B.hum|").unwrap();
        assert_eq!(toks[0], Token::Bar);
        assert_eq!(toks[1], Token::Ident("A".into()));
        assert_eq!(toks[2], Token::Dot);
        assert_eq!(*toks.last().unwrap(), Token::Bar);
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = tokenize("select From WHERE once").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Keyword(Keyword::From),
                Token::Keyword(Keyword::Where),
                Token::Keyword(Keyword::Once)
            ]
        );
    }

    #[test]
    fn bad_character() {
        assert!(tokenize("SELECT #").is_err());
        assert!(tokenize("a ! b").is_err());
    }
}
