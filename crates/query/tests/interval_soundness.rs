//! Property test: interval evaluation never produces false negatives.
//!
//! This is the correctness core of the SENS-Join pre-join. For any join
//! predicate and any pair of quantization cells, if some concrete values
//! inside the cells satisfy the predicate, then the interval evaluation must
//! report `True` or `Maybe` — never `False`. (The converse may fail: `Maybe`
//! with no witnesses is a tolerated false positive.)

use proptest::prelude::*;
use sensjoin_query::{parse, CompiledQuery, Interval, Tri};
use sensjoin_relation::{AttrType, Attribute, Schema};

fn schema() -> Schema {
    Schema::new(
        "S",
        vec![
            Attribute::new("x", AttrType::Meters),
            Attribute::new("y", AttrType::Meters),
            Attribute::new("t", AttrType::Celsius),
        ],
    )
}

/// A pool of predicate templates exercising every operator the dialect has.
fn predicate_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("A.t - B.t > {c}".to_owned()),
        Just("|A.t - B.t| < {c}".to_owned()),
        Just("|A.t - B.t| <= {c}".to_owned()),
        Just("A.t + B.t >= {c}".to_owned()),
        Just("A.t * B.t < {c}".to_owned()),
        Just("A.t / B.t > {c}".to_owned()),
        Just("distance(A.x, A.y, B.x, B.y) > {c}".to_owned()),
        Just("distance(A.x, A.y, B.x, B.y) <= {c}".to_owned()),
        Just("A.t = B.t".to_owned()),
        Just("A.t != B.t".to_owned()),
        Just("NOT A.t < B.t".to_owned()),
        Just("A.t < B.t OR A.x > B.x".to_owned()),
        Just("A.t < B.t AND A.y <= B.y".to_owned()),
        Just("-A.t < B.t - {c}".to_owned()),
    ]
}

fn compile(pred: &str, c: f64) -> CompiledQuery {
    let sql = format!(
        "SELECT A.t, B.t FROM S A, S B WHERE {} ONCE",
        pred.replace("{c}", &format!("{c}"))
    );
    let q = parse(&sql).unwrap();
    CompiledQuery::compile(&q, &[schema(), schema()]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn no_false_negatives(
        pred in predicate_strategy(),
        c in -50.0f64..50.0,
        // Cell corners and widths per (rel, attr): 2 rels x 3 attrs.
        corners in prop::collection::vec(-100.0f64..100.0, 6),
        widths in prop::collection::vec(0.0f64..10.0, 6),
        // Sample point offsets within each cell in [0, 1).
        offsets in prop::collection::vec(0.0f64..1.0, 6),
    ) {
        let cq = compile(&pred, c);
        let cell = |rel: usize, attr: usize| -> Interval {
            let i = rel * 3 + attr;
            Interval::new(corners[i], corners[i] + widths[i])
        };
        // A concrete witness inside the cells.
        let point = |rel: usize, attr: usize| -> f64 {
            let i = rel * 3 + attr;
            corners[i] + offsets[i] * widths[i]
        };
        let scalar_true = cq.eval_join(&point);
        let interval_possible = cq.possibly_joins(&cell);
        if scalar_true {
            prop_assert!(
                interval_possible,
                "predicate {pred} holds at a point inside cells the interval \
                 evaluation ruled out"
            );
        }
    }

    /// Degenerate cells (zero width) make interval evaluation exact for
    /// comparisons without Maybe-inducing operators.
    #[test]
    fn point_cells_agree_with_scalar(
        pred in predicate_strategy(),
        c in -50.0f64..50.0,
        vals in prop::collection::vec(-100.0f64..100.0, 6),
    ) {
        let cq = compile(&pred, c);
        let point = |rel: usize, attr: usize| vals[rel * 3 + attr];
        let cell = |rel: usize, attr: usize| Interval::point(vals[rel * 3 + attr]);
        let scalar = cq.eval_join(&point);
        // Degenerate intervals can still yield Maybe (e.g. at exact
        // equality boundaries), so only the sound direction is required.
        if scalar {
            prop_assert!(cq.possibly_joins(&cell));
        }
    }

    /// Widening a cell never flips "possible" to "impossible".
    #[test]
    fn monotone_in_cell_width(
        pred in predicate_strategy(),
        c in -50.0f64..50.0,
        corners in prop::collection::vec(-100.0f64..100.0, 6),
        widths in prop::collection::vec(0.0f64..5.0, 6),
        extra in 0.0f64..5.0,
    ) {
        let cq = compile(&pred, c);
        let narrow = |rel: usize, attr: usize| {
            let i = rel * 3 + attr;
            Interval::new(corners[i], corners[i] + widths[i])
        };
        let wide = |rel: usize, attr: usize| {
            let i = rel * 3 + attr;
            Interval::new(corners[i] - extra, corners[i] + widths[i] + extra)
        };
        if cq.possibly_joins(&narrow) {
            prop_assert!(cq.possibly_joins(&wide), "widening lost a possible match: {pred}");
        }
    }

    /// Three-valued logic: True results really are invariant over the cell.
    #[test]
    fn certain_true_has_no_counterexample(
        c in -20.0f64..20.0,
        corners in prop::collection::vec(-50.0f64..50.0, 6),
        offsets in prop::collection::vec(0.0f64..1.0, 6),
    ) {
        // Fixed simple predicate where True is reachable.
        let cq = compile("A.t - B.t > {c}", c);
        let width = 2.0;
        let cell = |rel: usize, attr: usize| {
            let i = rel * 3 + attr;
            Interval::new(corners[i], corners[i] + width)
        };
        let verdict = sensjoin_query::eval_predicate_interval(&cq.join_preds()[0], &cell);
        if verdict == Tri::True {
            let point = |rel: usize, attr: usize| {
                let i = rel * 3 + attr;
                corners[i] + offsets[i] * width
            };
            prop_assert!(cq.eval_join(&point), "Tri::True but a counterexample exists");
        }
    }
}
