//! Parser robustness: arbitrary input must never panic, and every
//! successfully parsed query must round-trip through compilation checks
//! without internal inconsistencies.

use proptest::prelude::*;
use sensjoin_query::{parse, CompiledQuery};
use sensjoin_relation::{AttrType, Attribute, Schema};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary strings: parse returns Ok or Err, never panics.
    #[test]
    fn arbitrary_strings_never_panic(s in "\\PC{0,200}") {
        let _ = parse(&s);
    }

    /// Strings made of dialect tokens: much higher parse success rate, same
    /// no-panic requirement, and parsed queries compile or fail cleanly.
    #[test]
    fn token_soup_never_panics(
        toks in prop::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("AND"), Just("OR"),
                Just("NOT"), Just("ONCE"), Just("SAMPLE"), Just("PERIOD"), Just("MIN"),
                Just("("), Just(")"), Just(","), Just("."), Just("|"),
                Just("+"), Just("-"), Just("*"), Just("/"), Just("<"), Just(">"),
                Just("="), Just("A"), Just("B"), Just("Sensors"), Just("temp"),
                Just("distance"), Just("abs"), Just("1"), Just("2.5"),
            ],
            0..30,
        )
    ) {
        let s = toks.join(" ");
        if let Ok(q) = parse(&s) {
            let schema = Schema::new(
                "Sensors",
                vec![
                    Attribute::new("x", AttrType::Meters),
                    Attribute::new("y", AttrType::Meters),
                    Attribute::new("temp", AttrType::Celsius),
                ],
            );
            let schemas: Vec<Schema> = q.from.iter().map(|_| schema.clone()).collect();
            // Compiling may fail (unknown aliases, type errors) but must not
            // panic; on success the invariants hold.
            if let Ok(cq) = CompiledQuery::compile(&q, &schemas) {
                for r in 0..cq.num_relations() {
                    // Join attributes are referenced attributes.
                    for a in cq.join_attrs(r) {
                        prop_assert!(cq.referenced_attrs(r).contains(a));
                    }
                }
            }
        }
    }

    /// Well-formed generated queries always parse and compile.
    #[test]
    fn generated_queries_accepted(
        c in -100.0f64..100.0,
        op in prop_oneof![Just("<"), Just(">"), Just("<="), Just(">="), Just("="), Just("!=")],
        agg in prop_oneof![Just(""), Just("MIN"), Just("MAX"), Just("AVG"), Just("SUM"), Just("COUNT")],
    ) {
        let select = if agg.is_empty() {
            "A.temp".to_owned()
        } else {
            format!("{agg}(A.temp)")
        };
        let sql = format!(
            "SELECT {select} FROM Sensors A, Sensors B WHERE A.temp - B.temp {op} {c} ONCE"
        );
        let q = parse(&sql).expect("generated SQL parses");
        let schema = Schema::new(
            "Sensors",
            vec![Attribute::new("temp", AttrType::Celsius)],
        );
        CompiledQuery::compile(&q, &[schema.clone(), schema]).expect("compiles");
    }
}
