#![warn(missing_docs)]

//! Relational layer for sensor networks.
//!
//! Declarative queries over a WSN view the network as one or more *sensor
//! relations* (SENS-Join paper, §III): conceptually a relation with one
//! attribute per sensor of the nodes and one tuple per node. This crate
//! provides the building blocks shared by every other crate in the
//! reproduction:
//!
//! * [`Value`] — a single attribute value (measurements are real-valued;
//!   node identifiers are integral),
//! * [`AttrType`] / [`Attribute`] / [`Schema`] — typed, *sized* schemas.
//!   Sizes matter: the paper's cost model is driven by how many bytes a tuple
//!   occupies on the wire (attributes default to 2 bytes, §IV-B),
//! * [`Tuple`] — a boxed row conforming to a schema,
//! * [`SensorRelation`] — a named schema plus a membership rule mapping nodes
//!   to tuples (homogeneous networks have one relation; heterogeneous
//!   networks partition nodes into several, §III).
//!
//! # Example
//!
//! ```
//! use sensjoin_relation::{Schema, Attribute, AttrType, Tuple, Value};
//!
//! let schema = Schema::new(
//!     "Sensors",
//!     vec![
//!         Attribute::new("x", AttrType::Meters),
//!         Attribute::new("y", AttrType::Meters),
//!         Attribute::new("temp", AttrType::Celsius),
//!     ],
//! );
//! let t = Tuple::new(vec![Value::from(12.0), Value::from(40.0), Value::from(21.5)]);
//! assert_eq!(schema.wire_size(), 6); // 3 attributes x 2 bytes
//! assert_eq!(t.get(schema.index_of("temp").unwrap()).as_f64(), 21.5);
//! ```

mod schema;
mod tuple;
mod value;

pub use schema::{AttrType, Attribute, Schema};
pub use tuple::{Tuple, TupleSet};
pub use value::Value;

/// Identifier of a sensor node. The base station is conventionally node 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A sensor relation: a schema plus a rule deciding which nodes contribute.
///
/// In the paper's terminology, "a node belongs to a sensor relation R if it
/// contributes a tuple T to R" (§III). In a homogeneous network the rule is
/// `Membership::All`; heterogeneous networks restrict by explicit node sets.
#[derive(Debug, Clone)]
pub struct SensorRelation {
    schema: Schema,
    membership: Membership,
}

/// Which nodes belong to a relation.
#[derive(Debug, Clone, Default)]
pub enum Membership {
    /// Every node in the network contributes a tuple.
    #[default]
    All,
    /// Only the listed nodes contribute (heterogeneous network).
    Nodes(std::collections::BTreeSet<NodeId>),
}

impl SensorRelation {
    /// Creates a homogeneous relation: every node contributes.
    pub fn homogeneous(schema: Schema) -> Self {
        Self {
            schema,
            membership: Membership::All,
        }
    }

    /// Creates a relation restricted to the given nodes.
    pub fn over_nodes(schema: Schema, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        Self {
            schema,
            membership: Membership::Nodes(nodes.into_iter().collect()),
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The relation's name (shorthand for `schema().name()`).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Whether `node` belongs to this relation.
    pub fn contains(&self, node: NodeId) -> bool {
        match &self.membership {
            Membership::All => true,
            Membership::Nodes(set) => set.contains(&node),
        }
    }

    /// The membership rule.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(
            "Sensors",
            vec![
                Attribute::new("temp", AttrType::Celsius),
                Attribute::new("hum", AttrType::Percent),
            ],
        )
    }

    #[test]
    fn homogeneous_contains_everything() {
        let r = SensorRelation::homogeneous(schema());
        assert!(r.contains(NodeId(0)));
        assert!(r.contains(NodeId(99_999)));
        assert_eq!(r.name(), "Sensors");
    }

    #[test]
    fn restricted_membership() {
        let r = SensorRelation::over_nodes(schema(), [NodeId(1), NodeId(3)]);
        assert!(r.contains(NodeId(1)));
        assert!(!r.contains(NodeId(2)));
        assert!(r.contains(NodeId(3)));
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "n7");
    }
}
