//! Schemas: named, typed, sized attribute lists.

/// The physical kind of a sensor attribute.
///
/// Types carry a *unit* (for documentation and data generation) and a *wire
/// width*. The paper assumes two bytes per attribute (§IV-B: "Assuming that
/// each attribute requires two bytes"); every built-in type follows that
/// default, while [`AttrType::Raw`] allows other widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// Position coordinate in meters.
    Meters,
    /// Temperature in degrees Celsius.
    Celsius,
    /// Relative humidity in percent.
    Percent,
    /// Barometric pressure in hectopascal.
    Hectopascal,
    /// Illuminance in lux.
    Lux,
    /// Battery voltage in volts.
    Volts,
    /// A unit-less attribute with an explicit wire width in bytes.
    Raw(u8),
}

impl AttrType {
    /// Wire width of a value of this type, in bytes.
    #[inline]
    pub fn wire_size(self) -> usize {
        match self {
            AttrType::Raw(w) => w as usize,
            _ => 2,
        }
    }

    /// Human-readable unit suffix.
    pub fn unit(self) -> &'static str {
        match self {
            AttrType::Meters => "m",
            AttrType::Celsius => "degC",
            AttrType::Percent => "%",
            AttrType::Hectopascal => "hPa",
            AttrType::Lux => "lx",
            AttrType::Volts => "V",
            AttrType::Raw(_) => "",
        }
    }
}

/// A named attribute with a type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    name: String,
    ty: AttrType,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Self {
            name: name.into(),
            ty,
        }
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's type.
    pub fn ty(&self) -> AttrType {
        self.ty
    }

    /// Wire width in bytes.
    pub fn wire_size(&self) -> usize {
        self.ty.wire_size()
    }
}

/// A relation schema: a name plus an ordered attribute list.
///
/// Attribute names must be unique within a schema; [`Schema::new`] panics
/// otherwise (schemas are built by library code or the query compiler, so a
/// duplicate is a programming error, not an input error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: String,
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Creates a schema.
    ///
    /// # Panics
    /// Panics if two attributes share a name.
    pub fn new(name: impl Into<String>, attrs: Vec<Attribute>) -> Self {
        let name = name.into();
        for (i, a) in attrs.iter().enumerate() {
            for b in &attrs[i + 1..] {
                assert_ne!(
                    a.name(),
                    b.name(),
                    "duplicate attribute {:?} in schema {name}",
                    a.name()
                );
            }
        }
        Self { name, attrs }
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attributes in declaration order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Index of an attribute by name, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name() == name)
    }

    /// Total wire size of a tuple conforming to this schema, in bytes.
    pub fn wire_size(&self) -> usize {
        self.attrs.iter().map(Attribute::wire_size).sum()
    }

    /// Wire size of a projection of this schema on the attribute indices
    /// `indices` — the size of a *join-attribute tuple* (paper Def. 1) when
    /// `indices` are the join attributes.
    pub fn projected_wire_size(&self, indices: &[usize]) -> usize {
        indices.iter().map(|&i| self.attrs[i].wire_size()).sum()
    }

    /// Builds a derived schema containing only the attributes at `indices`,
    /// in the given order. Used for join-attribute tuples.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            name: self.name.clone(),
            attrs: indices.iter().map(|&i| self.attrs[i].clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(
            "Sensors",
            vec![
                Attribute::new("x", AttrType::Meters),
                Attribute::new("y", AttrType::Meters),
                Attribute::new("temp", AttrType::Celsius),
                Attribute::new("id", AttrType::Raw(4)),
            ],
        )
    }

    #[test]
    fn wire_sizes() {
        let s = schema();
        assert_eq!(s.wire_size(), 2 + 2 + 2 + 4);
        assert_eq!(s.projected_wire_size(&[0, 2]), 4);
    }

    #[test]
    fn index_lookup() {
        let s = schema();
        assert_eq!(s.index_of("temp"), Some(2));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn projection_preserves_order() {
        let s = schema().project(&[2, 0]);
        assert_eq!(s.attrs()[0].name(), "temp");
        assert_eq!(s.attrs()[1].name(), "x");
        assert_eq!(s.arity(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attribute_panics() {
        Schema::new(
            "S",
            vec![
                Attribute::new("a", AttrType::Celsius),
                Attribute::new("a", AttrType::Celsius),
            ],
        );
    }

    #[test]
    fn units() {
        assert_eq!(AttrType::Celsius.unit(), "degC");
        assert_eq!(AttrType::Raw(3).wire_size(), 3);
    }
}
