//! Tuples and tuple sets.

use crate::{NodeId, Value};

/// A row of attribute values, in schema order.
///
/// Tuples are immutable after construction. A tuple remembers the node that
/// produced it (`origin`): SENS-Join needs this to route the *complete* tuple
/// of a filtered node in the final phase, and result reporting exposes it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    values: Box<[Value]>,
    origin: Option<NodeId>,
}

impl Tuple {
    /// Creates a tuple with no origin (e.g. a join *output* row).
    pub fn new(values: Vec<Value>) -> Self {
        Self {
            values: values.into_boxed_slice(),
            origin: None,
        }
    }

    /// Creates a tuple produced by `node`.
    pub fn with_origin(values: Vec<Value>, node: NodeId) -> Self {
        Self {
            values: values.into_boxed_slice(),
            origin: Some(node),
        }
    }

    /// The value at attribute index `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds (schema mismatch is a programming
    /// error).
    #[inline]
    pub fn get(&self, i: usize) -> Value {
        self.values[i]
    }

    /// All values in schema order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The node that produced this tuple, if any.
    #[inline]
    pub fn origin(&self) -> Option<NodeId> {
        self.origin
    }

    /// Projects the tuple on the attribute indices `indices`, preserving the
    /// origin. With the join attributes as `indices`, this implements
    /// π_JoinAttr(T) — the *join-attribute tuple* T' of paper Definition 1.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple {
            values: indices.iter().map(|&i| self.values[i]).collect(),
            origin: self.origin,
        }
    }

    /// Concatenates two tuples (used to form join output rows).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Tuple::new(v)
    }
}

impl std::fmt::Display for Tuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A multiset of tuples, kept in a canonical (sorted) order so that result
/// comparison between join methods is well-defined.
///
/// Join results are multisets: two pairs of nodes can legitimately produce
/// identical output rows, and an energy-optimizing join method must not
/// silently deduplicate them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TupleSet {
    tuples: Vec<Tuple>,
}

impl TupleSet {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from a vector (takes ownership, normalizes order).
    pub fn from_vec(mut tuples: Vec<Tuple>) -> Self {
        tuples.sort_by(cmp_tuples);
        Self { tuples }
    }

    /// Inserts a tuple, keeping canonical order lazily (sorted on read).
    pub fn push(&mut self, t: Tuple) {
        self.tuples.push(t);
    }

    /// Number of tuples (with multiplicity).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the multiset is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples in canonical order.
    pub fn canonical(mut self) -> Vec<Tuple> {
        self.tuples.sort_by(cmp_tuples);
        self.tuples
    }

    /// Iterates in insertion order (use [`TupleSet::canonical`] to compare).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Multiset equality, independent of insertion order and origins.
    pub fn same_rows(&self, other: &TupleSet) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let mut a: Vec<&Tuple> = self.tuples.iter().collect();
        let mut b: Vec<&Tuple> = other.tuples.iter().collect();
        a.sort_by(|x, y| cmp_tuples(x, y));
        b.sort_by(|x, y| cmp_tuples(x, y));
        a.iter().zip(&b).all(|(x, y)| x.values() == y.values())
    }
}

impl FromIterator<Tuple> for TupleSet {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        Self::from_vec(iter.into_iter().collect())
    }
}

fn cmp_tuples(a: &Tuple, b: &Tuple) -> std::cmp::Ordering {
    let la = a.values().len();
    let lb = b.values().len();
    la.cmp(&lb).then_with(|| {
        for (x, y) in a.values().iter().zip(b.values()) {
            let c = x.total_cmp(y);
            if c != std::cmp::Ordering::Equal {
                return c;
            }
        }
        std::cmp::Ordering::Equal
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[f64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::new(v)).collect())
    }

    #[test]
    fn projection_is_join_attribute_tuple() {
        let full = Tuple::with_origin(
            vec![Value::new(1.0), Value::new(2.0), Value::new(3.0)],
            NodeId(5),
        );
        let ja = full.project(&[0, 2]);
        assert_eq!(ja.values(), &[Value::new(1.0), Value::new(3.0)]);
        assert_eq!(ja.origin(), Some(NodeId(5)));
    }

    #[test]
    fn concat_joins_rows() {
        let row = t(&[1.0]).concat(&t(&[2.0, 3.0]));
        assert_eq!(row.arity(), 3);
        assert_eq!(row.get(2).as_f64(), 3.0);
    }

    #[test]
    fn multiset_equality_ignores_order() {
        let a = TupleSet::from_vec(vec![t(&[1.0]), t(&[2.0]), t(&[1.0])]);
        let b = TupleSet::from_vec(vec![t(&[2.0]), t(&[1.0]), t(&[1.0])]);
        assert!(a.same_rows(&b));
    }

    #[test]
    fn multiset_respects_multiplicity() {
        let a = TupleSet::from_vec(vec![t(&[1.0]), t(&[1.0])]);
        let b = TupleSet::from_vec(vec![t(&[1.0])]);
        assert!(!a.same_rows(&b));
    }

    #[test]
    fn multiset_differs_on_values() {
        let a = TupleSet::from_vec(vec![t(&[1.0])]);
        let b = TupleSet::from_vec(vec![t(&[1.5])]);
        assert!(!a.same_rows(&b));
    }

    #[test]
    fn display_tuple() {
        assert_eq!(t(&[1.0, 2.5]).to_string(), "(1, 2.5)");
    }
}
