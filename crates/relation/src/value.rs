//! Attribute values.

/// A single attribute value.
///
/// Sensor measurements are real-valued. The wire representation is decided by
/// the [`Schema`](crate::Schema) (a fixed number of bytes per attribute, two
/// by default, matching the paper's cost accounting in §IV-B); `Value` itself
/// is the *logical* value used by predicate evaluation and the join engine.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Value(f64);

impl Value {
    /// The logical value as `f64`.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Builds a value, normalizing `-0.0` to `0.0` so that equality and
    /// ordering behave like set semantics on measurements.
    #[inline]
    pub fn new(v: f64) -> Self {
        debug_assert!(v.is_finite(), "sensor values must be finite, got {v}");
        Value(if v == 0.0 { 0.0 } else { v })
    }

    /// Total ordering (values are always finite, so this never panics).
    #[inline]
    pub fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::new(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::new(v as f64)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::new(v as f64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::new(v as f64)
    }
}

impl Eq for Value {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Finite + normalized -0.0 makes bit-hashing consistent with Eq.
        self.0.to_bits().hash(state);
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn negative_zero_normalized() {
        assert_eq!(Value::new(-0.0), Value::new(0.0));
        assert_eq!(hash_of(Value::new(-0.0)), hash_of(Value::new(0.0)));
    }

    #[test]
    fn ordering_is_numeric() {
        let mut vs = vec![Value::new(3.5), Value::new(-1.0), Value::new(0.0)];
        vs.sort();
        assert_eq!(vs, vec![Value::new(-1.0), Value::new(0.0), Value::new(3.5)]);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(2i32).as_f64(), 2.0);
        assert_eq!(Value::from(2u32).as_f64(), 2.0);
        assert_eq!(Value::from(2.5f32).as_f64(), 2.5);
    }

    #[test]
    fn display() {
        assert_eq!(Value::new(1.25).to_string(), "1.25");
    }
}
