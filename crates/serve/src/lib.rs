#![warn(missing_docs)]

//! Multi-tenant serving layer for SENS-Join: many simulated users submit
//! continuous queries against a registry of sensor-network deployments
//! through one mediating [`Server`].
//!
//! The base-station library underneath
//! ([`QueryGroup`](sensjoin_core::QueryGroup) / `GroupRunner` in
//! `sensjoin-core`) runs up to 64 concurrent queries per
//! group with one shared collection wave per epoch. This crate adds the
//! operational shell around it:
//!
//! * **Admission control** — structured accept/reject [`Decision`]s:
//!   schema validation against the deployment's catalog, the per-group
//!   64-query hard limit ([`MAX_GROUP_QUERIES`](sensjoin_core::MAX_GROUP_QUERIES))
//!   with per-deployment group budgets, and a bounded admission queue
//!   that sheds on overflow.
//! * **Bin-packing** — admitted queries fill a deployment's existing
//!   groups before a new group is opened, so shared collection waves stay
//!   as full (and as amortized) as possible.
//! * **Epoch batching** — one [`Server::tick`] resamples every deployment
//!   and runs every group's epoch, fanning independent deployments across
//!   scoped worker threads (`parallel` feature) while collecting results
//!   in deployment order.
//! * **Plan caching** — the expensive part of admission (quantization-
//!   space derivation scanning every node's readings, plan
//!   classification) is deduplicated across tenants under a sound cache
//!   key ([`PlanKey`](sensjoin_core::PlanKey)): N tenants submitting the
//!   same template pay for one build.
//! * **Metrics** — per-tenant and per-deployment admission counters,
//!   log₂-bucketed epoch-latency histograms with p50/p99, plan-cache hit
//!   rates, and shared-vs-solo byte accounting pulled from the
//!   scheduler's reports ([`ServeMetrics`]).
//!
//! Results are **bit-identical to solo execution**: every tenant's
//! per-epoch rows and contributor sets equal a solo
//! [`GroupRunner`](sensjoin_core::GroupRunner) driven on the tenant's
//! registration snapshot (`tests/serving_equivalence.rs` proves it
//! property-based across tenant mixes, staggered intervals, and mid-run
//! cancellation).
//!
//! # Example: submit → admit → epoch → metrics
//!
//! ```
//! use sensjoin_serve::{DeploymentSpec, ServeConfig, Server, Submission, TenantId};
//!
//! let mut server = Server::new(ServeConfig::default());
//! server.add_deployment(&DeploymentSpec::new("lab", 60, 7)).unwrap();
//!
//! // Two tenants share a template (one plan build), one is distinct.
//! let shared = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
//!               WHERE A.temp - B.temp > 4.0 SAMPLE PERIOD 30";
//! let solo = "SELECT A.pres, B.pres FROM Sensors A, Sensors B \
//!             WHERE A.temp - B.temp > 6.0 SAMPLE PERIOD 30";
//! for (tenant, sql) in [(0, shared), (1, shared), (2, solo)] {
//!     let pending = server.submit(Submission {
//!         tenant: TenantId(tenant),
//!         deployment: "lab".into(),
//!         sql: sql.into(),
//!         every: 1,
//!     });
//!     assert!(pending.is_none(), "queued, decided at the next tick");
//! }
//!
//! let report = server.tick().unwrap();
//! assert_eq!(report.decisions.iter().filter(|d| d.admitted()).count(), 3);
//! assert_eq!(report.epochs.len(), 3); // every tenant got its first epoch
//!
//! let m = server.metrics();
//! assert_eq!(m.totals.admitted, 3);
//! assert_eq!(m.cache_hits, 1); // the second "shared" tenant
//! assert!(m.epoch_latency_us().p99() > 0);
//! ```

mod metrics;
mod server;

pub use metrics::{
    AdmissionCounters, DeploymentMetrics, Histogram, ServeMetrics, TenantMetrics, HISTOGRAM_BUCKETS,
};
pub use server::{
    Decision, DeploymentId, DeploymentSpec, QueryHandle, RejectReason, ServeConfig, Server,
    Submission, TenantEpoch, TenantId, TickReport,
};
