//! The serving metrics surface: admission counters per tenant and per
//! deployment, epoch-latency histograms with p50/p99, shared-vs-solo byte
//! accounting pulled from the scheduler's [`EpochReport`]s, and plan-cache
//! hit rates.
//!
//! Everything here is plain deterministic state updated by
//! [`Server`](crate::Server) in deployment order after each tick — there
//! is no sampling and no wall-clock dependence, so two runs over the same
//! submission schedule report identical metrics.
//!
//! [`EpochReport`]: sensjoin_core::EpochReport

use crate::server::TenantId;
use sensjoin_core::persist::{CodecError, Reader, Writer};
use std::collections::BTreeMap;

/// Number of power-of-two buckets in a [`Histogram`]: bucket `i` holds
/// samples whose bit length is `i`, i.e. values in `[2^(i-1), 2^i)`
/// (bucket 0 holds exactly the value 0).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log₂-bucketed histogram over non-negative integer samples (epoch
/// latencies in simulated microseconds, here).
///
/// Quantiles are resolved to the upper bound of the bucket in which the
/// requested rank falls (clamped to the observed maximum), so a reported
/// p99 is an upper bound on the true 99th percentile within a factor of
/// two — the usual operator-metrics tradeoff for O(1) memory.
///
/// ```
/// use sensjoin_serve::Histogram;
///
/// let mut h = Histogram::default();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// assert!(h.p50() >= 500 && h.p50() <= 1000);
/// assert!(h.p99() >= 990);
/// assert_eq!(h.max(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`, resolved to the containing
    /// bucket's upper bound and clamped to the observed maximum. Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Serializes the histogram for checkpointing.
    pub fn encode(&self, w: &mut Writer) {
        for &b in &self.buckets {
            w.put_u64(b);
        }
        w.put_u64(self.count);
        w.put_u64((self.sum >> 64) as u64);
        w.put_u64(self.sum as u64);
        w.put_u64(self.max);
    }

    /// Decodes a histogram written by [`Histogram::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for b in buckets.iter_mut() {
            *b = r.get_u64()?;
        }
        let count = r.get_u64()?;
        let sum = ((r.get_u64()? as u128) << 64) | r.get_u64()? as u128;
        let max = r.get_u64()?;
        Ok(Self {
            buckets,
            count,
            sum,
            max,
        })
    }

    /// Median (bucket-resolved; see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile (bucket-resolved; see [`Histogram::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Admission outcome counters. `submitted` counts every submission that
/// named this scope; the other counters partition their fates (a queued
/// submission is counted under `submitted` immediately and under its
/// outcome once the admitting tick drains it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionCounters {
    /// Submissions received (including ones still queued).
    pub submitted: u64,
    /// Admitted into a [`QueryGroup`](sensjoin_core::QueryGroup).
    pub admitted: u64,
    /// Rejected: the named deployment does not exist.
    pub rejected_unknown_deployment: u64,
    /// Rejected: the tenant already has a live (or queued) query.
    pub rejected_duplicate: u64,
    /// Rejected: the SQL failed to parse or compile against the
    /// deployment's schema.
    pub rejected_invalid: u64,
    /// Rejected: every group of the deployment is at its 64-query
    /// capacity and the per-deployment group budget is exhausted.
    pub rejected_full: u64,
    /// Shed: the bounded admission queue was full on arrival.
    pub shed: u64,
}

impl AdmissionCounters {
    /// All structured rejections (excluding shed submissions).
    pub fn rejected(&self) -> u64 {
        self.rejected_unknown_deployment
            + self.rejected_duplicate
            + self.rejected_invalid
            + self.rejected_full
    }

    /// Serializes the counters for checkpointing.
    pub fn encode(&self, w: &mut Writer) {
        w.put_u64(self.submitted);
        w.put_u64(self.admitted);
        w.put_u64(self.rejected_unknown_deployment);
        w.put_u64(self.rejected_duplicate);
        w.put_u64(self.rejected_invalid);
        w.put_u64(self.rejected_full);
        w.put_u64(self.shed);
    }

    /// Decodes counters written by [`AdmissionCounters::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            submitted: r.get_u64()?,
            admitted: r.get_u64()?,
            rejected_unknown_deployment: r.get_u64()?,
            rejected_duplicate: r.get_u64()?,
            rejected_invalid: r.get_u64()?,
            rejected_full: r.get_u64()?,
            shed: r.get_u64()?,
        })
    }
}

/// Per-deployment serving metrics.
#[derive(Debug, Clone, Default)]
pub struct DeploymentMetrics {
    /// Admission counters scoped to submissions naming this deployment.
    pub admission: AdmissionCounters,
    /// Group epochs executed (one per group per tick).
    pub epochs: u64,
    /// Due-query results produced (tenant-epochs).
    pub query_epochs: u64,
    /// Result rows delivered across all tenant-epochs.
    pub result_rows: u64,
    /// Bytes actually transmitted by the shared protocol phases.
    pub shared_bytes: u64,
    /// Solo-equivalent bytes: what the same due queries would have cost
    /// run one-at-a-time (the scheduler's per-query accounting).
    pub solo_bytes: u64,
    /// Simulated epoch latency, one sample per executed group epoch.
    pub epoch_latency_us: Histogram,
}

impl DeploymentMetrics {
    /// Serializes the deployment metrics for checkpointing.
    pub fn encode(&self, w: &mut Writer) {
        self.admission.encode(w);
        w.put_u64(self.epochs);
        w.put_u64(self.query_epochs);
        w.put_u64(self.result_rows);
        w.put_u64(self.shared_bytes);
        w.put_u64(self.solo_bytes);
        self.epoch_latency_us.encode(w);
    }

    /// Decodes metrics written by [`DeploymentMetrics::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            admission: AdmissionCounters::decode(r)?,
            epochs: r.get_u64()?,
            query_epochs: r.get_u64()?,
            result_rows: r.get_u64()?,
            shared_bytes: r.get_u64()?,
            solo_bytes: r.get_u64()?,
            epoch_latency_us: Histogram::decode(r)?,
        })
    }
}

/// Per-tenant serving metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct TenantMetrics {
    /// Submissions by this tenant.
    pub submitted: u64,
    /// Admissions granted to this tenant.
    pub admitted: u64,
    /// Structured rejections returned to this tenant.
    pub rejected: u64,
    /// Submissions shed on a full queue.
    pub shed: u64,
    /// Due epochs in which this tenant received a result.
    pub epochs: u64,
    /// Result rows delivered to this tenant.
    pub result_rows: u64,
    /// Solo-equivalent bytes attributed to this tenant's due epochs.
    pub solo_bytes: u64,
}

impl TenantMetrics {
    /// Serializes the tenant metrics for checkpointing.
    pub fn encode(&self, w: &mut Writer) {
        w.put_u64(self.submitted);
        w.put_u64(self.admitted);
        w.put_u64(self.rejected);
        w.put_u64(self.shed);
        w.put_u64(self.epochs);
        w.put_u64(self.result_rows);
        w.put_u64(self.solo_bytes);
    }

    /// Decodes metrics written by [`TenantMetrics::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            submitted: r.get_u64()?,
            admitted: r.get_u64()?,
            rejected: r.get_u64()?,
            shed: r.get_u64()?,
            epochs: r.get_u64()?,
            result_rows: r.get_u64()?,
            solo_bytes: r.get_u64()?,
        })
    }
}

/// The whole metrics surface of a [`Server`](crate::Server).
#[derive(Debug, Clone, Default)]
pub struct ServeMetrics {
    per_deployment: Vec<DeploymentMetrics>,
    per_tenant: BTreeMap<TenantId, TenantMetrics>,
    /// Admission counters over every submission, regardless of deployment
    /// (this is the only scope that sees unknown-deployment rejections).
    pub totals: AdmissionCounters,
    /// Admissions served from the plan cache.
    pub cache_hits: u64,
    /// Admissions that had to build a fresh plan.
    pub cache_misses: u64,
}

impl ServeMetrics {
    pub(crate) fn push_deployment(&mut self) {
        self.per_deployment.push(DeploymentMetrics::default());
    }

    pub(crate) fn deployment_mut(&mut self, ix: usize) -> &mut DeploymentMetrics {
        &mut self.per_deployment[ix]
    }

    pub(crate) fn tenant_mut(&mut self, tenant: TenantId) -> &mut TenantMetrics {
        self.per_tenant.entry(tenant).or_default()
    }

    /// Metrics of deployment `ix` (registration order).
    pub fn deployment(&self, ix: usize) -> &DeploymentMetrics {
        &self.per_deployment[ix]
    }

    /// Per-deployment metrics, in registration order.
    pub fn deployments(&self) -> &[DeploymentMetrics] {
        &self.per_deployment
    }

    /// Metrics of one tenant, if it ever submitted.
    pub fn tenant(&self, tenant: TenantId) -> Option<&TenantMetrics> {
        self.per_tenant.get(&tenant)
    }

    /// All tenants that ever submitted, ascending by id.
    pub fn tenants(&self) -> impl Iterator<Item = (TenantId, &TenantMetrics)> {
        self.per_tenant.iter().map(|(t, m)| (*t, m))
    }

    /// Epoch-latency histogram merged over all deployments.
    pub fn epoch_latency_us(&self) -> Histogram {
        let mut h = Histogram::default();
        for d in &self.per_deployment {
            h.merge(&d.epoch_latency_us);
        }
        h
    }

    /// Serializes the whole metrics surface for checkpointing.
    pub fn encode(&self, w: &mut Writer) {
        w.put_usize(self.per_deployment.len());
        for d in &self.per_deployment {
            d.encode(w);
        }
        w.put_usize(self.per_tenant.len());
        for (t, m) in &self.per_tenant {
            w.put_u64(t.0);
            m.encode(w);
        }
        self.totals.encode(w);
        w.put_u64(self.cache_hits);
        w.put_u64(self.cache_misses);
    }

    /// Decodes metrics written by [`ServeMetrics::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let nd = r.get_count(8)?;
        let mut per_deployment = Vec::new();
        for _ in 0..nd {
            per_deployment.push(DeploymentMetrics::decode(r)?);
        }
        let nt = r.get_count(8)?;
        let mut per_tenant = BTreeMap::new();
        for _ in 0..nt {
            let t = TenantId(r.get_u64()?);
            per_tenant.insert(t, TenantMetrics::decode(r)?);
        }
        Ok(Self {
            per_deployment,
            per_tenant,
            totals: AdmissionCounters::decode(r)?,
            cache_hits: r.get_u64()?,
            cache_misses: r.get_u64()?,
        })
    }

    /// Plan-cache hit rate over all admissions that consulted the cache
    /// (0 when the cache was never consulted).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        h.record(0);
        assert_eq!(h.p50(), 0);
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), 1000);
        assert!(h.p99() >= 1000 || h.p99() == h.max());
        // p50 of {0,1,2,3,4,100,1000} has rank 4 → sample 3 → bucket [2,4).
        assert!(h.p50() <= 3);
        let mut other = Histogram::default();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.count(), 8);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0);
    }
}
