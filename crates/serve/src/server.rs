//! The serving front-end: deployment registry, bounded admission queue,
//! per-deployment bin-packing into [`QueryGroup`]s, plan caching, and the
//! tick loop that batches due epochs across tenants.
//!
//! # Determinism
//!
//! Everything the server does is a pure function of its construction
//! parameters and the submission schedule: deployments resample with
//! seeds derived from `(deployment seed, tick)`, admissions drain the
//! queue FIFO, and epoch results are collected in deployment order even
//! when the `parallel` feature fans deployments out across worker
//! threads. Two runs over the same schedule produce identical decisions,
//! results, and metrics — and every tenant's results are bit-identical
//! to a solo [`GroupRunner`](sensjoin_core::GroupRunner) driven on the
//! tenant's registration snapshot (`tests/serving_equivalence.rs` at the
//! repository root proves this property-based).

use crate::metrics::ServeMetrics;
use sensjoin_core::persist::{CodecError, Reader, Writer};
use sensjoin_core::{
    EpochReport, GroupOutcome, PlanKey, ProtocolError, QueryGroup, QueryId, QueryPlan,
    SensJoinConfig, SensorNetwork, SensorNetworkBuilder, SensorNetworkError, MAX_GROUP_QUERIES,
};
use sensjoin_field::{presets, Area, FieldSpec, Placement};
use sensjoin_query::parse;
use sensjoin_sim::Time;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// A simulated user of the serving layer. The serving model is one live
/// continuous query per tenant: a tenant whose query is admitted must
/// [`Server::cancel`] before submitting another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u64);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Index of a deployment in the server's registry (registration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeploymentId(pub usize);

/// Recipe for one deployment: a deterministic sensor network the server
/// builds (and later resamples) itself, so equivalence tests can rebuild
/// the identical network from the same spec.
#[derive(Debug, Clone)]
pub struct DeploymentSpec {
    /// Registry name tenants address in [`Submission::deployment`].
    pub name: String,
    /// Node count; the area scales for constant density.
    pub nodes: usize,
    /// Placement / field / resample seed.
    pub seed: u64,
    /// Generated attribute fields (defaults to the indoor-climate preset).
    pub fields: Vec<FieldSpec>,
}

impl DeploymentSpec {
    /// A spec with the indoor-climate field preset.
    pub fn new(name: impl Into<String>, nodes: usize, seed: u64) -> Self {
        Self {
            name: name.into(),
            nodes,
            seed,
            fields: presets::indoor_climate(),
        }
    }

    /// Builds the deployment's network. Deterministic: equal specs build
    /// equal networks.
    pub fn build(&self) -> Result<SensorNetwork, SensorNetworkError> {
        SensorNetworkBuilder::new()
            .area(Area::for_constant_density(self.nodes))
            .placement(Placement::UniformRandom { n: self.nodes })
            .fields(self.fields.clone())
            .seed(self.seed)
            .build()
    }
}

/// Server tuning knobs. See `OPERATIONS.md` for operator guidance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Protocol parameters every group runs with.
    pub protocol: SensJoinConfig,
    /// Group budget per deployment; capacity is `max_groups` ×
    /// [`MAX_GROUP_QUERIES`] live queries.
    pub max_groups: usize,
    /// Bound on the admission queue; submissions arriving beyond it are
    /// shed ([`RejectReason::Shed`]).
    pub queue_depth: usize,
    /// Admissions processed per tick; 0 drains the whole queue. A finite
    /// budget bounds per-tick admission work at the price of queue wait —
    /// the knob that makes shedding reachable under sustained overload.
    pub admit_per_tick: usize,
    /// Dedup identical `(deployment, snapshot, sql, config)` plans across
    /// tenants. Sharing is result-invariant (see
    /// [`PlanKey`]); disable only to measure the saving.
    pub plan_cache: bool,
    /// Epoch cadence in simulated µs — the serving deadline that a
    /// deployment's p99 epoch latency is judged against.
    pub period_us: Time,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            protocol: SensJoinConfig::default(),
            max_groups: 4,
            queue_depth: 256,
            admit_per_tick: 0,
            plan_cache: true,
            period_us: 30_000_000,
        }
    }
}

/// One tenant's continuous-query submission.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Who is asking.
    pub tenant: TenantId,
    /// Registry name of the target deployment.
    pub deployment: String,
    /// The continuous query (`SAMPLE PERIOD` dialect).
    pub sql: String,
    /// Run every `every`-th epoch (clamped to ≥ 1).
    pub every: u64,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// No deployment of that name is registered.
    UnknownDeployment(String),
    /// The tenant already has a live admitted query.
    DuplicateTenant,
    /// The SQL failed to parse or compile against the deployment schema.
    InvalidQuery(String),
    /// Every group is at [`MAX_GROUP_QUERIES`] live queries and the
    /// deployment's group budget is exhausted.
    DeploymentFull,
    /// The bounded admission queue was full on arrival.
    Shed,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::UnknownDeployment(name) => write!(f, "unknown deployment `{name}`"),
            RejectReason::DuplicateTenant => write!(f, "tenant already has a live query"),
            RejectReason::InvalidQuery(e) => write!(f, "invalid query: {e}"),
            RejectReason::DeploymentFull => {
                write!(f, "deployment at capacity ({MAX_GROUP_QUERIES} per group)")
            }
            RejectReason::Shed => write!(f, "admission queue full, submission shed"),
        }
    }
}

/// Where an admitted query lives: deployment, group slot within it, and
/// the group-local [`QueryId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryHandle {
    /// Deployment the query was admitted to.
    pub deployment: DeploymentId,
    /// Group index within the deployment (bin-packing order).
    pub group: usize,
    /// Slot within the group.
    pub id: QueryId,
}

/// Structured admission decision.
#[derive(Debug, Clone)]
pub enum Decision {
    /// The query is registered and will produce results from the next
    /// tick on.
    Admitted {
        /// Who asked.
        tenant: TenantId,
        /// Where the query was placed.
        handle: QueryHandle,
        /// Whether the registration plan came from the plan cache.
        cache_hit: bool,
    },
    /// The submission was refused.
    Rejected {
        /// Who asked.
        tenant: TenantId,
        /// Why.
        reason: RejectReason,
    },
}

impl Decision {
    /// The tenant the decision answers.
    pub fn tenant(&self) -> TenantId {
        match self {
            Decision::Admitted { tenant, .. } | Decision::Rejected { tenant, .. } => *tenant,
        }
    }

    /// Whether the submission was admitted.
    pub fn admitted(&self) -> bool {
        matches!(self, Decision::Admitted { .. })
    }
}

/// One tenant's result for one due epoch.
#[derive(Debug, Clone)]
pub struct TenantEpoch {
    /// Whose result this is.
    pub tenant: TenantId,
    /// Deployment it ran on.
    pub deployment: DeploymentId,
    /// Group index within the deployment.
    pub group: usize,
    /// Group-local epoch index the result belongs to.
    pub epoch: u64,
    /// The scheduler outcome: result rows and contributor set,
    /// bit-identical to a solo run on the registration snapshot.
    pub outcome: GroupOutcome,
    /// Whether the epoch's traffic was fully delivered (false only after
    /// the lossy-channel retry budget is exhausted).
    pub complete: bool,
}

/// What one [`Server::tick`] did: the admission decisions it drained and
/// every due tenant-epoch it executed, in deployment order.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// Tick index (0-based).
    pub tick: u64,
    /// Decisions for submissions drained from the queue this tick.
    pub decisions: Vec<Decision>,
    /// Due results, in (deployment, group, slot) order.
    pub epochs: Vec<TenantEpoch>,
}

/// A cache entry: the compiled query and its registration plan. Both are
/// pure functions of `(canonical sql, deployment catalog + snapshot,
/// config)` — exactly what [`PlanKey`] captures — so handing one tenant
/// clones of another's entry is result-invariant.
#[derive(Clone)]
struct CachedPlan {
    query: sensjoin_query::CompiledQuery,
    plan: QueryPlan,
}

struct Deployment {
    name: String,
    snet: SensorNetwork,
    specs: Vec<FieldSpec>,
    seed: u64,
    /// Readings version: bumped once per tick's resample. Plans cache
    /// under the version they were built against.
    snapshot: u64,
    groups: Vec<QueryGroup>,
    /// Per group: tenant of each slot, parallel to the group's queries
    /// (slots are never reused, so this only grows).
    tenants: Vec<Vec<TenantId>>,
    /// Per group: SQL of each slot (dead slots included — restore needs a
    /// query for every slot to keep [`QueryId`]s stable).
    sqls: Vec<Vec<String>>,
}

impl Deployment {
    /// Resamples the readings and runs one epoch of every group, in group
    /// order. Returns each group's report.
    fn run_tick(&mut self) -> Result<Vec<EpochReport>, ProtocolError> {
        self.snapshot += 1;
        self.snet
            .resample(&self.specs, self.seed.wrapping_add(self.snapshot));
        let mut reports = Vec::with_capacity(self.groups.len());
        for group in &mut self.groups {
            reports.push(group.execute_epoch(&mut self.snet)?);
        }
        Ok(reports)
    }
}

/// The multi-tenant serving front-end. See the [crate docs](crate) for
/// the end-to-end flow and a runnable example.
pub struct Server {
    cfg: ServeConfig,
    /// Precomputed [`PlanKey::config_sig`] of `cfg.protocol` — constant
    /// for the server's lifetime, rebuilt per admission otherwise.
    config_sig: String,
    deployments: Vec<Deployment>,
    queue: VecDeque<Submission>,
    cache: HashMap<PlanKey, CachedPlan>,
    handles: BTreeMap<TenantId, QueryHandle>,
    metrics: ServeMetrics,
    tick: u64,
}

impl Server {
    /// An empty server; add deployments before submitting.
    pub fn new(cfg: ServeConfig) -> Self {
        Self {
            config_sig: PlanKey::config_sig(&cfg.protocol),
            cfg,
            deployments: Vec::new(),
            queue: VecDeque::new(),
            cache: HashMap::new(),
            handles: BTreeMap::new(),
            metrics: ServeMetrics::default(),
            tick: 0,
        }
    }

    /// Builds and registers a deployment. Returns its id (registration
    /// order).
    pub fn add_deployment(
        &mut self,
        spec: &DeploymentSpec,
    ) -> Result<DeploymentId, SensorNetworkError> {
        let snet = spec.build()?;
        self.deployments.push(Deployment {
            name: spec.name.clone(),
            snet,
            specs: spec.fields.clone(),
            seed: spec.seed,
            snapshot: 0,
            groups: Vec::new(),
            tenants: Vec::new(),
            sqls: Vec::new(),
        });
        self.metrics.push_deployment();
        Ok(DeploymentId(self.deployments.len() - 1))
    }

    /// Submits a continuous query. Unknown deployments, duplicate
    /// tenants, and queue overflow are refused immediately (`Some`
    /// rejection); otherwise the submission is queued (`None`) and
    /// decided by the next [`Server::tick`].
    pub fn submit(&mut self, sub: Submission) -> Option<Decision> {
        let tenant = sub.tenant;
        self.metrics.totals.submitted += 1;
        self.metrics.tenant_mut(tenant).submitted += 1;
        let Some(dep_ix) = self
            .deployments
            .iter()
            .position(|d| d.name == sub.deployment)
        else {
            self.metrics.totals.rejected_unknown_deployment += 1;
            self.metrics.tenant_mut(tenant).rejected += 1;
            return Some(Decision::Rejected {
                tenant,
                reason: RejectReason::UnknownDeployment(sub.deployment),
            });
        };
        self.metrics.deployment_mut(dep_ix).admission.submitted += 1;
        if self.handles.contains_key(&tenant)
            || self.queue.iter().any(|queued| queued.tenant == tenant)
        {
            self.metrics.totals.rejected_duplicate += 1;
            self.metrics.tenant_mut(tenant).rejected += 1;
            return Some(Decision::Rejected {
                tenant,
                reason: RejectReason::DuplicateTenant,
            });
        }
        if self.queue.len() >= self.cfg.queue_depth {
            self.metrics.totals.shed += 1;
            self.metrics.deployment_mut(dep_ix).admission.shed += 1;
            self.metrics.tenant_mut(tenant).shed += 1;
            return Some(Decision::Rejected {
                tenant,
                reason: RejectReason::Shed,
            });
        }
        self.queue.push_back(sub);
        None
    }

    /// Cancels a tenant's live query mid-run. Its group slot is retired
    /// (slots are not reused); other tenants are untouched. Returns
    /// whether the tenant had a live query.
    pub fn cancel(&mut self, tenant: TenantId) -> bool {
        match self.handles.remove(&tenant) {
            Some(h) => self.deployments[h.deployment.0].groups[h.group].remove(h.id),
            None => false,
        }
    }

    fn admit_one(&mut self, sub: Submission) -> Decision {
        let tenant = sub.tenant;
        let dep_ix = self
            .deployments
            .iter()
            .position(|d| d.name == sub.deployment)
            .expect("queued submissions name validated deployments");
        let reject = |metrics: &mut ServeMetrics, reason: RejectReason| {
            match reason {
                RejectReason::InvalidQuery(_) => {
                    metrics.totals.rejected_invalid += 1;
                    metrics.deployment_mut(dep_ix).admission.rejected_invalid += 1;
                }
                RejectReason::DeploymentFull => {
                    metrics.totals.rejected_full += 1;
                    metrics.deployment_mut(dep_ix).admission.rejected_full += 1;
                }
                _ => {}
            }
            metrics.tenant_mut(tenant).rejected += 1;
            Decision::Rejected { tenant, reason }
        };
        // Compiled query + plan: a cache hit skips parse, compile, and
        // the plan build outright — the whole point of dedup, since the
        // clone is byte-identical to what a fresh build would produce
        // (see `PlanKey`). Only valid queries are ever cached, so invalid
        // SQL always takes the parse path and rejects there.
        let key = PlanKey::with_config_sig(
            dep_ix as u64,
            self.deployments[dep_ix].snapshot,
            &sub.sql,
            self.config_sig.clone(),
        );
        let cached = if self.cfg.plan_cache {
            self.cache.get(&key).cloned()
        } else {
            None
        };
        let cache_hit = cached.is_some();
        let entry = match cached {
            Some(entry) => {
                self.metrics.cache_hits += 1;
                entry
            }
            None => {
                let parsed = match parse(&sub.sql) {
                    Ok(q) => q,
                    Err(e) => {
                        return reject(&mut self.metrics, RejectReason::InvalidQuery(e.to_string()))
                    }
                };
                let dep = &self.deployments[dep_ix];
                let query = match dep.snet.compile(&parsed) {
                    Ok(cq) => cq,
                    Err(e) => {
                        return reject(&mut self.metrics, RejectReason::InvalidQuery(e.to_string()))
                    }
                };
                let plan = QueryPlan::build(&query, &dep.snet, &self.cfg.protocol);
                self.metrics.cache_misses += 1;
                let entry = CachedPlan { query, plan };
                if self.cfg.plan_cache {
                    self.cache.insert(key, entry.clone());
                }
                entry
            }
        };

        // Bin-pack: first group with a free live slot, else open a group
        // if the budget allows, else reject.
        let group = match self.deployments[dep_ix]
            .groups
            .iter()
            .position(|g| g.len() < MAX_GROUP_QUERIES)
        {
            Some(g) => g,
            None if self.deployments[dep_ix].groups.len() < self.cfg.max_groups => {
                let dep = &mut self.deployments[dep_ix];
                dep.groups.push(QueryGroup::new(self.cfg.protocol.clone()));
                dep.tenants.push(Vec::new());
                dep.sqls.push(Vec::new());
                dep.groups.len() - 1
            }
            None => return reject(&mut self.metrics, RejectReason::DeploymentFull),
        };

        let dep = &mut self.deployments[dep_ix];
        let id = dep.groups[group]
            .try_register_plan(entry.query, entry.plan, sub.every)
            .expect("bin-packing picked a group with a free slot");
        debug_assert_eq!(id.0, dep.tenants[group].len(), "slots are append-only");
        dep.tenants[group].push(tenant);
        dep.sqls[group].push(sub.sql);
        let handle = QueryHandle {
            deployment: DeploymentId(dep_ix),
            group,
            id,
        };
        self.handles.insert(tenant, handle);
        self.metrics.totals.admitted += 1;
        self.metrics.deployment_mut(dep_ix).admission.admitted += 1;
        self.metrics.tenant_mut(tenant).admitted += 1;
        Decision::Admitted {
            tenant,
            handle,
            cache_hit,
        }
    }

    /// Processes every queued submission now — schema validation, plan
    /// lookup or build, bin-packing — without running an epoch, ignoring
    /// [`ServeConfig::admit_per_tick`]. [`Server::tick`] does this
    /// implicitly; the explicit form exists for operators (and benches)
    /// that want admission cost separate from epoch cost.
    pub fn admit(&mut self) -> Vec<Decision> {
        let budget = self.queue.len();
        self.drain_queue(budget)
    }

    fn drain_queue(&mut self, budget: usize) -> Vec<Decision> {
        let mut decisions = Vec::with_capacity(budget);
        for _ in 0..budget {
            let sub = self.queue.pop_front().expect("budget bounded by queue len");
            decisions.push(self.admit_one(sub));
        }
        decisions
    }

    /// Runs one serving tick: drains the admission queue (up to
    /// [`ServeConfig::admit_per_tick`]), then resamples every deployment
    /// and executes one epoch of every group, batching deployments across
    /// worker threads under the `parallel` feature. Results and metrics
    /// are collected in deployment order either way.
    pub fn tick(&mut self) -> Result<TickReport, ProtocolError> {
        let tick = self.tick;
        self.tick += 1;

        // Admissions happen before the tick's resample: a query admitted
        // at tick t is planned on the snapshot left by tick t-1 — its
        // registration snapshot — exactly like a solo registration
        // followed by a `GroupRunner` run.
        let budget = if self.cfg.admit_per_tick == 0 {
            self.queue.len()
        } else {
            self.cfg.admit_per_tick.min(self.queue.len())
        };
        let decisions = self.drain_queue(budget);

        let results = run_deployments(&mut self.deployments);
        let mut epochs = Vec::new();
        for (dep_ix, result) in results.into_iter().enumerate() {
            let reports = result?;
            let dep = &self.deployments[dep_ix];
            for (group, report) in reports.into_iter().enumerate() {
                let dm = self.metrics.deployment_mut(dep_ix);
                dm.epochs += 1;
                dm.epoch_latency_us.record(report.latency_us);
                dm.query_epochs += report.outcomes.len() as u64;
                dm.shared_bytes += report.shared_collection_bytes()
                    + report.shared_filter_bytes()
                    + report.shared_final_bytes();
                dm.solo_bytes += report.solo_equivalent_total();
                let mut solo_of = HashMap::new();
                for solo in &report.solo_equivalent {
                    solo_of.insert(solo.id, solo.total_bytes());
                }
                for outcome in report.outcomes {
                    let tenant = dep.tenants[group][outcome.id.0];
                    let rows = outcome.result.len() as u64;
                    self.metrics.deployment_mut(dep_ix).result_rows += rows;
                    let tm = self.metrics.tenant_mut(tenant);
                    tm.epochs += 1;
                    tm.result_rows += rows;
                    tm.solo_bytes += solo_of.get(&outcome.id).copied().unwrap_or(0);
                    epochs.push(TenantEpoch {
                        tenant,
                        deployment: DeploymentId(dep_ix),
                        group,
                        epoch: report.epoch,
                        outcome,
                        complete: report.complete,
                    });
                }
            }
        }
        Ok(TickReport {
            tick,
            decisions,
            epochs,
        })
    }

    /// The metrics surface.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Server tuning knobs in effect.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Number of ticks run so far.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Submissions waiting for the next tick's admission pass.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of registered deployments.
    pub fn num_deployments(&self) -> usize {
        self.deployments.len()
    }

    /// The groups of deployment `dep`, in bin-packing order.
    pub fn groups(&self, dep: DeploymentId) -> &[QueryGroup] {
        &self.deployments[dep.0].groups
    }

    /// The current network snapshot of deployment `dep`.
    pub fn network(&self, dep: DeploymentId) -> &SensorNetwork {
        &self.deployments[dep.0].snet
    }

    /// Live handle of a tenant's admitted query, if any.
    pub fn handle(&self, tenant: TenantId) -> Option<QueryHandle> {
        self.handles.get(&tenant).copied()
    }

    /// Number of distinct plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// Serializes the full server state — tick position, admission queue,
    /// tenant handles, plan-cache keys, metrics, and every deployment's
    /// groups — with the checkpoint codec. Networks are not serialized:
    /// a deployment's readings are a pure function of `(spec, snapshot)`,
    /// so [`Server::restore_state`] resamples them back instead.
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.tick);
        w.put_usize(self.queue.len());
        for sub in &self.queue {
            w.put_u64(sub.tenant.0);
            w.put_str(&sub.deployment);
            w.put_str(&sub.sql);
            w.put_u64(sub.every);
        }
        w.put_usize(self.handles.len());
        for (tenant, h) in &self.handles {
            w.put_u64(tenant.0);
            w.put_usize(h.deployment.0);
            w.put_usize(h.group);
            w.put_usize(h.id.0);
        }
        // Cache keys in sorted order (`HashMap` iteration order is not
        // deterministic); the entries themselves are rebuilt on restore.
        let mut keys: Vec<_> = self.cache.keys().map(|k| k.parts()).collect();
        keys.sort_unstable();
        w.put_usize(keys.len());
        for (dep, snapshot, sql) in keys {
            w.put_u64(dep);
            w.put_u64(snapshot);
            w.put_str(sql);
        }
        self.metrics.encode(&mut w);
        w.put_usize(self.deployments.len());
        for dep in &self.deployments {
            w.put_str(&dep.name);
            w.put_u64(dep.snapshot);
            w.put_usize(dep.groups.len());
            for (g, group) in dep.groups.iter().enumerate() {
                w.put_usize(dep.tenants[g].len());
                for t in &dep.tenants[g] {
                    w.put_u64(t.0);
                }
                w.put_usize(dep.sqls[g].len());
                for sql in &dep.sqls[g] {
                    w.put_str(sql);
                }
                group.encode_state(&mut w);
            }
        }
        w.into_bytes()
    }

    /// Rebuilds a server from [`Server::export_state`] bytes. `specs`
    /// must be the same deployment specs (same order) the saved server
    /// was built from, and `cfg` the same configuration — both are
    /// validated where the state makes that possible.
    ///
    /// Deployment networks are reconstructed, not deserialized:
    /// `spec.build()` gives readings version 0 and
    /// [`SensorNetwork::resample`] is a pure function of
    /// `(positions, fields, seed)`, so any historical version is
    /// reachable directly. Cached plans are rebuilt by visiting each
    /// key's registration snapshot in ascending order before bringing
    /// the network to the deployment's live version.
    pub fn restore_state(
        cfg: ServeConfig,
        specs: &[DeploymentSpec],
        bytes: &[u8],
    ) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let config_sig = PlanKey::config_sig(&cfg.protocol);
        let tick = r.get_u64()?;
        let nqueue = r.get_count(32)?;
        let mut queue = VecDeque::with_capacity(nqueue);
        for _ in 0..nqueue {
            let tenant = TenantId(r.get_u64()?);
            let deployment = r.get_str()?.to_string();
            let sql = r.get_str()?.to_string();
            let every = r.get_u64()?;
            queue.push_back(Submission {
                tenant,
                deployment,
                sql,
                every,
            });
        }
        let nhandles = r.get_count(32)?;
        let mut handles = BTreeMap::new();
        for _ in 0..nhandles {
            let tenant = TenantId(r.get_u64()?);
            let handle = QueryHandle {
                deployment: DeploymentId(r.get_usize()?),
                group: r.get_usize()?,
                id: QueryId(r.get_usize()?),
            };
            handles.insert(tenant, handle);
        }
        let nkeys = r.get_count(24)?;
        let mut keys = Vec::new();
        for _ in 0..nkeys {
            let dep = r.get_u64()?;
            let snapshot = r.get_u64()?;
            let sql = r.get_str()?.to_string();
            keys.push((dep, snapshot, sql));
        }
        let metrics = ServeMetrics::decode(&mut r)?;
        let ndeps = r.get_count(24)?;
        if ndeps != specs.len() {
            return Err(CodecError::Invariant("deployment count != provided specs"));
        }
        let mut deployments = Vec::with_capacity(ndeps);
        let mut cache = HashMap::new();
        for (dep_ix, spec) in specs.iter().enumerate() {
            let name = r.get_str()?.to_string();
            if name != spec.name {
                return Err(CodecError::Invariant("deployment name != provided spec"));
            }
            let snapshot = r.get_u64()?;
            let mut snet = spec
                .build()
                .map_err(|_| CodecError::Invariant("deployment rebuild failed"))?;
            // Replay this deployment's cache entries. Keys are sorted by
            // (deployment, snapshot, sql), so snapshots ascend and
            // version 0 entries compile against the fresh build.
            let mut ver = 0u64;
            for (_, key_snapshot, sql) in keys.iter().filter(|k| k.0 == dep_ix as u64) {
                if *key_snapshot != ver {
                    snet.resample(&spec.fields, spec.seed.wrapping_add(*key_snapshot));
                    ver = *key_snapshot;
                }
                let parsed = parse(sql)
                    .map_err(|_| CodecError::Invariant("cached plan sql failed to parse"))?;
                let query = snet
                    .compile(&parsed)
                    .map_err(|_| CodecError::Invariant("cached plan sql failed to compile"))?;
                let plan = QueryPlan::build(&query, &snet, &cfg.protocol);
                cache.insert(
                    PlanKey::with_config_sig(dep_ix as u64, *key_snapshot, sql, config_sig.clone()),
                    CachedPlan { query, plan },
                );
            }
            // Bring the network to the deployment's live readings version.
            if ver != snapshot {
                if snapshot == 0 {
                    snet = spec
                        .build()
                        .map_err(|_| CodecError::Invariant("deployment rebuild failed"))?;
                } else {
                    snet.resample(&spec.fields, spec.seed.wrapping_add(snapshot));
                }
            }
            let ngroups = r.get_count(24)?;
            let mut groups = Vec::with_capacity(ngroups);
            let mut tenants = Vec::with_capacity(ngroups);
            let mut sqls = Vec::with_capacity(ngroups);
            for _ in 0..ngroups {
                let ntenants = r.get_count(8)?;
                let mut group_tenants = Vec::with_capacity(ntenants);
                for _ in 0..ntenants {
                    group_tenants.push(TenantId(r.get_u64()?));
                }
                let nsqls = r.get_count(8)?;
                let mut group_sqls = Vec::with_capacity(nsqls);
                for _ in 0..nsqls {
                    group_sqls.push(r.get_str()?.to_string());
                }
                let mut queries = Vec::with_capacity(group_sqls.len());
                for sql in &group_sqls {
                    let parsed = parse(sql)
                        .map_err(|_| CodecError::Invariant("slot sql failed to parse"))?;
                    queries.push(
                        snet.compile(&parsed)
                            .map_err(|_| CodecError::Invariant("slot sql failed to compile"))?,
                    );
                }
                groups.push(QueryGroup::restore_state(
                    cfg.protocol.clone(),
                    queries,
                    &mut r,
                )?);
                tenants.push(group_tenants);
                sqls.push(group_sqls);
            }
            deployments.push(Deployment {
                name,
                snet,
                specs: spec.fields.clone(),
                seed: spec.seed,
                snapshot,
                groups,
                tenants,
                sqls,
            });
        }
        r.expect_end()?;
        Ok(Self {
            config_sig,
            cfg,
            deployments,
            queue,
            cache,
            handles,
            metrics,
            tick,
        })
    }
}

/// Runs one tick of every deployment serially, in order.
fn run_serial(deps: &mut [Deployment]) -> Vec<Result<Vec<EpochReport>, ProtocolError>> {
    deps.iter_mut().map(|d| d.run_tick()).collect()
}

/// Runs one tick of every deployment, fanning contiguous chunks out
/// across scoped worker threads. Deployments are independent (disjoint
/// `&mut` state) and results are stitched back in deployment order, so
/// output is bit-identical to [`run_serial`].
#[cfg(feature = "parallel")]
fn run_deployments(deps: &mut [Deployment]) -> Vec<Result<Vec<EpochReport>, ProtocolError>> {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(deps.len());
    if workers <= 1 {
        return run_serial(deps);
    }
    let chunk = deps.len().div_ceil(workers);
    let mut results = Vec::with_capacity(deps.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = deps
            .chunks_mut(chunk)
            .map(|c| s.spawn(move || c.iter_mut().map(|d| d.run_tick()).collect::<Vec<_>>()))
            .collect();
        for h in handles {
            results.extend(h.join().expect("serve worker panicked"));
        }
    });
    results
}

#[cfg(not(feature = "parallel"))]
fn run_deployments(deps: &mut [Deployment]) -> Vec<Result<Vec<EpochReport>, ProtocolError>> {
    run_serial(deps)
}
