//! Mid-run cancellation and same-tenant re-admission.
//!
//! Cancellation retires the tenant's group slot (slots are never reused),
//! frees the tenant id for a fresh submission, and leaves every other
//! tenant's epochs untouched. A checkpoint taken while a group carries a
//! dead slot restores with [`sensjoin_core::QueryId`]s intact — the dead
//! slot's SQL is serialized precisely so the survivors keep their ids.

use sensjoin_serve::{DeploymentSpec, ServeConfig, Server, Submission, TenantId};

const NODES: usize = 40;

fn config() -> ServeConfig {
    ServeConfig {
        period_us: 30_000_000,
        ..ServeConfig::default()
    }
}

fn server() -> Server {
    let mut server = Server::new(config());
    server
        .add_deployment(&DeploymentSpec::new("dep0", NODES, 11))
        .expect("add deployment");
    server
}

fn submission(tenant: u64, c: f64) -> Submission {
    Submission {
        tenant: TenantId(tenant),
        deployment: "dep0".into(),
        sql: format!(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > {c} SAMPLE PERIOD 30"
        ),
        every: 1,
    }
}

/// Tenants whose epochs ran in a tick's report.
fn epoch_tenants(server: &mut Server) -> Vec<u64> {
    let report = server.tick().expect("tick");
    let mut tenants: Vec<u64> = report.epochs.iter().map(|e| e.tenant.0).collect();
    tenants.sort_unstable();
    tenants
}

#[test]
fn cancel_mid_run_retires_slot_and_spares_neighbors() {
    let mut server = server();
    assert!(server.submit(submission(0, 3.0)).is_none());
    assert!(server.submit(submission(1, 4.0)).is_none());
    assert_eq!(epoch_tenants(&mut server), vec![0, 1]);

    assert!(server.cancel(TenantId(0)), "tenant 0 was live");
    assert!(!server.cancel(TenantId(0)), "second cancel is a no-op");
    // The neighbor keeps running; the cancelled tenant's epochs stop.
    assert_eq!(epoch_tenants(&mut server), vec![1]);
    assert_eq!(epoch_tenants(&mut server), vec![1]);
}

#[test]
fn same_tenant_id_readmits_after_cancel() {
    let mut server = server();
    assert!(server.submit(submission(7, 3.0)).is_none());
    assert_eq!(epoch_tenants(&mut server), vec![7]);

    // Live tenants are duplicates...
    let dup = server.submit(submission(7, 5.0));
    assert!(
        dup.is_some_and(|d| !d.admitted()),
        "live tenant must not be re-admitted"
    );

    // ...but a cancelled id is free again, and the re-admitted query runs
    // (in a fresh slot — retired slots are never reused).
    assert!(server.cancel(TenantId(7)));
    assert!(server.submit(submission(7, 5.0)).is_none());
    assert_eq!(epoch_tenants(&mut server), vec![7]);
    assert_eq!(epoch_tenants(&mut server), vec![7]);
}

#[test]
fn checkpoint_with_dead_slot_restores_query_ids() {
    let spec = DeploymentSpec::new("dep0", NODES, 11);
    let mut server = server();
    for t in 0..3 {
        assert!(server.submit(submission(t, 3.0 + t as f64)).is_none());
    }
    assert_eq!(epoch_tenants(&mut server), vec![0, 1, 2]);
    // Kill the middle slot, then keep running so the survivors' state
    // moves past the cancellation.
    assert!(server.cancel(TenantId(1)));
    assert_eq!(epoch_tenants(&mut server), vec![0, 2]);

    // Snapshot with the dead slot present, restore, and compare the
    // restored server's behavior and re-exported state bit for bit.
    let frozen = server.export_state();
    let mut restored =
        Server::restore_state(config(), std::slice::from_ref(&spec), &frozen).expect("restore");
    assert_eq!(restored.export_state(), frozen, "restore is a fixpoint");

    // Both servers must agree tick for tick — including the survivors'
    // QueryIds, which index past the dead slot.
    for _ in 0..3 {
        assert_eq!(epoch_tenants(&mut server), epoch_tenants(&mut restored));
    }
    assert_eq!(server.export_state(), restored.export_state());

    // And the restored server still accepts a re-admission of the
    // cancelled id.
    assert!(restored.submit(submission(1, 9.0)).is_none());
    assert_eq!(epoch_tenants(&mut restored), vec![0, 1, 2]);
}
