//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `criterion` to this crate (see `[patch.crates-io]` in the root
//! manifest). It provides wall-clock micro-benchmarking with criterion's
//! surface syntax — [`criterion_group!`], [`criterion_main!`],
//! [`Criterion::bench_function`], benchmark groups with throughput and
//! per-input benches — minus the statistical machinery: each benchmark is
//! warmed up, run for a fixed measurement window, and reported as mean
//! wall-clock time per iteration (plus throughput when configured).
//!
//! Recognized CLI arguments: `--quick` (short measurement window, used by
//! CI smoke runs), `--bench`/`--test` (accepted for cargo compatibility)
//! and any bare argument, treated as a substring filter on benchmark names.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a value or computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput basis for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name with a parameter value.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a parameter only.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher<'a> {
    measured: &'a mut Option<Duration>,
    iters_hint: u64,
}

impl Bencher<'_> {
    /// Times `routine`, storing the mean duration per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_hint {
            black_box(routine());
        }
        let total = start.elapsed();
        *self.measured = Some(total / self.iters_hint.max(1) as u32);
    }

    /// Times `routine` with explicit control of the iteration count
    /// (criterion's `iter_custom`): the closure receives the iteration
    /// count and returns the total elapsed time.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let total = routine(self.iters_hint);
        *self.measured = Some(total / self.iters_hint.max(1) as u32);
    }
}

/// Benchmark runner state and configuration.
pub struct Criterion {
    filter: Option<String>,
    measurement: Duration,
    warmup: Duration,
    results: Vec<(String, Duration)>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut quick = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => quick = true,
                "--bench" | "--test" | "--quiet" | "--verbose" | "-v" | "--noplot" => {}
                s if s.starts_with("--") => {} // unknown flags: ignore (compat)
                s => filter = Some(s.to_owned()),
            }
        }
        let (measurement, warmup) = if quick {
            (Duration::from_millis(20), Duration::from_millis(5))
        } else {
            (Duration::from_millis(300), Duration::from_millis(60))
        };
        Self {
            filter,
            measurement,
            warmup,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    fn included(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if !self.included(name) {
            return;
        }
        // Warmup & calibration: run with growing iteration counts until the
        // warmup window is spent, deriving the per-iteration cost.
        let mut iters: u64 = 1;
        let mut per_iter = Duration::from_nanos(1);
        let warm_start = Instant::now();
        loop {
            let mut measured = None;
            f(&mut Bencher {
                measured: &mut measured,
                iters_hint: iters,
            });
            per_iter = measured.unwrap_or(per_iter).max(Duration::from_nanos(1));
            if warm_start.elapsed() >= self.warmup {
                break;
            }
            iters = iters.saturating_mul(2).min(1 << 30);
        }
        // Measurement: one batch sized to fill the measurement window.
        let target_iters =
            (self.measurement.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 30) as u64;
        let mut measured = None;
        f(&mut Bencher {
            measured: &mut measured,
            iters_hint: target_iters,
        });
        let per_iter = measured.unwrap_or(per_iter);
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!(" ({:.2} Melem/s)", n as f64 / per_iter.as_secs_f64() / 1e6)
            }
            Throughput::Bytes(n) => format!(
                " ({:.2} MiB/s)",
                n as f64 / per_iter.as_secs_f64() / (1024.0 * 1024.0)
            ),
        });
        println!(
            "{name:<50} time: {:>12}{}",
            format_duration(per_iter),
            rate.unwrap_or_default()
        );
        self.results.push((name.to_owned(), per_iter));
    }

    /// Mean per-iteration times of every benchmark run so far, in execution
    /// order. Lets harness-free `main`s export machine-readable results
    /// (criterion proper writes these under `target/criterion/`; the shim
    /// hands them to the caller instead).
    pub fn results(&self) -> &[(String, Duration)] {
        &self.results
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the shim's
    /// single-batch measurement has no sample notion).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput basis for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let t = self.throughput;
        self.criterion.run_one(&full, t, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        let t = self.throughput;
        self.criterion.run_one(&full, t, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Defines a function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
