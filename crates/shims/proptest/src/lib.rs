//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `proptest` to this crate (see `[patch.crates-io]` in the root
//! manifest). It implements randomized property testing with the same
//! surface syntax as upstream proptest — the [`proptest!`] macro,
//! [`Strategy`] combinators (`prop_map`, `prop_flat_map`, [`prop_oneof!`],
//! tuples, ranges, [`Just`], `prop::collection::vec`, [`any`]), the
//! `prop_assert*` family and [`ProptestConfig`] — minus input shrinking:
//! a failing case reports its inputs (via the assertion message) but is not
//! minimized. Case generation is deterministic per test name and case
//! index, so failures reproduce across runs.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner;

pub use test_runner::{TestCaseError, TestRng};

/// Runner configuration. Only `cases` is honored by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum ratio of rejected (`prop_assume!`) to accepted cases before
    /// the runner gives up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// A generator of values of type `Self::Value`.
///
/// Object safe: combinators carry `where Self: Sized` so
/// `Box<dyn Strategy<Value = T>>` works (the basis of [`prop_oneof!`]).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `f` (resamples; rejects the case after
    /// too many failures).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (used by [`prop_oneof!`] to unify variant types).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 samples in a row",
            self.whence
        );
    }
}

/// Uniform choice among boxed variants (built by [`prop_oneof!`]).
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given variants (must be non-empty).
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        Self { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.variants.len() as u64) as usize;
        self.variants[i].generate(rng)
    }
}

// ---- Ranges as strategies ----

/// Primitive types uniformly sampleable from ranges.
pub trait RangedValue: Sized + Copy + PartialOrd {
    /// Uniform in `[lo, hi)`.
    fn sample_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    /// Uniform in `[lo, hi]`.
    fn sample_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
}

impl RangedValue for f64 {
    fn sample_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty f64 range [{lo}, {hi})");
        let v = lo + rng.unit_f64() * (hi - lo);
        if v >= hi {
            lo
        } else {
            v
        }
    }
    fn sample_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty f64 range [{lo}, {hi}]");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl RangedValue for f32 {
    fn sample_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
    fn sample_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        f64::sample_inclusive(rng, lo as f64, hi as f64) as f32
    }
}

macro_rules! impl_ranged_int {
    ($($t:ty),*) => {$(
        impl RangedValue for $t {
            fn sample_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(rng.below(span) as $t)
            }
            fn sample_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain u64/i64 range.
                    lo.wrapping_add(rng.next_u64() as $t)
                } else {
                    lo.wrapping_add(rng.below(span as u64) as $t)
                }
            }
        }
    )*};
}

impl_ranged_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: RangedValue> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: RangedValue> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

// ---- Tuples of strategies ----

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7);
}

// ---- `any` ----

/// Marker strategy for "any value of `T`" ([`any`]).
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T`.
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, wide-range doubles (proptest generates non-finite values
        // too; no caller here depends on them).
        let mag = rng.unit_f64() * 2e9 - 1e9;
        mag
    }
}

impl Strategy for Any<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        random_char(rng)
    }
}

// ---- String-pattern strategies ----

/// A `&str` used where a strategy is expected is, in upstream proptest, a
/// regex generator. The shim does not ship a regex engine; it recognizes
/// the size bound of `.{lo,hi}`-style suffixes and otherwise produces
/// arbitrary printable (non-control) strings, which satisfies the
/// robustness tests using patterns like `"\\PC{0,200}"`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let max = parse_repeat_max(self).unwrap_or(64);
        let len = rng.below(max as u64 + 1) as usize;
        (0..len).map(|_| random_char(rng)).collect()
    }
}

fn parse_repeat_max(pattern: &str) -> Option<usize> {
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    let body = pattern.get(open + 1..close)?;
    let max_part = body.split(',').next_back()?.trim();
    max_part.parse().ok()
}

fn random_char(rng: &mut TestRng) -> char {
    // Mostly ASCII printable, sprinkled with multi-byte code points to
    // exercise UTF-8 handling.
    match rng.below(10) {
        0 => char::from_u32(0x00A1 + rng.below(0x1000) as u32).unwrap_or('¿'),
        1 => ['∑', '→', '𝕊', 'λ', 'Ω', '漢', '🙂'][rng.below(7) as usize],
        _ => (0x20u8 + rng.below(0x5F) as u8) as char,
    }
}

/// Sub-modules mirroring upstream's `prop::` paths.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size specification for [`vec`]: an exact length or a length range.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start() <= self.end(), "empty size range");
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// A strategy producing `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Formats a value for failure messages without requiring `Debug` bounds at
/// strategy level (used internally by the macros).
pub fn describe<T: fmt::Debug>(v: &T) -> String {
    format!("{v:?}")
}

/// Everything tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, boxed, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Any, BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// The `prop::` module alias used for `prop::collection::vec` paths.
    pub mod prop {
        pub use crate::collection;
    }
}

// ---- Macros ----

/// Uniform choice among the listed strategies (all must yield one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strat)),+])
    };
}

/// Rejects the current case (does not count toward the case budget) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($a), stringify!($b), __l, __r
                        ),
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            ::std::format!($($fmt)*), __l, __r
                        ),
                    ));
                }
            }
        }
    };
}

/// Fails the current case unless the two values compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($a),
                            stringify!($b),
                            __l
                        ),
                    ));
                }
            }
        }
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u64..10, v in prop::collection::vec(any::<u8>(), 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($argpat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __accepted: u32 = 0;
            let mut __attempt: u32 = 0;
            while __accepted < __config.cases {
                __attempt += 1;
                if __attempt > __config.cases.saturating_add(__config.max_global_rejects) {
                    panic!(
                        "proptest: too many rejected cases ({} accepted of {} wanted)",
                        __accepted, __config.cases
                    );
                }
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __attempt,
                );
                let ($($argpat,)+) = ($($crate::Strategy::generate(&($strat), &mut __rng),)+);
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} (attempt {}) failed: {}",
                            __accepted + 1,
                            __attempt,
                            msg
                        );
                    }
                }
            }
        }
    )*};
}
