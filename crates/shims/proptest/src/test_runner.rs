//! Deterministic case RNG and case-level error type for the shim runner.

/// Why a test-case closure did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not failed.
    Reject(String),
    /// A `prop_assert*` failed — the test fails with this message.
    Fail(String),
}

/// A small, fast, deterministic RNG (xoshiro256++), seeded from the test
/// name and the case index so every run generates the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// The RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index via SplitMix64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = h ^ ((case as u64) << 32 | 0x5DEECE66D);
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self {
            s: if s == [0; 4] { [1, 2, 3, 4] } else { s },
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound == 1 {
            return 0;
        }
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut r = TestRng::for_case("y", 1);
        for bound in [1u64, 2, 3, 7, 1000] {
            for _ in 0..100 {
                assert!(r.below(bound) < bound);
            }
        }
    }
}
