//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` to this crate (see `[patch.crates-io]` in the root
//! manifest). It provides:
//!
//! * [`rngs::SmallRng`] — xoshiro256++, the same algorithm rand 0.8 uses for
//!   `SmallRng` on 64-bit targets, seeded via SplitMix64 exactly like
//!   `SeedableRng::seed_from_u64`,
//! * the [`Rng`] trait with `gen_range` (half-open and inclusive ranges over
//!   the primitive numeric types used here) and `gen_bool`,
//! * the [`SeedableRng`] trait with `seed_from_u64`.
//!
//! Streams are deterministic functions of the seed, which is all the
//! simulator and the tests rely on.

use std::ops::{Range, RangeInclusive};

/// A random number generator core: a source of `u64` words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// Types that can be uniformly sampled from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range [{lo}, {hi})");
        // 53 uniform mantissa bits -> u in [0, 1), then affine map. The map
        // can round up to `hi` for extreme spans; clamp to stay half-open.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = lo + u * (hi - lo);
        if v >= hi {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            v
        }
    }

    fn sample_inclusive(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range [{lo}, {hi}]");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
    fn sample_inclusive(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self {
        f64::sample_inclusive(rng, lo as f64, hi as f64) as f32
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
            fn sample_inclusive(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform value in `[0, span)` (`span > 0`) by rejection.
fn uniform_u128(rng: &mut impl RngCore, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // All spans here fit in u64 (integer ranges of primitive widths).
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

/// Argument forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a sample from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] from the standard distribution.
pub trait Standard {
    /// Draws a value.
    fn draw(rng: &mut impl RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn draw(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        f64::draw(self) < p
    }

    /// A value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (identical to rand
    /// 0.8's default `seed_from_u64`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Vigna), as used by rand_core.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — rand 0.8's `SmallRng` on 64-bit platforms: fast,
    /// non-cryptographic, 256-bit state.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; rand guards the same
            // way via its seeding machinery.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            Self { s }
        }
    }

    /// `StdRng` alias — the shim backs it with the same xoshiro256++ core
    /// (statistical quality, not cryptographic security, is what callers
    /// here need).
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same = (0..100).all(|_| a.gen_range(0u64..1000) == c.gen_range(0u64..1000));
        assert!(!same);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(2.5f64..3.5);
            assert!((2.5..3.5).contains(&f));
            let i = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&i));
            let u = rng.gen_range(10usize..20);
            assert!((10..20).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
