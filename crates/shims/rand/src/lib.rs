//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` to this crate (see `[patch.crates-io]` in the root
//! manifest). It provides:
//!
//! * [`rngs::SmallRng`] — xoshiro256++, the same algorithm rand 0.8 uses for
//!   `SmallRng` on 64-bit targets, with `seed_from_u64` pinned to
//!   rand_xoshiro's SplitMix64 expansion (one 64-bit word per step),
//! * [`rngs::Pcg32`] — the vendored PCG (PCG-XSH-RR 64/32, "pcg32"),
//!   bit-identical to `rand_pcg` 0.3's `Lcg64Xsh32`,
//! * the [`Rng`] trait with `gen_range` (half-open and inclusive ranges over
//!   the primitive numeric types used here), `gen_bool` and `gen`,
//! * the [`SeedableRng`] trait whose default `seed_from_u64` is pinned to
//!   rand_core 0.6's PCG32-based seed expansion.
//!
//! See this crate's `README.md` for the exact stream-compatibility
//! guarantee: which byte/word streams are bit-identical to upstream rand
//! 0.8 (and verified by known-answer tests below), and which mappings are
//! shim-local.

use std::ops::{Range, RangeInclusive};

/// The PCG/LCG multiplier shared by the pcg32 generator and rand_core's
/// `seed_from_u64` expansion (Knuth's MMIX / PCG reference constant).
const PCG_MULTIPLIER: u64 = 6364136223846793005;

/// A random number generator core: a source of `u64` words.
pub trait RngCore {
    /// The next 32 random bits. For 64-bit cores the convention (shared
    /// with rand_core's `next_u32_via_u64` and rand_xoshiro) is plain
    /// truncation to the low half.
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// Types that can be uniformly sampled from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range [{lo}, {hi})");
        // 53 uniform mantissa bits -> u in [0, 1), then affine map. The map
        // can round up to `hi` for extreme spans; clamp to stay half-open.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = lo + u * (hi - lo);
        if v >= hi {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            v
        }
    }

    fn sample_inclusive(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range [{lo}, {hi}]");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
    fn sample_inclusive(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self {
        f64::sample_inclusive(rng, lo as f64, hi as f64) as f32
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
            fn sample_inclusive(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform value in `[0, span)` (`span > 0`) by rejection.
fn uniform_u128(rng: &mut impl RngCore, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // All spans here fit in u64 (integer ranges of primitive widths).
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

/// Argument forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a sample from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] from the standard distribution.
pub trait Standard {
    /// Draws a value.
    fn draw(rng: &mut impl RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn draw(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        f64::draw(self) < p
    }

    /// A value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the vendored PCG: one PCG32
    /// (XSH-RR 64/32) output per 4-byte chunk, advancing the LCG state
    /// *before* each output — bit-identical to rand_core 0.6's default
    /// `seed_from_u64`. Generators that upstream rand 0.8 seeds differently
    /// override this (see [`rngs::SmallRng`]).
    fn seed_from_u64(mut state: u64) -> Self {
        // rand_core 0.6 fixes this increment (unrelated to Pcg32's default
        // stream) so the expansion is its own pinned function.
        const INCREMENT: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(PCG_MULTIPLIER).wrapping_add(INCREMENT);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng, PCG_MULTIPLIER};

    /// xoshiro256++ — rand 0.8's `SmallRng` on 64-bit platforms: fast,
    /// non-cryptographic, 256-bit state.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The raw xoshiro256++ state words — the checkpoint/restore
        /// surface. A generator rebuilt with [`SmallRng::from_state`] from
        /// these words continues the exact output stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state words previously exported with
        /// [`SmallRng::state`]. An all-zero state (a xoshiro fixed point,
        /// never produced by seeding) is remapped like `from_seed`.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            // An all-zero state would be a fixed point; rand_xoshiro remaps
            // it to `seed_from_u64(0)` and we follow.
            if seed == [0; 32] {
                return Self::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            Self { s }
        }

        /// rand 0.8 (via rand_xoshiro) overrides the default expansion for
        /// xoshiro generators: the state is four successive SplitMix64
        /// outputs of the seed — one full 64-bit word per step, *not* the
        /// 4-byte-chunk default. Pinned here so
        /// `SmallRng::seed_from_u64(s)` is bit-identical to upstream.
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    /// The vendored PCG: PCG-XSH-RR 64/32 ("pcg32"), bit-identical to
    /// `rand_pcg` 0.3's `Lcg64Xsh32` — 64-bit LCG state, 32-bit output via
    /// xorshift-high + random rotation, selectable odd-increment stream.
    #[derive(Debug, Clone)]
    pub struct Pcg32 {
        state: u64,
        increment: u64,
    }

    impl Pcg32 {
        /// A pcg32 over the stream selected by `stream` (the increment is
        /// `(stream << 1) | 1`), seeded with `state` — the reference
        /// `pcg32_srandom_r(state, stream)` initialization.
        pub fn new(state: u64, stream: u64) -> Self {
            let increment = (stream << 1) | 1;
            let mut pcg = Pcg32 {
                state: state.wrapping_add(increment),
                increment,
            };
            pcg.step();
            pcg
        }

        fn step(&mut self) {
            self.state = self
                .state
                .wrapping_mul(PCG_MULTIPLIER)
                .wrapping_add(self.increment);
        }
    }

    impl RngCore for Pcg32 {
        /// Native 32-bit output: XSH-RR of the pre-advance state.
        fn next_u32(&mut self) -> u32 {
            let state = self.state;
            self.step();
            let rot = (state >> 59) as u32;
            let xsh = (((state >> 18) ^ state) >> 27) as u32;
            xsh.rotate_right(rot)
        }

        /// Two 32-bit outputs, low half first (rand_core's
        /// `next_u64_via_u32`).
        fn next_u64(&mut self) -> u64 {
            let lo = u64::from(self.next_u32());
            let hi = u64::from(self.next_u32());
            (hi << 32) | lo
        }
    }

    impl SeedableRng for Pcg32 {
        type Seed = [u8; 16];

        /// First 8 bytes: LCG state; last 8 bytes: stream (as in
        /// `rand_pcg`, which shifts the stream to force an odd increment).
        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = [0u8; 8];
            let mut stream = [0u8; 8];
            state.copy_from_slice(&seed[..8]);
            stream.copy_from_slice(&seed[8..]);
            Self::new(u64::from_le_bytes(state), u64::from_le_bytes(stream))
        }
    }

    /// `StdRng` alias — the shim backs it with the same xoshiro256++ core
    /// (statistical quality, not cryptographic security, is what callers
    /// here need). This alias is **not** stream-compatible with upstream
    /// `StdRng` (ChaCha12); see the crate README.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::{Pcg32, SmallRng};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same = (0..100).all(|_| a.gen_range(0u64..1000) == c.gen_range(0u64..1000));
        assert!(!same);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(2.5f64..3.5);
            assert!((2.5..3.5).contains(&f));
            let i = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&i));
            let u = rng.gen_range(10usize..20);
            assert!((10..20).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    /// Known-answer test against the pcg32 reference implementation's demo
    /// stream (`pcg32_srandom_r(42, 54)`), the vector published with the
    /// PCG paper and checked by rand_pcg itself.
    #[test]
    fn pcg32_reference_vector() {
        let mut rng = Pcg32::new(42, 54);
        let expected: [u32; 6] = [
            0xa15c_02b7,
            0x7b47_f409,
            0xba1d_3330,
            0x83d2_f293,
            0xbfa4_784b,
            0xcbed_606e,
        ];
        for e in expected {
            assert_eq!(rng.next_u32(), e);
        }
    }

    /// `from_seed` splits the 16 bytes into (state, stream) little-endian,
    /// so an explicitly assembled seed must reproduce the demo stream.
    #[test]
    fn pcg32_from_seed_layout() {
        let mut seed = [0u8; 16];
        seed[..8].copy_from_slice(&42u64.to_le_bytes());
        seed[8..].copy_from_slice(&54u64.to_le_bytes());
        let mut rng = Pcg32::from_seed(seed);
        assert_eq!(rng.next_u32(), 0xa15c_02b7);
        // next_u64 composes two u32 outputs, low half first.
        let mut rng2 = Pcg32::new(42, 54);
        rng2.next_u32();
        assert_eq!(rng.next_u64(), 0x7b47_f409 | (0xba1d_3330u64 << 32));
        let _ = rng2;
    }

    /// The default `seed_from_u64` must expand per 4-byte chunk with one
    /// PCG32 step each (rand_core 0.6's pinned algorithm). Checked by
    /// replicating the raw LCG + XSH-RR here and comparing `from_seed`.
    #[test]
    fn default_seed_expansion_is_rand_core_pcg() {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut state = 42u64;
        let mut out = [0u8; 16];
        for chunk in out.chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
        }
        let mut a = Pcg32::seed_from_u64(42);
        let mut b = Pcg32::from_seed(out);
        for _ in 0..8 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    /// xoshiro256++ known-answer vector: with state words `[1, 2, 3, 4]`
    /// the reference implementation emits these first outputs.
    #[test]
    fn xoshiro256pp_reference_vector() {
        let mut seed = [0u8; 32];
        for (i, w) in [1u64, 2, 3, 4].iter().enumerate() {
            seed[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
        let mut rng = SmallRng::from_seed(seed);
        let expected: [u64; 4] = [41943041, 58720359, 3588806011781223, 3591011842654386];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    /// `SmallRng::seed_from_u64` uses rand_xoshiro's SplitMix64 word
    /// expansion, whose first output for seed 0 is the published SplitMix64
    /// vector `0xe220a8397b1dcdaf, ...` — so seeding from 0 must equal
    /// seeding from those words directly.
    #[test]
    fn smallrng_seeding_is_splitmix_words() {
        let words: [u64; 4] = [
            0xe220_a839_7b1d_cdaf,
            0x6e78_9e6a_a1b9_65f4,
            0x06c4_5d18_8009_454f,
            0xf88b_b8a8_724c_81ec,
        ];
        let mut seed = [0u8; 32];
        for (i, w) in words.iter().enumerate() {
            seed[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::from_seed(seed);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Truncation convention for 64-bit cores: `next_u32` is the low half.
    #[test]
    fn next_u32_truncates_low_half() {
        let mut a = SmallRng::seed_from_u64(5);
        let mut b = SmallRng::seed_from_u64(5);
        for _ in 0..8 {
            assert_eq!(a.next_u32(), b.next_u64() as u32);
        }
    }
}
