//! Per-node battery state and network-lifetime scenario tracking.
//!
//! The paper measures join methods by communication cost because radio
//! bytes drain batteries and dead nodes end the network. This module closes
//! that loop: a [`BatteryBank`] holds per-node residual energy in the same
//! flat struct-of-arrays layout as the routing tree, every µJ the
//! [`crate::EnergyModel`] charges into [`crate::NetworkStats`] is debited
//! from the transmitting/receiving node's battery at the same call site
//! (including [`crate::StatLedger`] replays of parallel waves, which keeps
//! the serial f64 addition order and therefore bit-identity), and
//! exhaustion is converted by [`crate::Network::apply_churn`] into the
//! existing crash-stop churn machinery — so the liveness-projected
//! exactness guarantees of the recovery paths carry over unchanged to
//! endogenous, energy-driven failure.
//!
//! Depletion is applied at protocol *boundaries* only: a node that crosses
//! its capacity mid-round keeps transmitting until the next
//! [`crate::Network::apply_churn`] poll, exactly like an exogenous
//! boundary-scoped [`crate::ChurnTimeline`] event. That boundary semantics
//! is what makes a recorded death schedule replayable as an exogenous
//! timeline with bit-identical statistics.
//!
//! [`LifetimeRun`] is the passive scenario tracker behind `sensjoin
//! lifetime`: drivers execute continuous/multi-query rounds and feed the
//! network back after each one; the tracker accumulates the death-order
//! trace and decides when the configured [`LifetimeUntil`] criterion ends
//! the run.

use crate::churn::{stream_seed, STREAM_BATTERY};
use crate::Network;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sensjoin_relation::NodeId;

/// Per-node battery state, flat struct-of-arrays.
///
/// The base station is powered: its capacity is infinite (debits are still
/// tracked, so its drawn energy remains observable). A node is *depleted*
/// once its cumulative debit reaches its capacity; the first crossing is
/// latched into a pending queue that [`crate::Network::apply_churn`] drains
/// into crash-stop failures at the next protocol boundary.
#[derive(Debug, Clone)]
pub struct BatteryBank {
    capacity_uj: Vec<f64>,
    debited_uj: Vec<f64>,
    depleted: Vec<bool>,
    /// Nodes whose first capacity crossing has not been applied yet, in
    /// crossing order.
    pending: Vec<NodeId>,
    /// Every drained pending node, in drain order — the death-order trace.
    death_order: Vec<NodeId>,
}

impl BatteryBank {
    /// A bank of `n` identical `capacity_uj`-µJ batteries; `base` is
    /// powered (infinite capacity).
    pub fn uniform(n: usize, base: NodeId, capacity_uj: f64) -> Self {
        assert!(capacity_uj > 0.0, "battery capacity must be positive");
        let mut capacity = vec![capacity_uj; n];
        capacity[base.0 as usize] = f64::INFINITY;
        Self {
            capacity_uj: capacity,
            debited_uj: vec![0.0; n],
            depleted: vec![false; n],
            pending: Vec::new(),
            death_order: Vec::new(),
        }
    }

    /// [`BatteryBank::uniform`] with seeded per-node capacity jitter:
    /// node `v` gets `capacity_uj · (1 + jitter · u_v)` with `u_v` drawn
    /// uniformly from `[-1, 1)` on the [`STREAM_BATTERY`] sub-stream of
    /// `seed` (split once more per node, the repo-wide convention), so one
    /// master seed reproduces loss, churn and battery spread together.
    pub fn with_jitter(n: usize, base: NodeId, capacity_uj: f64, jitter: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&jitter),
            "jitter fraction must be in [0, 1)"
        );
        let mut bank = Self::uniform(n, base, capacity_uj);
        if jitter == 0.0 {
            return bank;
        }
        let master = stream_seed(seed, STREAM_BATTERY);
        for v in 0..n as u32 {
            if v == base.0 {
                continue;
            }
            let mut rng = SmallRng::seed_from_u64(stream_seed(master, v as u64));
            let u: f64 = rng.gen_range(-1.0..1.0);
            bank.capacity_uj[v as usize] = capacity_uj * (1.0 + jitter * u);
        }
        bank
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.capacity_uj.len()
    }

    /// Whether the bank is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.capacity_uj.is_empty()
    }

    /// Debits `uj` from `node`, latching the first capacity crossing into
    /// the pending queue. Called from every charge site (direct sinks,
    /// ledger replays, repair beacons), in the exact order the matching
    /// [`crate::NetworkStats`] energy additions happen — so the cumulative
    /// debit is bit-identical to the node's `energy_uj` counter sum.
    #[inline]
    pub fn debit(&mut self, node: NodeId, uj: f64) {
        let i = node.0 as usize;
        self.debited_uj[i] += uj;
        if !self.depleted[i] && self.debited_uj[i] >= self.capacity_uj[i] {
            self.depleted[i] = true;
            self.pending.push(node);
        }
    }

    /// Drains the pending first-crossings (in crossing order), appending
    /// them to the death-order trace. [`crate::Network::apply_churn`] calls
    /// this at each protocol boundary and converts the drained nodes into
    /// crash-stop failures.
    pub fn take_pending(&mut self) -> Vec<NodeId> {
        let drained = std::mem::take(&mut self.pending);
        self.death_order.extend_from_slice(&drained);
        drained
    }

    /// Initial capacity of `node` (µJ; infinite for the base).
    pub fn capacity_uj(&self, node: NodeId) -> f64 {
        self.capacity_uj[node.0 as usize]
    }

    /// Cumulative energy debited from `node` (µJ).
    pub fn debited_uj(&self, node: NodeId) -> f64 {
        self.debited_uj[node.0 as usize]
    }

    /// Residual energy of `node` (µJ), clamped at zero.
    pub fn residual_uj(&self, node: NodeId) -> f64 {
        (self.capacity_uj[node.0 as usize] - self.debited_uj[node.0 as usize]).max(0.0)
    }

    /// Residual energy of every node, indexed by id (the parent-selection
    /// metric of [`crate::ParentPolicy::PowerAware`]).
    pub fn residuals(&self) -> Vec<f64> {
        self.capacity_uj
            .iter()
            .zip(&self.debited_uj)
            .map(|(c, d)| (c - d).max(0.0))
            .collect()
    }

    /// Whether `node` has crossed its capacity.
    pub fn is_depleted(&self, node: NodeId) -> bool {
        self.depleted[node.0 as usize]
    }

    /// Total energy debited across all nodes (µJ). Equals the sum of every
    /// `energy_uj` the network charged while this bank was attached.
    pub fn total_debited_uj(&self) -> f64 {
        self.debited_uj.iter().sum()
    }

    /// Nodes whose exhaustion has been applied, in exhaustion order.
    pub fn death_order(&self) -> &[NodeId] {
        &self.death_order
    }

    /// Exports the bank's full mutable state — the checkpoint/restore
    /// surface.
    pub fn export_state(&self) -> BatterySnapshot {
        BatterySnapshot {
            capacity_uj: self.capacity_uj.clone(),
            debited_uj: self.debited_uj.clone(),
            depleted: self.depleted.clone(),
            pending: self.pending.clone(),
            death_order: self.death_order.clone(),
        }
    }

    /// Replaces the bank's state with a previously exported snapshot. The
    /// snapshot must describe a bank of the same node count.
    pub fn import_state(&mut self, s: &BatterySnapshot) {
        assert_eq!(
            s.capacity_uj.len(),
            self.capacity_uj.len(),
            "battery snapshot node count mismatch"
        );
        self.capacity_uj = s.capacity_uj.clone();
        self.debited_uj = s.debited_uj.clone();
        self.depleted = s.depleted.clone();
        self.pending = s.pending.clone();
        self.death_order = s.death_order.clone();
    }
}

/// Plain-data export of a [`BatteryBank`]'s mutable state (see
/// [`BatteryBank::export_state`]). All fields are per-node, indexed by id,
/// except the two event-ordered traces.
#[derive(Debug, Clone, PartialEq)]
pub struct BatterySnapshot {
    /// Initial capacity per node (µJ; infinite for the base).
    pub capacity_uj: Vec<f64>,
    /// Cumulative debit per node (µJ).
    pub debited_uj: Vec<f64>,
    /// Whether each node has crossed its capacity.
    pub depleted: Vec<bool>,
    /// First-crossings not yet applied, in crossing order.
    pub pending: Vec<NodeId>,
    /// Applied exhaustions, in exhaustion order.
    pub death_order: Vec<NodeId>,
}

/// When a [`LifetimeRun`] ends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LifetimeUntil {
    /// The first battery death ends the run — the classic network-lifetime
    /// metric of the power-aware-routing literature.
    FirstDeath,
    /// The run ends when some live node that used to have a route can no
    /// longer reach the base station.
    BasePartition,
    /// The run ends once the given fraction of the non-base nodes is dead.
    DeathFraction(f64),
}

/// Why a [`LifetimeRun`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifetimeEnd {
    /// The first node exhausted its battery.
    FirstDeath(NodeId),
    /// A live, previously-routed node lost every route to the base.
    BasePartition,
    /// The configured death fraction was reached.
    DeathFraction,
    /// The round cap was reached before the criterion fired.
    MaxRounds,
}

impl std::fmt::Display for LifetimeEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LifetimeEnd::FirstDeath(n) => write!(f, "first death (node {})", n.0),
            LifetimeEnd::BasePartition => write!(f, "base partition"),
            LifetimeEnd::DeathFraction => write!(f, "death fraction reached"),
            LifetimeEnd::MaxRounds => write!(f, "round cap reached"),
        }
    }
}

/// Outcome of a finished [`LifetimeRun`].
#[derive(Debug, Clone)]
pub struct LifetimeReport {
    /// Rounds executed before (and including) the ending round.
    pub rounds: u64,
    /// Why the run ended.
    pub reason: LifetimeEnd,
    /// Every battery death, as `(round, node)` in death order.
    pub deaths: Vec<(u64, NodeId)>,
    /// Residual energy per node at the end (µJ, by id; base is infinite).
    pub residual_uj: Vec<f64>,
    /// Live non-base nodes remaining.
    pub live: usize,
}

impl LifetimeReport {
    /// Minimum residual among live non-base nodes (µJ), if any survive.
    pub fn min_residual_uj(&self) -> Option<f64> {
        self.finite_residuals().min_by(f64::total_cmp)
    }

    /// Mean residual across non-base nodes (µJ).
    pub fn mean_residual_uj(&self) -> f64 {
        let (sum, n) = self
            .finite_residuals()
            .fold((0.0, 0usize), |(s, n), r| (s + r, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    fn finite_residuals(&self) -> impl Iterator<Item = f64> + '_ {
        self.residual_uj.iter().copied().filter(|r| r.is_finite())
    }
}

/// Passive lifetime-scenario tracker: the driver executes rounds (continuous
/// or multi-query) and calls [`LifetimeRun::observe`] with the network after
/// each one; the tracker reads newly applied battery deaths off the attached
/// [`BatteryBank`]'s death order, attributes them to the round, and reports
/// when the [`LifetimeUntil`] criterion (or the round cap) ends the run.
#[derive(Debug, Clone)]
pub struct LifetimeRun {
    until: LifetimeUntil,
    max_rounds: u64,
    rounds: u64,
    deaths: Vec<(u64, NodeId)>,
    seen: usize,
    /// Nodes that had no route at the start — pre-existing stragglers never
    /// count as a partition.
    initially_routed: Vec<bool>,
}

impl LifetimeRun {
    /// Starts tracking `net` (snapshotting which nodes are routed, so
    /// pre-existing unreachable stragglers never trigger
    /// [`LifetimeUntil::BasePartition`]). `max_rounds` caps the run.
    pub fn new(net: &Network, until: LifetimeUntil, max_rounds: u64) -> Self {
        if let LifetimeUntil::DeathFraction(f) = until {
            assert!((0.0..=1.0).contains(&f), "death fraction must be in [0,1]");
        }
        assert!(max_rounds > 0, "the round cap must be positive");
        let initially_routed = net
            .topology()
            .nodes()
            .map(|v| net.routing().depth(v).is_some())
            .collect();
        Self {
            until,
            max_rounds,
            rounds: 0,
            deaths: Vec::new(),
            seen: 0,
            initially_routed,
        }
    }

    /// Records one executed round and returns the ending reason once the
    /// criterion (or the round cap) fires. Call after every round, with the
    /// round's boundary already polled via [`Network::apply_churn`].
    pub fn observe(&mut self, net: &Network) -> Option<LifetimeEnd> {
        self.rounds += 1;
        if let Some(bank) = net.battery() {
            let order = bank.death_order();
            for &node in &order[self.seen..] {
                self.deaths.push((self.rounds, node));
            }
            self.seen = order.len();
        }
        let ended = match self.until {
            LifetimeUntil::FirstDeath => self
                .deaths
                .first()
                .map(|&(_, n)| LifetimeEnd::FirstDeath(n)),
            LifetimeUntil::BasePartition => net
                .topology()
                .nodes()
                .any(|v| {
                    net.is_alive(v)
                        && self.initially_routed[v.0 as usize]
                        && net.routing().depth(v).is_none()
                })
                .then_some(LifetimeEnd::BasePartition),
            LifetimeUntil::DeathFraction(f) => {
                let base = net.base();
                let dead = net
                    .topology()
                    .nodes()
                    .filter(|&v| v != base && !net.is_alive(v))
                    .count();
                let total = net.len().saturating_sub(1);
                (total > 0 && dead as f64 >= f * total as f64).then_some(LifetimeEnd::DeathFraction)
            }
        };
        ended.or((self.rounds >= self.max_rounds).then_some(LifetimeEnd::MaxRounds))
    }

    /// Rounds observed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Deaths observed so far, as `(round, node)` in death order.
    pub fn deaths(&self) -> &[(u64, NodeId)] {
        &self.deaths
    }

    /// Summarizes the run against the network's final state.
    pub fn report(&self, net: &Network, reason: LifetimeEnd) -> LifetimeReport {
        let residual_uj = net
            .battery()
            .map(BatteryBank::residuals)
            .unwrap_or_default();
        let base = net.base();
        let live = net
            .topology()
            .nodes()
            .filter(|&v| v != base && net.is_alive(v))
            .count();
        LifetimeReport {
            rounds: self.rounds,
            reason,
            deaths: self.deaths.clone(),
            residual_uj,
            live,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_bank_powers_the_base() {
        let bank = BatteryBank::uniform(4, NodeId(2), 1000.0);
        assert_eq!(bank.len(), 4);
        assert_eq!(bank.capacity_uj(NodeId(0)), 1000.0);
        assert!(bank.capacity_uj(NodeId(2)).is_infinite());
        assert_eq!(bank.residual_uj(NodeId(1)), 1000.0);
    }

    #[test]
    fn debit_latches_first_crossing_in_order() {
        let mut bank = BatteryBank::uniform(3, NodeId(0), 100.0);
        bank.debit(NodeId(2), 60.0);
        bank.debit(NodeId(1), 150.0); // crosses first
        bank.debit(NodeId(2), 60.0); // crosses second
        bank.debit(NodeId(1), 10.0); // already depleted: no re-latch
        assert!(bank.is_depleted(NodeId(1)));
        assert!(bank.is_depleted(NodeId(2)));
        assert_eq!(bank.take_pending(), vec![NodeId(1), NodeId(2)]);
        assert!(bank.take_pending().is_empty());
        assert_eq!(bank.death_order(), &[NodeId(1), NodeId(2)]);
        assert_eq!(bank.residual_uj(NodeId(1)), 0.0);
        assert!((bank.total_debited_uj() - 280.0).abs() < 1e-9);
    }

    #[test]
    fn base_never_depletes() {
        let mut bank = BatteryBank::uniform(2, NodeId(0), 10.0);
        bank.debit(NodeId(0), 1e18);
        assert!(!bank.is_depleted(NodeId(0)));
        assert!(bank.take_pending().is_empty());
        assert!(bank.residual_uj(NodeId(0)).is_infinite());
    }

    #[test]
    fn jitter_is_seeded_and_bounded() {
        let a = BatteryBank::with_jitter(50, NodeId(0), 1000.0, 0.2, 7);
        let b = BatteryBank::with_jitter(50, NodeId(0), 1000.0, 0.2, 7);
        let c = BatteryBank::with_jitter(50, NodeId(0), 1000.0, 0.2, 8);
        let mut differs = false;
        let mut spread = false;
        for v in 1..50u32 {
            let n = NodeId(v);
            assert_eq!(a.capacity_uj(n), b.capacity_uj(n), "same seed, node {v}");
            assert!(
                (800.0..1200.0).contains(&a.capacity_uj(n)),
                "jitter bound violated at {v}: {}",
                a.capacity_uj(n)
            );
            differs |= a.capacity_uj(n) != c.capacity_uj(n);
            spread |= a.capacity_uj(n) != 1000.0;
        }
        assert!(differs, "different seeds must differ");
        assert!(spread, "jitter must move capacities");
        assert!(a.capacity_uj(NodeId(0)).is_infinite());
        let zero = BatteryBank::with_jitter(10, NodeId(0), 500.0, 0.0, 3);
        assert_eq!(zero.capacity_uj(NodeId(4)), 500.0);
    }
}
