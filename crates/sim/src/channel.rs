//! Seeded per-packet loss models (the lossy channel under the MAC layer).
//!
//! Every fragment a [`crate::Network`] puts on the air is drawn through the
//! attached [`Channel`]: it survives or drops independently per (directed)
//! link, per packet. Two models are provided — i.i.d. [`LossModel::Bernoulli`]
//! loss and the bursty two-state [`LossModel::GilbertElliott`] chain — with
//! optional per-link overrides, so a whole-link outage is just the special
//! case "loss probability 1.0" (see [`Channel::with_failures`], which unifies
//! [`crate::LinkFailures`] with this layer).
//!
//! Draws are deterministic: each directed link owns its own RNG stream seeded
//! from the channel seed and the link endpoints, so the loss pattern of one
//! link does not depend on how much traffic other links carried.

use crate::failure::LinkFailures;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sensjoin_relation::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// Per-link packet-loss model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// Every packet is delivered.
    Perfect,
    /// Each packet is lost independently with probability `p`.
    Bernoulli {
        /// Per-packet loss probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Markov (Gilbert–Elliott) burst loss: the link alternates
    /// between a good and a bad state with the given transition
    /// probabilities, and packets are lost with a state-dependent
    /// probability. Captures the bursty fading real links exhibit.
    GilbertElliott {
        /// P(good → bad) per packet.
        p_good_to_bad: f64,
        /// P(bad → good) per packet.
        p_bad_to_good: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// A Gilbert–Elliott model with stationary loss rate `p` and mean burst
    /// length `burst` packets (classic simplified Gilbert: good state is
    /// loss-free, bad state loses everything).
    pub fn burst(p: f64, burst: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "stationary loss rate out of range");
        assert!(burst >= 1.0, "mean burst length must be >= 1 packet");
        if p == 0.0 {
            return LossModel::Perfect;
        }
        let p_bad_to_good = 1.0 / burst;
        // Stationary P(bad) = p_gb / (p_gb + p_bg) = p.
        let p_good_to_bad = p_bad_to_good * p / (1.0 - p);
        LossModel::GilbertElliott {
            p_good_to_bad,
            p_bad_to_good,
            loss_good: 0.0,
            loss_bad: 1.0,
        }
    }

    /// Whether this model provably never drops a packet.
    pub fn is_perfect(&self) -> bool {
        match *self {
            LossModel::Perfect => true,
            LossModel::Bernoulli { p } => p == 0.0,
            LossModel::GilbertElliott {
                p_good_to_bad,
                loss_good,
                loss_bad,
                ..
            } => loss_good == 0.0 && (loss_bad == 0.0 || p_good_to_bad == 0.0),
        }
    }
}

/// Mutable per-directed-link channel state: the RNG stream and (for
/// Gilbert–Elliott) the current Markov state.
#[derive(Debug, Clone)]
struct LinkState {
    rng: SmallRng,
    bad: bool,
}

/// One exported per-link state: `(from, to, rng words, Markov bad flag)` —
/// the checkpoint/restore surface of [`Channel::export_states`].
pub type ChannelLinkState = (NodeId, NodeId, [u64; 4], bool);

/// A lossy channel: per-packet survival draws for every directed link.
///
/// Attach one to a [`crate::Network`] with [`crate::Network::set_channel`];
/// from then on every fragment is drawn through [`Channel::deliver`]. A
/// channel whose models are all [`LossModel::is_perfect`] behaves exactly
/// like no channel at all (the network takes the lossless fast path, so
/// zero-loss runs reproduce lossless byte counts bit for bit).
#[derive(Debug, Clone)]
pub struct Channel {
    default_model: LossModel,
    per_link: BTreeMap<(NodeId, NodeId), LossModel>,
    /// If set, only these phases are lossy; packets of other phases always
    /// survive. Used by tests to confine loss to specific protocol phases.
    lossy_phases: Option<BTreeSet<String>>,
    seed: u64,
    states: BTreeMap<(NodeId, NodeId), LinkState>,
}

impl Channel {
    /// A channel applying `model` to every link, seeded for reproducibility.
    pub fn new(model: LossModel, seed: u64) -> Self {
        Self {
            default_model: model,
            per_link: BTreeMap::new(),
            lossy_phases: None,
            seed,
            states: BTreeMap::new(),
        }
    }

    /// A perfect channel (no loss anywhere).
    pub fn perfect() -> Self {
        Self::new(LossModel::Perfect, 0)
    }

    /// An i.i.d. Bernoulli channel: every packet on every link is lost
    /// independently with probability `p`.
    pub fn bernoulli(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        Self::new(LossModel::Bernoulli { p }, seed)
    }

    /// A bursty Gilbert–Elliott channel with stationary loss `p` and mean
    /// burst length `burst` packets on every link.
    pub fn gilbert_elliott(p: f64, burst: f64, seed: u64) -> Self {
        Self::new(LossModel::burst(p, burst), seed)
    }

    /// Overrides the loss model of the link between `a` and `b` (both
    /// directions).
    pub fn set_link_model(&mut self, a: NodeId, b: NodeId, model: LossModel) {
        self.per_link.insert((a, b), model);
        self.per_link.insert((b, a), model);
        self.states.remove(&(a, b));
        self.states.remove(&(b, a));
    }

    /// Expresses whole-link outages in channel terms: every failed link of
    /// `failures` gets loss probability 1.0. This is the single degradation
    /// path shared by the §IV-F recovery machinery and the ARQ layer — a
    /// "failed link" is nothing but the extreme point of the loss scale.
    pub fn with_failures(mut self, failures: &LinkFailures, topology: &crate::Topology) -> Self {
        for u in topology.nodes() {
            for &v in topology.neighbors(u) {
                if u < v && failures.is_down(u, v) {
                    self.set_link_model(u, v, LossModel::Bernoulli { p: 1.0 });
                }
            }
        }
        self
    }

    /// Restricts loss to the given phase labels; packets sent under any
    /// other phase always survive. Intended for tests that need loss
    /// confined to specific protocol phases.
    pub fn scope_to_phases<I: IntoIterator<Item = S>, S: Into<String>>(
        mut self,
        phases: I,
    ) -> Self {
        self.lossy_phases = Some(phases.into_iter().map(Into::into).collect());
        self
    }

    /// Whether no packet can ever be lost on any link.
    pub fn is_perfect(&self) -> bool {
        self.default_model.is_perfect() && self.per_link.values().all(LossModel::is_perfect)
    }

    /// Copies the per-link RNG/Markov state of the directed link
    /// `from → to` out of `other` (a clone of this channel that has drawn
    /// further). Parallel wave execution gives each worker thread a channel
    /// clone; because every directed link is owned by exactly one subtree,
    /// adopting back exactly the links a thread used leaves every stream
    /// positioned precisely where serial execution would have left it.
    pub fn adopt_link_state(&mut self, other: &Channel, from: NodeId, to: NodeId) {
        if let Some(state) = other.states.get(&(from, to)) {
            self.states.insert((from, to), state.clone());
        }
    }

    /// Exports the per-link generator and Markov states in link order — the
    /// checkpoint/restore surface. Links never drawn on have no entry; their
    /// streams are recreated lazily from the channel seed on first use, so
    /// omitting them is lossless.
    pub fn export_states(&self) -> Vec<ChannelLinkState> {
        self.states
            .iter()
            .map(|(&(from, to), st)| (from, to, st.rng.state(), st.bad))
            .collect()
    }

    /// Replaces the per-link states with ones previously exported from an
    /// identically-configured channel (same models and seed): every stream
    /// resumes exactly where the exporting channel left it.
    pub fn import_states(&mut self, states: &[ChannelLinkState]) {
        self.states.clear();
        for &(from, to, words, bad) in states {
            self.states.insert(
                (from, to),
                LinkState {
                    rng: SmallRng::from_state(words),
                    bad,
                },
            );
        }
    }

    fn model_for(&self, from: NodeId, to: NodeId) -> LossModel {
        self.per_link
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_model)
    }

    /// Draws the fate of one packet on the directed link `from → to` under
    /// phase `phase`: `true` = delivered, `false` = lost. Deterministic in
    /// the channel seed and the per-link draw sequence.
    pub fn deliver(&mut self, from: NodeId, to: NodeId, phase: &str) -> bool {
        if let Some(scope) = &self.lossy_phases {
            if !scope.contains(phase) {
                return true;
            }
        }
        let model = self.model_for(from, to);
        if model.is_perfect() {
            return true;
        }
        let seed = self.seed;
        let state = self.states.entry((from, to)).or_insert_with(|| {
            // Distinct deterministic stream per directed link.
            let link = ((from.0 as u64) << 32) | to.0 as u64;
            LinkState {
                rng: SmallRng::seed_from_u64(seed ^ link.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                bad: false,
            }
        });
        match model {
            LossModel::Perfect => true,
            LossModel::Bernoulli { p } => !state.rng.gen_bool(p),
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                let flip = if state.bad {
                    p_bad_to_good
                } else {
                    p_good_to_bad
                };
                if state.rng.gen_bool(flip) {
                    state.bad = !state.bad;
                }
                let loss = if state.bad { loss_bad } else { loss_good };
                !state.rng.gen_bool(loss)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_models() {
        assert!(LossModel::Perfect.is_perfect());
        assert!(LossModel::Bernoulli { p: 0.0 }.is_perfect());
        assert!(!LossModel::Bernoulli { p: 0.1 }.is_perfect());
        assert!(LossModel::burst(0.0, 4.0).is_perfect());
        assert!(!LossModel::burst(0.1, 4.0).is_perfect());
        assert!(Channel::perfect().is_perfect());
        assert!(Channel::bernoulli(0.0, 7).is_perfect());
        assert!(!Channel::bernoulli(0.2, 7).is_perfect());
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let draw = |seed: u64| -> Vec<bool> {
            let mut ch = Channel::bernoulli(0.3, seed);
            (0..64)
                .map(|_| ch.deliver(NodeId(1), NodeId(2), "p"))
                .collect()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    #[test]
    fn links_have_independent_streams() {
        // Interleaving draws on another link must not change this link's
        // pattern.
        let mut a = Channel::bernoulli(0.3, 9);
        let solo: Vec<bool> = (0..32)
            .map(|_| a.deliver(NodeId(1), NodeId(2), "p"))
            .collect();
        let mut b = Channel::bernoulli(0.3, 9);
        let mixed: Vec<bool> = (0..32)
            .map(|_| {
                b.deliver(NodeId(3), NodeId(4), "p");
                b.deliver(NodeId(1), NodeId(2), "p")
            })
            .collect();
        assert_eq!(solo, mixed);
    }

    #[test]
    fn bernoulli_rate_is_plausible() {
        let mut ch = Channel::bernoulli(0.2, 11);
        let lost = (0..10_000)
            .filter(|_| !ch.deliver(NodeId(0), NodeId(1), "p"))
            .count();
        assert!((1_500..2_500).contains(&lost), "lost {lost} of 10000");
    }

    #[test]
    fn gilbert_elliott_is_bursty_at_equal_rate() {
        // Same stationary loss, but losses should clump: count loss runs.
        let runs = |mut ch: Channel| -> (usize, usize) {
            let mut lost = 0;
            let mut runs = 0;
            let mut prev = true;
            for _ in 0..20_000 {
                let ok = ch.deliver(NodeId(0), NodeId(1), "p");
                if !ok {
                    lost += 1;
                    if prev {
                        runs += 1;
                    }
                }
                prev = ok;
            }
            (lost, runs)
        };
        let (b_lost, b_runs) = runs(Channel::bernoulli(0.2, 3));
        let (g_lost, g_runs) = runs(Channel::gilbert_elliott(0.2, 8.0, 3));
        // Comparable stationary rates...
        assert!((3_000..5_000).contains(&b_lost), "bernoulli lost {b_lost}");
        assert!((3_000..5_000).contains(&g_lost), "ge lost {g_lost}");
        // ...but far fewer, longer runs under Gilbert–Elliott.
        assert!(
            g_runs * 3 < b_runs,
            "ge runs {g_runs} not bursty vs bernoulli {b_runs}"
        );
    }

    #[test]
    fn per_link_override_and_failures() {
        let mut ch = Channel::perfect();
        ch.set_link_model(NodeId(1), NodeId(2), LossModel::Bernoulli { p: 1.0 });
        assert!(!ch.is_perfect());
        assert!(!ch.deliver(NodeId(1), NodeId(2), "p"));
        assert!(!ch.deliver(NodeId(2), NodeId(1), "p"));
        assert!(ch.deliver(NodeId(1), NodeId(3), "p"));
    }

    #[test]
    fn phase_scoping_confines_loss() {
        let mut ch = Channel::bernoulli(1.0, 1).scope_to_phases(["bad-phase"]);
        assert!(ch.deliver(NodeId(0), NodeId(1), "good-phase"));
        assert!(!ch.deliver(NodeId(0), NodeId(1), "bad-phase"));
    }
}
