//! Seeded node-churn fault injection: crash-stop, reboot-with-state-loss
//! and revival, on a deterministic timeline.
//!
//! A [`ChurnTimeline`] is a pre-sampled (or explicitly constructed) sequence
//! of [`ChurnAction`]s, each scoped either to an absolute simulated time
//! (driven through the [`crate::Scheduler`] event queue) or to a *boundary*
//! index — the protocol synchronization points at which executors poll the
//! timeline: phase boundaries for one-shot joins, round boundaries for
//! continuous queries, epoch boundaries for multi-query groups. Scoping
//! events to boundaries keeps the wave-structured protocols deterministic: a
//! node is never lost in the middle of a fragment train, it is lost between
//! phases, exactly as a TDMA-scheduled deployment would observe at its next
//! synchronization point.
//!
//! A *crash* is crash-stop: the node loses all protocol state and leaves
//! the routing tree. A later *revive* of the same node models
//! reboot-with-state-loss: the node re-enters the network with no memory of
//! the query (executors re-seed its data deterministically). The base
//! station never fails — it is the powered access point.
//!
//! Seeding follows the one-namespace convention shared with the lossy
//! channel and [`crate::LinkFailures`]: a single master seed is split into
//! independent sub-streams with [`stream_seed`], so one `--seed`-style knob
//! reproduces loss, link failures and churn together.

use crate::scheduler::{Scheduler, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sensjoin_relation::NodeId;
use std::collections::BTreeMap;

/// Phase label under which repair beacons, death notifications and rebuild
/// floods are charged in [`crate::NetworkStats`].
pub const PHASE_REPAIR: &str = "repair";

/// Wire size of one routing-maintenance beacon (probe, ack or death
/// notification): node id + parent candidate + sequence/metric, 8 bytes.
pub const BEACON_BYTES: usize = 8;

/// Golden-ratio multiplier used to derive independent deterministic
/// sub-streams from one master seed (same constant the per-link channel
/// RNGs use).
const STREAM_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the seed of an independent sub-stream `key` from `master`.
///
/// This is the repo-wide seed-splitting convention: the lossy channel uses
/// it per directed link, [`crate::LinkFailures::sample`] uses it with
/// [`STREAM_LINK_FAILURE`], [`ChurnTimeline::sample`] uses it with
/// [`STREAM_CHURN`] (then once more per node), and
/// [`crate::BatteryBank::with_jitter`] uses it with [`STREAM_BATTERY`]
/// (then once more per node). One master seed therefore yields mutually
/// independent loss, link-failure, churn and battery-jitter streams.
pub fn stream_seed(master: u64, key: u64) -> u64 {
    master ^ key.wrapping_mul(STREAM_MUL)
}

/// Sub-stream key of [`crate::LinkFailures::sample`].
pub const STREAM_LINK_FAILURE: u64 = 0x11;
/// Sub-stream key of [`ChurnTimeline::sample`].
pub const STREAM_CHURN: u64 = 0x22;
/// Sub-stream key of [`crate::BatteryBank::with_jitter`] (per-node
/// initial-capacity jitter; split once more per node, like churn).
pub const STREAM_BATTERY: u64 = 0x33;

/// One scheduled liveness change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnAction {
    /// Crash-stop: the node dies, losing all protocol state.
    Crash,
    /// The node comes back up with no state (reboot / revival).
    Revive,
}

/// How the node repairs routing after liveness changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairStrategy {
    /// Localized self-healing: only orphaned subtrees re-select parents
    /// among live neighbors; the attached region keeps its routes. Beacons
    /// are charged per reattachment. The default.
    #[default]
    Localized,
    /// The paper's §IV-F recipe as a baseline: any liveness change triggers
    /// a full CTP re-convergence — the whole tree is rebuilt and every live
    /// node is charged one beacon flood.
    FullRebuild,
}

/// A deterministic, seeded schedule of node crashes and revivals.
///
/// Time-scoped events ride the discrete-event [`Scheduler`]; boundary-scoped
/// events live in an index → events map. [`ChurnTimeline::due`] drains both:
/// everything pinned to the polled boundary plus every time event whose
/// timestamp has passed.
#[derive(Debug, Clone, Default)]
pub struct ChurnTimeline {
    timed: Scheduler<(NodeId, ChurnAction)>,
    at_boundary: BTreeMap<u32, Vec<(NodeId, ChurnAction)>>,
}

impl ChurnTimeline {
    /// An empty timeline (no churn).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `action` on `node` at absolute simulated time `at` (µs).
    pub fn at_time(mut self, at: Time, node: NodeId, action: ChurnAction) -> Self {
        self.timed.schedule(at, (node, action));
        self
    }

    /// Schedules `action` on `node` at protocol boundary `boundary`
    /// (boundaries count the executor's synchronization points from network
    /// construction: one-shot joins contribute one per phase, continuous
    /// queries one per round, query groups one per epoch).
    pub fn at_boundary(mut self, boundary: u32, node: NodeId, action: ChurnAction) -> Self {
        self.at_boundary
            .entry(boundary)
            .or_default()
            .push((node, action));
        self
    }

    /// Samples an MTBF/MTTR crash–revive process for every node except
    /// `base`, deterministically from `seed` (via the [`STREAM_CHURN`]
    /// sub-stream, then one sub-stream per node).
    ///
    /// Each node alternates an up-time drawn from Exp(`mtbf_us`) and a
    /// down-time drawn from Exp(`mttr_us`); events beyond `horizon_us` are
    /// not generated. Both means are in microseconds.
    pub fn sample(
        n_nodes: usize,
        base: NodeId,
        mtbf_us: f64,
        mttr_us: f64,
        horizon_us: Time,
        seed: u64,
    ) -> Self {
        assert!(mtbf_us > 0.0 && mttr_us > 0.0, "means must be positive");
        let master = stream_seed(seed, STREAM_CHURN);
        let mut timeline = Self::new();
        for v in 0..n_nodes as u32 {
            let node = NodeId(v);
            if node == base {
                continue;
            }
            let mut rng = SmallRng::seed_from_u64(stream_seed(master, v as u64));
            let mut draw = |mean: f64| -> Time {
                // Inverse-CDF exponential; 1 - u in (0, 1].
                let u: f64 = rng.gen_range(0.0..1.0);
                (-mean * (1.0 - u).ln()).ceil().max(1.0) as Time
            };
            let mut t: Time = 0;
            loop {
                t = t.saturating_add(draw(mtbf_us));
                if t > horizon_us {
                    break;
                }
                timeline.timed.schedule(t, (node, ChurnAction::Crash));
                t = t.saturating_add(draw(mttr_us));
                if t > horizon_us {
                    break;
                }
                timeline.timed.schedule(t, (node, ChurnAction::Revive));
            }
        }
        timeline
    }

    /// Drains every event due at or before `boundary`, or timestamped at or
    /// before `now`, in schedule order (boundary events first, in boundary
    /// order, then timed events by timestamp).
    ///
    /// Draining `<= boundary` (not just the exact index) means an executor
    /// that skips a boundary index — a retry advancing its counter by two, a
    /// phase that polls less often than it synchronizes — can never strand
    /// scheduled events: they fire at the next poll instead.
    pub fn due(&mut self, boundary: u32, now: Time) -> Vec<(NodeId, ChurnAction)> {
        let mut out = Vec::new();
        while let Some(entry) = self.at_boundary.first_entry() {
            if *entry.key() <= boundary {
                out.extend(entry.remove());
            } else {
                break;
            }
        }
        while let Some((t, _)) = self.timed.peek() {
            if t > now {
                break;
            }
            let (_, e) = self.timed.pop().expect("peeked event exists");
            out.push(e);
        }
        out
    }

    /// Exports every event not yet drained by [`ChurnTimeline::due`]:
    /// timed events in pop order and boundary events in boundary order —
    /// the checkpoint/restore surface. Feeding the pair back through
    /// [`ChurnTimeline::from_events`] reproduces the remaining schedule
    /// exactly (drained history is gone by design; a restored run replays
    /// only the future).
    #[allow(clippy::type_complexity)]
    pub fn export_events(
        &self,
    ) -> (
        Vec<(Time, NodeId, ChurnAction)>,
        Vec<(u32, Vec<(NodeId, ChurnAction)>)>,
    ) {
        let timed = self
            .timed
            .pending()
            .into_iter()
            .map(|(t, (node, action))| (t, node, action))
            .collect();
        let boundary = self
            .at_boundary
            .iter()
            .map(|(&b, evs)| (b, evs.clone()))
            .collect();
        (timed, boundary)
    }

    /// Rebuilds a timeline from [`ChurnTimeline::export_events`] output.
    pub fn from_events(
        timed: Vec<(Time, NodeId, ChurnAction)>,
        boundary: Vec<(u32, Vec<(NodeId, ChurnAction)>)>,
    ) -> Self {
        let mut timeline = Self::new();
        for (t, node, action) in timed {
            timeline.timed.schedule(t, (node, action));
        }
        for (b, evs) in boundary {
            timeline.at_boundary.entry(b).or_default().extend(evs);
        }
        timeline
    }

    /// Whether any events remain scheduled.
    pub fn is_exhausted(&self) -> bool {
        self.timed.is_empty() && self.at_boundary.is_empty()
    }
}

/// What one churn boundary did to the network: the liveness changes applied
/// plus every node the repair machinery re-parented.
#[derive(Debug, Clone, Default)]
pub struct ChurnOutcome {
    /// The boundary index that was polled.
    pub boundary: u32,
    /// Nodes that crashed at this boundary.
    pub crashed: Vec<NodeId>,
    /// The subset of `crashed` whose crash was endogenous — battery
    /// exhaustion detected by the attached [`crate::BatteryBank`] rather
    /// than an exogenous timeline event. Every depleted node also appears
    /// in `crashed`, so executors handle both kinds through one path.
    pub depleted: Vec<NodeId>,
    /// Nodes that revived at this boundary.
    pub revived: Vec<NodeId>,
    /// Live nodes whose routing parent changed during repair (orphan-subtree
    /// members that reattached, revived nodes that rejoined). Protocol
    /// executors must treat these conservatively: their new ancestors hold
    /// no synopses about them.
    pub reattached: Vec<NodeId>,
}

impl ChurnOutcome {
    /// Whether nothing happened at this boundary.
    pub fn is_empty(&self) -> bool {
        self.crashed.is_empty() && self.revived.is_empty() && self.reattached.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_and_time_events_drain_in_order() {
        let mut tl = ChurnTimeline::new()
            .at_boundary(1, NodeId(3), ChurnAction::Crash)
            .at_time(500, NodeId(4), ChurnAction::Crash)
            .at_time(1500, NodeId(4), ChurnAction::Revive);
        assert!(tl.due(0, 0).is_empty());
        let due = tl.due(1, 600);
        assert_eq!(
            due,
            vec![
                (NodeId(3), ChurnAction::Crash),
                (NodeId(4), ChurnAction::Crash)
            ]
        );
        assert_eq!(tl.due(2, 2000), vec![(NodeId(4), ChurnAction::Revive)]);
        assert!(tl.is_exhausted());
    }

    #[test]
    fn skipped_boundary_indices_cannot_strand_events() {
        // Regression: events pinned to boundary 2 must still fire when the
        // poller jumps from boundary 1 straight to 3 (e.g. an executor retry
        // advanced the counter twice between polls).
        let mut tl = ChurnTimeline::new()
            .at_boundary(2, NodeId(5), ChurnAction::Crash)
            .at_boundary(3, NodeId(6), ChurnAction::Crash)
            .at_boundary(7, NodeId(5), ChurnAction::Revive);
        assert!(tl.due(1, 0).is_empty());
        // Boundary 2 was never polled directly; polling 3 drains both, in
        // boundary order.
        assert_eq!(
            tl.due(3, 0),
            vec![
                (NodeId(5), ChurnAction::Crash),
                (NodeId(6), ChurnAction::Crash)
            ]
        );
        // Jumping past the end drains the stragglers too.
        assert_eq!(tl.due(100, 0), vec![(NodeId(5), ChurnAction::Revive)]);
        assert!(tl.is_exhausted());
    }

    #[test]
    fn sampling_is_deterministic_and_spares_the_base() {
        let mut a = ChurnTimeline::sample(40, NodeId(0), 1e6, 5e5, 10_000_000, 9);
        let mut b = ChurnTimeline::sample(40, NodeId(0), 1e6, 5e5, 10_000_000, 9);
        let ea = a.due(0, u64::MAX);
        let eb = b.due(0, u64::MAX);
        assert_eq!(ea, eb);
        assert!(!ea.is_empty(), "10 mean lifetimes must produce events");
        assert!(ea.iter().all(|&(n, _)| n != NodeId(0)));
        // Per node, actions alternate crash, revive, crash, ...
        let mut last: BTreeMap<NodeId, ChurnAction> = BTreeMap::new();
        for (n, act) in ea {
            if let Some(prev) = last.get(&n) {
                assert_ne!(*prev, act, "{n} repeated {act:?}");
            } else {
                assert_eq!(act, ChurnAction::Crash, "{n} must crash first");
            }
            last.insert(n, act);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChurnTimeline::sample(60, NodeId(0), 2e6, 1e6, 20_000_000, 1);
        let mut b = ChurnTimeline::sample(60, NodeId(0), 2e6, 1e6, 20_000_000, 2);
        assert_ne!(a.due(0, u64::MAX), b.due(0, u64::MAX));
    }

    #[test]
    fn stream_seed_splits() {
        assert_ne!(
            stream_seed(7, STREAM_CHURN),
            stream_seed(7, STREAM_LINK_FAILURE)
        );
        assert_ne!(stream_seed(7, STREAM_CHURN), stream_seed(8, STREAM_CHURN));
        assert_eq!(stream_seed(7, 3), stream_seed(7, 3));
    }
}
