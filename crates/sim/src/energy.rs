//! Radio energy accounting.

/// Per-packet energy model: a fixed per-packet cost plus a per-byte cost,
/// for transmission and reception separately (microjoules).
///
/// The fixed share models channel acquisition, preamble/synchronization and
/// MAC overheads, which on real motes dominate the marginal byte cost — the
/// paper's footnote 1 calibration point: "removing about 10 bytes from a
/// packet incurs a saving in the order of 5 % for SunSPOTs or MicaZ".
/// With `E(b) = fixed + per_byte·b`, a 10-byte reduction on a ~35-byte
/// packet saves 5 % when `fixed ≈ 165·per_byte`; the presets respect that
/// ratio. Comparisons between join methods depend on this *ratio*, not on
/// absolute joule values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Fixed cost per transmitted packet (µJ).
    pub tx_fixed: f64,
    /// Cost per transmitted byte (µJ).
    pub tx_per_byte: f64,
    /// Fixed cost per received packet (µJ).
    pub rx_fixed: f64,
    /// Cost per received byte (µJ).
    pub rx_per_byte: f64,
}

impl EnergyModel {
    /// MicaZ / CC2420 at 250 kbit/s: ≈1.7 µJ per transmitted byte
    /// (17.4 mA · 3 V · 32 µs), fixed costs per the footnote-1 ratio.
    pub fn micaz() -> Self {
        Self {
            tx_fixed: 280.0,
            tx_per_byte: 1.7,
            rx_fixed: 250.0,
            rx_per_byte: 1.9,
        }
    }

    /// SunSPOT (CC2420 radio as well, higher MCU overhead during
    /// transmission bursts).
    pub fn sunspot() -> Self {
        Self {
            tx_fixed: 330.0,
            tx_per_byte: 2.0,
            rx_fixed: 300.0,
            rx_per_byte: 2.2,
        }
    }

    /// A byte-proportional model with no per-packet cost; used by ablations
    /// to show how conclusions change if packet overhead is ignored.
    pub fn byte_proportional(per_byte: f64) -> Self {
        Self {
            tx_fixed: 0.0,
            tx_per_byte: per_byte,
            rx_fixed: 0.0,
            rx_per_byte: per_byte,
        }
    }

    /// Energy to transmit one packet carrying `bytes` payload+header (µJ).
    #[inline]
    pub fn tx(&self, bytes: usize) -> f64 {
        self.tx_fixed + self.tx_per_byte * bytes as f64
    }

    /// Energy to receive one packet carrying `bytes` (µJ).
    #[inline]
    pub fn rx(&self, bytes: usize) -> f64 {
        self.rx_fixed + self.rx_per_byte * bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footnote1_ratio_holds() {
        // Removing 10 bytes from a ~35-byte packet saves about 5 %.
        let m = EnergyModel::micaz();
        let with = m.tx(35 + 12);
        let without = m.tx(25 + 12);
        let saving = 1.0 - without / with;
        assert!((0.03..=0.07).contains(&saving), "saving {saving}");
    }

    #[test]
    fn monotone_in_bytes() {
        let m = EnergyModel::sunspot();
        assert!(m.tx(48) > m.tx(10));
        assert!(m.rx(48) > m.rx(10));
    }

    #[test]
    fn byte_proportional_has_no_fixed_cost() {
        let m = EnergyModel::byte_proportional(2.0);
        assert_eq!(m.tx(0), 0.0);
        assert_eq!(m.tx(10), 20.0);
    }
}
