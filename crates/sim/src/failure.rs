//! Seeded link-failure injection (§IV-F error tolerance).

use crate::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sensjoin_relation::NodeId;
use std::collections::BTreeSet;

/// A set of failed (bidirectional) links for one query execution.
///
/// The paper's error handling assumes the tree protocol re-establishes the
/// routing structure after an outage and the query is simply re-executed
/// (§IV-F). Tests and benches sample failures, rebuild the tree with
/// [`crate::Network::rebuild_routing`], re-run the query and check that the
/// result is still exact.
#[derive(Debug, Clone, Default)]
pub struct LinkFailures {
    down: BTreeSet<(NodeId, NodeId)>,
}

impl LinkFailures {
    /// No failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fails each link independently with probability `p`, deterministically
    /// from `seed`.
    ///
    /// `seed` is a *master* seed in the repo-wide namespace
    /// ([`crate::stream_seed`]): the sampler draws from the
    /// [`crate::STREAM_LINK_FAILURE`] sub-stream, so the same master seed
    /// can drive per-packet loss, link failures and node churn with
    /// mutually independent randomness.
    pub fn sample(topology: &Topology, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let mut rng = SmallRng::seed_from_u64(crate::stream_seed(seed, crate::STREAM_LINK_FAILURE));
        let mut down = BTreeSet::new();
        for u in topology.nodes() {
            for &v in topology.neighbors(u) {
                if u < v && rng.gen_bool(p) {
                    down.insert((u, v));
                }
            }
        }
        Self { down }
    }

    /// Fails the specific links given (pairs are normalized internally).
    pub fn of_links(links: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let down = links
            .into_iter()
            .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        Self { down }
    }

    /// Expresses the outages as a [`crate::Channel`]: every failed link gets
    /// loss probability 1.0, every other link stays perfect. This is the
    /// thin-constructor end of the unification between whole-link failures
    /// and per-packet loss — downstream degradation handling (ARQ, recovery)
    /// sees one mechanism.
    pub fn to_channel(&self, topology: &Topology) -> crate::Channel {
        crate::Channel::perfect().with_failures(self, topology)
    }

    /// Whether the link between `a` and `b` is down (symmetric).
    pub fn is_down(&self, a: NodeId, b: NodeId) -> bool {
        let key = if a < b { (a, b) } else { (b, a) };
        self.down.contains(&key)
    }

    /// Number of failed links.
    pub fn len(&self) -> usize {
        self.down.len()
    }

    /// Whether no links failed.
    pub fn is_empty(&self) -> bool {
        self.down.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensjoin_field::{Area, Placement};

    fn topo() -> Topology {
        let area = Area::new(300.0, 300.0);
        Topology::new(
            Placement::UniformRandom { n: 150 }.generate(area, 3),
            area,
            50.0,
        )
    }

    #[test]
    fn sampling_is_deterministic_and_symmetric() {
        let t = topo();
        let a = LinkFailures::sample(&t, 0.1, 7);
        let b = LinkFailures::sample(&t, 0.1, 7);
        assert_eq!(a.len(), b.len());
        for u in t.nodes() {
            for &v in t.neighbors(u) {
                assert_eq!(a.is_down(u, v), a.is_down(v, u));
                assert_eq!(a.is_down(u, v), b.is_down(u, v));
            }
        }
    }

    #[test]
    fn probability_extremes() {
        let t = topo();
        assert!(LinkFailures::sample(&t, 0.0, 1).is_empty());
        let all = LinkFailures::sample(&t, 1.0, 1);
        let total_links: usize = t.nodes().map(|u| t.neighbors(u).len()).sum::<usize>() / 2;
        assert_eq!(all.len(), total_links);
    }

    #[test]
    fn failures_as_channel() {
        let t = topo();
        let f = LinkFailures::sample(&t, 0.2, 5);
        assert!(!f.is_empty());
        let mut ch = f.to_channel(&t);
        assert!(!ch.is_perfect());
        for u in t.nodes() {
            for &v in t.neighbors(u) {
                // A down link never delivers; an up link always does.
                assert_eq!(ch.deliver(u, v, "p"), !f.is_down(u, v));
            }
        }
        assert!(LinkFailures::none().to_channel(&t).is_perfect());
    }

    #[test]
    fn explicit_links_normalized() {
        let f = LinkFailures::of_links([(NodeId(5), NodeId(2))]);
        assert!(f.is_down(NodeId(2), NodeId(5)));
        assert!(f.is_down(NodeId(5), NodeId(2)));
        assert!(!f.is_down(NodeId(2), NodeId(6)));
    }
}
