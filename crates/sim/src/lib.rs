#![warn(missing_docs)]

//! A discrete-event wireless-sensor-network simulator.
//!
//! The paper prototypes SENS-Join in ns-2 (§VI). This crate is the
//! corresponding substrate, scoped to what the evaluation measures: packet
//! transmissions (and the energy they cost) along a collection tree, under a
//! configurable radio/energy model, with reproducible topologies and
//! optional link failures.
//!
//! Components:
//!
//! * [`Topology`] — node positions plus the bidirectional-link neighbor
//!   graph for a fixed communication range (the paper uses 50 m),
//! * [`RoutingTree`] — a CTP-style collection tree: every node picks a
//!   parent minimizing the hop count to the base station, deterministic
//!   tie-breaking by link quality proxy (distance) then id; rebuildable
//!   after failures,
//! * [`Scheduler`] — a generic discrete-event queue (time in microseconds)
//!   that protocol state machines run on,
//! * [`Network`] — the MAC/PHY charge point: fragments application payloads
//!   into packets of at most [`RadioConfig::max_payload`] bytes, counts per-
//!   node and per-phase transmissions/receptions, applies the
//!   [`EnergyModel`], and computes transfer latencies,
//! * [`LinkFailures`] — seeded per-execution link outages for the §IV-F
//!   error-tolerance experiments.
//!
//! What is deliberately *not* modeled — and why it does not bias the
//! comparisons: RF collisions and retransmissions (both join methods are
//! tree-synchronized and would suffer identically; the paper's metric is
//! transmission counts), and routing-maintenance beacons (CTP runs
//! regardless of the query; the paper charges queries only).
//!
//! # Example
//!
//! ```
//! use sensjoin_sim::{NetworkBuilder, RadioConfig, EnergyModel};
//! use sensjoin_field::{Area, Placement};
//!
//! let area = Area::new(300.0, 300.0);
//! let positions = Placement::UniformRandom { n: 120 }.generate(area, 1);
//! let mut net = NetworkBuilder::new()
//!     .radio(RadioConfig::paper_default())
//!     .energy(EnergyModel::micaz())
//!     .build(positions, area)
//!     .expect("connected network");
//! let child = net.routing().children(net.base()).first().copied().unwrap();
//! net.unicast(child, net.base(), 30, "collection");
//! assert_eq!(net.stats().total_tx_packets(), 1);
//! ```

mod energy;
mod failure;
mod network;
mod radio;
mod routing;
mod scheduler;
mod stats;
mod topology;
mod trace;

pub use energy::EnergyModel;
pub use failure::LinkFailures;
pub use network::{BaseChoice, Network, NetworkBuilder, NetworkError};
pub use radio::RadioConfig;
pub use routing::RoutingTree;
pub use scheduler::{Scheduler, Time};
pub use stats::{NetworkStats, NodeStats};
pub use topology::Topology;
pub use trace::{Trace, TraceRecord};

pub use sensjoin_relation::NodeId;
