#![warn(missing_docs)]

//! A discrete-event wireless-sensor-network simulator.
//!
//! The paper prototypes SENS-Join in ns-2 (§VI). This crate is the
//! corresponding substrate, scoped to what the evaluation measures: packet
//! transmissions (and the energy they cost) along a collection tree, under a
//! configurable radio/energy model, with reproducible topologies and
//! optional link failures.
//!
//! Components:
//!
//! * [`Topology`] — node positions plus the bidirectional-link neighbor
//!   graph for a fixed communication range (the paper uses 50 m),
//! * [`RoutingTree`] — a CTP-style collection tree: every node picks a
//!   parent minimizing the hop count to the base station, deterministic
//!   tie-breaking by link quality proxy (distance) then id; rebuildable
//!   after failures,
//! * [`Scheduler`] — a generic discrete-event queue (time in microseconds)
//!   that protocol state machines run on,
//! * [`Network`] — the MAC/PHY charge point: fragments application payloads
//!   into packets of at most [`RadioConfig::max_payload`] bytes, counts per-
//!   node and per-phase transmissions/receptions, applies the
//!   [`EnergyModel`], and computes transfer latencies,
//! * [`Channel`] — seeded per-packet loss models (i.i.d. [`LossModel::Bernoulli`]
//!   and bursty [`LossModel::GilbertElliott`], per-link overrides): every
//!   fragment the network puts on the air survives or drops independently,
//! * [`ArqPolicy`] — hop-by-hop reliability over the lossy channel (none /
//!   per-fragment ack+retransmit / per-message summary-and-repair), with
//!   retransmissions, control frames and timeouts charged through the
//!   energy model, the retransmit/ack counters of [`NetworkStats`] and the
//!   retransmission fields of [`TraceRecord`],
//! * [`LinkFailures`] — seeded per-execution link outages for the §IV-F
//!   error-tolerance experiments; a failed link is just the loss-probability-1.0
//!   corner of the channel ([`Channel::with_failures`]),
//! * [`ChurnTimeline`] — seeded node churn (crash-stop, reboot-with-state-
//!   loss, revival) applied at protocol boundaries via
//!   [`Network::apply_churn`]; the routing tree self-heals per the
//!   configured [`RepairStrategy`] (localized orphan reattachment by
//!   default, a full CTP re-convergence flood as the baseline), with repair
//!   beacons charged through the energy model under the
//!   [`PHASE_REPAIR`] phase. One master seed drives loss, link failures and
//!   churn through independent sub-streams ([`stream_seed`]),
//! * [`BatteryBank`] — per-node battery state (flat SoA, seeded capacity
//!   jitter on the same seed namespace) debited by every energy charge;
//!   exhaustion becomes endogenous crash-stop churn at the next
//!   [`Network::apply_churn`] boundary, [`ParentPolicy::PowerAware`]
//!   rotates subtrees toward battery-rich parents at each boundary, and
//!   [`LifetimeRun`] tracks rounds-to-first-death / partition / N%-death
//!   network-lifetime scenarios with a death-order trace.
//!
//! Per-packet loss and retransmissions *are* modeled (the channel +
//! reliability layer above); what is deliberately not modeled — and why it
//! does not bias the comparisons: RF collisions and capture effects (both
//! join methods are tree-synchronized and would suffer identically; loss is
//! injected probabilistically per packet instead of via interference
//! geometry), and routing-maintenance beacons (CTP runs regardless of the
//! query; the paper charges queries only). First-attempt data fragments
//! keep the plain `tx` counters, so the paper's primary metric stays
//! loss-invariant and a perfect channel reproduces lossless byte counts bit
//! for bit.
//!
//! # Example
//!
//! ```
//! use sensjoin_sim::{ArqPolicy, Channel, NetworkBuilder, RadioConfig, EnergyModel};
//! use sensjoin_field::{Area, Placement};
//!
//! let area = Area::new(300.0, 300.0);
//! let positions = Placement::UniformRandom { n: 120 }.generate(area, 1);
//! let mut net = NetworkBuilder::new()
//!     .radio(RadioConfig::paper_default())
//!     .energy(EnergyModel::micaz())
//!     .build(positions, area)
//!     .expect("connected network");
//! let child = net.routing().children(net.base()).first().copied().unwrap();
//! net.unicast(child, net.base(), 30, "collection");
//! assert_eq!(net.stats().total_tx_packets(), 1);
//!
//! // The same transfer over a 20 %-loss channel with ack+retransmit:
//! net.reset_stats();
//! net.set_channel(Some(Channel::bernoulli(0.2, 7)));
//! net.set_arq(ArqPolicy::ack(8));
//! let d = net.unicast_delivery(child, net.base(), 30, "collection");
//! assert!(d.complete, "the retry budget absorbs 20 % loss");
//! assert_eq!(net.stats().total_tx_packets(), 1); // first attempts only
//! ```

mod battery;
mod channel;
mod churn;
mod energy;
mod failure;
mod network;
mod radio;
mod reliability;
mod routing;
mod scheduler;
mod sink;
mod stats;
mod topology;
mod trace;

pub use battery::{
    BatteryBank, BatterySnapshot, LifetimeEnd, LifetimeReport, LifetimeRun, LifetimeUntil,
};
pub use channel::{Channel, ChannelLinkState, LossModel};
pub use churn::{
    stream_seed, ChurnAction, ChurnOutcome, ChurnTimeline, RepairStrategy, BEACON_BYTES,
    PHASE_REPAIR, STREAM_BATTERY, STREAM_CHURN, STREAM_LINK_FAILURE,
};
pub use energy::EnergyModel;
pub use failure::LinkFailures;
pub use network::{
    BaseChoice, DeliveryPort, LaneOutcome, LinkLane, NetSnapshot, Network, NetworkBuilder,
    NetworkError,
};
pub use radio::RadioConfig;
pub use reliability::{summary_bytes, ArqPolicy, BroadcastDelivery, Delivery, ACK_BYTES};
pub use routing::{ParentPolicy, RepairReport, RoutingTree, POWER_AWARE_HYSTERESIS};
pub use scheduler::{Scheduler, Time};
pub use sink::StatLedger;
pub use stats::{DeltaBatchStats, NetworkStats, NodeStats};
pub use topology::Topology;
pub use trace::{Trace, TraceRecord};

pub use sensjoin_relation::NodeId;
