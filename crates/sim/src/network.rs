//! The network facade protocols run against.

use crate::{EnergyModel, NetworkStats, RadioConfig, RoutingTree, Time, Topology, Trace};
use sensjoin_field::{Area, Position};
use sensjoin_relation::NodeId;

/// Errors constructing a [`Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// No nodes were given.
    Empty,
    /// The chosen base station id is out of range.
    BadBase,
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::Empty => write!(f, "network needs at least one node"),
            NetworkError::BadBase => write!(f, "base station id out of range"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// How the base station node is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseChoice {
    /// The node closest to the area center (default: minimizes and
    /// symmetrizes tree depth, as in typical deployments with a powered
    /// access point placed centrally).
    NearestCenter,
    /// The node closest to the origin corner (worst-case tree depth).
    NearestCorner,
    /// An explicit node.
    Node(NodeId),
}

/// Builder for [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    radio: RadioConfig,
    energy: EnergyModel,
    base: BaseChoice,
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        Self {
            radio: RadioConfig::paper_default(),
            energy: EnergyModel::micaz(),
            base: BaseChoice::NearestCenter,
        }
    }
}

impl NetworkBuilder {
    /// Creates a builder with the paper-default radio and MicaZ energy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the radio configuration.
    pub fn radio(mut self, radio: RadioConfig) -> Self {
        self.radio = radio;
        self
    }

    /// Sets the energy model.
    pub fn energy(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Sets the base-station choice.
    pub fn base(mut self, base: BaseChoice) -> Self {
        self.base = base;
        self
    }

    /// Builds the network: topology, routing tree, zeroed statistics.
    ///
    /// Positional base choices (`NearestCenter` / `NearestCorner`) consider
    /// only nodes in the largest connected component — a powered access
    /// point would never be deployed on an isolated straggler node.
    pub fn build(self, positions: Vec<Position>, area: Area) -> Result<Network, NetworkError> {
        if positions.is_empty() {
            return Err(NetworkError::Empty);
        }
        let n = positions.len();
        let topology = Topology::new(positions, area, self.radio.range);
        // Largest connected component (candidates for positional bases).
        let mut seen = vec![false; n];
        let mut best_component: Vec<NodeId> = Vec::new();
        for start in topology.nodes() {
            if seen[start.0 as usize] {
                continue;
            }
            let reach = topology.reachable_from(start);
            let members: Vec<NodeId> = topology.nodes().filter(|&v| reach[v.0 as usize]).collect();
            for &v in &members {
                seen[v.0 as usize] = true;
            }
            if members.len() > best_component.len() {
                best_component = members;
            }
        }
        let nearest = |target: Position| -> NodeId {
            best_component
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    topology
                        .position(a)
                        .distance(&target)
                        .total_cmp(&topology.position(b).distance(&target))
                })
                .expect("component is non-empty")
        };
        let base = match self.base {
            BaseChoice::NearestCenter => nearest(area.center()),
            BaseChoice::NearestCorner => nearest(Position::new(0.0, 0.0)),
            BaseChoice::Node(id) => {
                if (id.0 as usize) >= n {
                    return Err(NetworkError::BadBase);
                }
                id
            }
        };
        let routing = RoutingTree::build(&topology, base);
        Ok(Network {
            topology,
            routing,
            radio: self.radio,
            energy: self.energy,
            stats: NetworkStats::new(n),
            base,
            trace: None,
        })
    }
}

/// A simulated sensor network: topology + routing tree + charge-point for
/// every transmission.
///
/// All payload movement must go through [`Network::unicast`] /
/// [`Network::broadcast`], which fragment the payload into packets of at
/// most [`RadioConfig::max_payload`] bytes and charge transmission/reception
/// statistics and energy. The return value is the hop's transfer latency,
/// which protocol state machines feed into the [`crate::Scheduler`].
#[derive(Debug, Clone)]
pub struct Network {
    topology: Topology,
    routing: RoutingTree,
    radio: RadioConfig,
    energy: EnergyModel,
    stats: NetworkStats,
    base: NodeId,
    trace: Option<Trace>,
}

impl Network {
    /// Enables or disables transmission tracing (disabled by default; the
    /// trace is cleared on [`Network::reset_stats`]).
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = if on { Some(Trace::new()) } else { None };
    }

    /// The transmission trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// The base station node.
    pub fn base(&self) -> NodeId {
        self.base
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The current routing tree.
    pub fn routing(&self) -> &RoutingTree {
        &self.routing
    }

    /// The radio configuration.
    pub fn radio(&self) -> &RadioConfig {
        &self.radio
    }

    /// The energy model.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.topology.len()
    }

    /// Whether the network is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.topology.is_empty()
    }

    /// Moves the accumulated statistics out, leaving fresh counters — what
    /// per-round executors want at round end, without cloning the per-node
    /// vectors (the next round resets anyway).
    pub fn take_stats(&mut self) -> NetworkStats {
        std::mem::replace(&mut self.stats, NetworkStats::new(self.topology.len()))
    }

    /// Resets statistics and the trace (e.g. between repetitions).
    pub fn reset_stats(&mut self) {
        self.stats = NetworkStats::new(self.topology.len());
        if let Some(t) = &mut self.trace {
            *t = Trace::new();
        }
    }

    /// Rebuilds the routing tree treating links with `link_down(u, v)` as
    /// unusable — the converged state of CTP after route repair (§IV-F).
    pub fn rebuild_routing(&mut self, link_down: &dyn Fn(NodeId, NodeId) -> bool) {
        self.routing = RoutingTree::build_excluding(&self.topology, self.base, link_down);
    }

    /// Sends `bytes` of application payload from `from` to neighbor `to`.
    /// Fragments into packets, charges both ends, and returns the transfer
    /// latency. Zero bytes cost nothing.
    ///
    /// # Panics
    /// Panics if `to` is not a neighbor of `from` (protocols only ever talk
    /// to tree neighbors).
    pub fn unicast(&mut self, from: NodeId, to: NodeId, bytes: usize, phase: &str) -> Time {
        if bytes == 0 {
            return 0;
        }
        assert!(
            self.topology.neighbors(from).contains(&to),
            "{from} -> {to} are not neighbors"
        );
        self.charge(from, Some(&[to]), bytes, phase);
        self.radio.transfer_us(bytes)
    }

    /// Local broadcast: one transmission per fragment at `from`, reception
    /// charged at every node of `receivers` (used for filter dissemination:
    /// "broadcast(SubtreeFilter)", Fig. 3).
    ///
    /// # Panics
    /// Panics if any receiver is not a neighbor.
    pub fn broadcast(
        &mut self,
        from: NodeId,
        receivers: &[NodeId],
        bytes: usize,
        phase: &str,
    ) -> Time {
        if bytes == 0 || receivers.is_empty() {
            return 0;
        }
        for r in receivers {
            assert!(
                self.topology.neighbors(from).contains(r),
                "{from} -> {r} are not neighbors"
            );
        }
        self.charge(from, Some(receivers), bytes, phase);
        self.radio.transfer_us(bytes)
    }

    fn charge(&mut self, from: NodeId, to: Option<&[NodeId]>, bytes: usize, phase: &str) {
        if let Some(trace) = &mut self.trace {
            trace.push(
                phase,
                from,
                to.map(|r| r.to_vec()).unwrap_or_default(),
                bytes,
                self.radio.packets_for(bytes),
            );
        }
        let full = bytes / self.radio.max_payload;
        let tail = bytes % self.radio.max_payload;
        let sizes =
            std::iter::repeat_n(self.radio.max_payload, full).chain((tail > 0).then_some(tail));
        for size in sizes {
            let on_air = size + self.radio.header_bytes;
            self.stats
                .record_tx(from, size, self.energy.tx(on_air), phase);
            if let Some(receivers) = to {
                for &r in receivers {
                    self.stats.record_rx(r, size, self.energy.rx(on_air), phase);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensjoin_field::Placement;

    fn small_net() -> Network {
        let area = Area::new(200.0, 200.0);
        let positions = Placement::UniformRandom { n: 60 }.generate(area, 2);
        NetworkBuilder::new().build(positions, area).unwrap()
    }

    #[test]
    fn unicast_fragments_and_charges() {
        let mut net = small_net();
        let base = net.base();
        let child = net.routing().children(base)[0];
        let t = net.unicast(child, base, 100, "p");
        assert!(t > 0);
        // 100 bytes over 48-byte payloads = 3 packets.
        assert_eq!(net.stats().node(child).tx_packets, 3);
        assert_eq!(net.stats().node(child).tx_bytes, 100);
        assert_eq!(net.stats().node(base).rx_packets, 3);
        assert!(net.stats().node(child).energy_uj > 0.0);
    }

    #[test]
    fn zero_bytes_free() {
        let mut net = small_net();
        let base = net.base();
        let child = net.routing().children(base)[0];
        assert_eq!(net.unicast(child, base, 0, "p"), 0);
        assert_eq!(net.stats().total_tx_packets(), 0);
    }

    #[test]
    fn broadcast_single_tx_multi_rx() {
        let mut net = small_net();
        let base = net.base();
        let children: Vec<NodeId> = net.routing().children(base).to_vec();
        assert!(children.len() >= 2, "test topology needs >= 2 children");
        net.broadcast(base, &children, 30, "filter");
        assert_eq!(net.stats().node(base).tx_packets, 1);
        for c in &children {
            assert_eq!(net.stats().node(*c).rx_packets, 1);
        }
    }

    #[test]
    #[should_panic(expected = "not neighbors")]
    fn unicast_to_non_neighbor_panics() {
        // Two nodes far apart.
        let area = Area::new(500.0, 10.0);
        let positions = vec![Position::new(0.0, 5.0), Position::new(400.0, 5.0)];
        let mut net = NetworkBuilder::new()
            .base(BaseChoice::Node(NodeId(0)))
            .build(positions, area)
            .unwrap();
        net.unicast(NodeId(1), NodeId(0), 10, "p");
    }

    #[test]
    fn base_choices() {
        // A connected 3-node chain (positional base choices only consider
        // the largest connected component).
        let area = Area::new(100.0, 100.0);
        let positions = vec![
            Position::new(10.0, 10.0),
            Position::new(45.0, 45.0),
            Position::new(80.0, 80.0),
        ];
        let center = NetworkBuilder::new()
            .build(positions.clone(), area)
            .unwrap();
        assert_eq!(center.base(), NodeId(1));
        let corner = NetworkBuilder::new()
            .base(BaseChoice::NearestCorner)
            .build(positions.clone(), area)
            .unwrap();
        assert_eq!(corner.base(), NodeId(0));
        let explicit = NetworkBuilder::new()
            .base(BaseChoice::Node(NodeId(2)))
            .build(positions.clone(), area)
            .unwrap();
        assert_eq!(explicit.base(), NodeId(2));
        assert_eq!(
            NetworkBuilder::new()
                .base(BaseChoice::Node(NodeId(9)))
                .build(positions, area)
                .unwrap_err(),
            NetworkError::BadBase
        );
        assert_eq!(
            NetworkBuilder::new().build(vec![], area).unwrap_err(),
            NetworkError::Empty
        );
    }

    #[test]
    fn positional_base_avoids_isolated_stragglers() {
        // A big cluster plus one isolated node sitting exactly in the
        // corner: the corner base choice must land in the cluster, not on
        // the straggler.
        let area = Area::new(500.0, 500.0);
        let mut positions =
            Placement::UniformRandom { n: 120 }.generate(Area::new(200.0, 200.0), 3);
        for p in &mut positions {
            p.x += 250.0;
            p.y += 250.0;
        }
        positions.push(Position::new(1.0, 1.0)); // the isolated straggler
        let straggler = NodeId(positions.len() as u32 - 1);
        let net = NetworkBuilder::new()
            .base(BaseChoice::NearestCorner)
            .build(positions, area)
            .unwrap();
        assert_ne!(net.base(), straggler);
        assert!(net.routing().descendants(net.base()) > 100);
    }

    #[test]
    fn rebuild_after_failure_changes_tree() {
        let mut net = small_net();
        let base = net.base();
        let victim = net.routing().children(base)[0];
        let before = net.routing().parent(victim);
        assert_eq!(before, Some(base));
        net.rebuild_routing(&move |a, b| (a == victim && b == base) || (a == base && b == victim));
        assert_ne!(net.routing().parent(victim), Some(base));
    }
}
