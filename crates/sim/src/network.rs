//! The network facade protocols run against.

use crate::battery::{BatteryBank, BatterySnapshot};
use crate::churn::{
    ChurnAction, ChurnOutcome, ChurnTimeline, RepairStrategy, BEACON_BYTES, PHASE_REPAIR,
};
use crate::reliability::{summary_bytes, ACK_BYTES};
use crate::routing::{ParentPolicy, RepairReport};
use crate::sink::{DirectSink, StatLedger, StatSink};
use crate::{
    ArqPolicy, BroadcastDelivery, Channel, ChannelLinkState, Delivery, EnergyModel, NetworkStats,
    RadioConfig, RoutingTree, Time, Topology, Trace, TraceRecord,
};
use sensjoin_field::{Area, Position};
use sensjoin_relation::NodeId;

/// Plain-data export of a [`Network`]'s mutable state (see
/// [`Network::export_state`]): liveness, routing tree, statistics, trace,
/// per-link channel streams, the undrained churn schedule and boundary
/// clock, and the battery bank. Construction-time configuration is *not*
/// included — a restore replays this on top of an identically-configured
/// network.
#[derive(Debug, Clone)]
pub struct NetSnapshot {
    /// Per-node liveness flags.
    pub alive: Vec<bool>,
    /// Routing parents (`u32::MAX` for the base and unreachable nodes).
    pub parent: Vec<u32>,
    /// Routing hop counts (`u32::MAX` for unreachable nodes).
    pub depth: Vec<u32>,
    /// Accumulated statistics.
    pub stats: NetworkStats,
    /// Trace records, if tracing was enabled.
    pub trace: Option<Vec<TraceRecord>>,
    /// Per-link channel RNG/Markov states, if a channel is attached.
    pub channel_states: Option<Vec<ChannelLinkState>>,
    /// Undrained time-scoped churn events (pop order), if a timeline is
    /// attached.
    pub churn_timed: Option<Vec<(Time, NodeId, ChurnAction)>>,
    /// Undrained boundary-scoped churn events (boundary order).
    pub churn_boundary_events: Vec<(u32, Vec<(NodeId, ChurnAction)>)>,
    /// Next boundary index [`Network::apply_churn`] will poll.
    pub churn_boundary: u32,
    /// Accumulated churn clock (µs).
    pub churn_clock: Time,
    /// Battery bank state, if a bank is attached.
    pub battery: Option<BatterySnapshot>,
}

/// Errors constructing a [`Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// No nodes were given.
    Empty,
    /// The chosen base station id is out of range.
    BadBase,
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::Empty => write!(f, "network needs at least one node"),
            NetworkError::BadBase => write!(f, "base station id out of range"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// How the base station node is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseChoice {
    /// The node closest to the area center (default: minimizes and
    /// symmetrizes tree depth, as in typical deployments with a powered
    /// access point placed centrally).
    NearestCenter,
    /// The node closest to the origin corner (worst-case tree depth).
    NearestCorner,
    /// An explicit node.
    Node(NodeId),
}

/// Builder for [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    radio: RadioConfig,
    energy: EnergyModel,
    base: BaseChoice,
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        Self {
            radio: RadioConfig::paper_default(),
            energy: EnergyModel::micaz(),
            base: BaseChoice::NearestCenter,
        }
    }
}

impl NetworkBuilder {
    /// Creates a builder with the paper-default radio and MicaZ energy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the radio configuration.
    pub fn radio(mut self, radio: RadioConfig) -> Self {
        self.radio = radio;
        self
    }

    /// Sets the energy model.
    pub fn energy(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Sets the base-station choice.
    pub fn base(mut self, base: BaseChoice) -> Self {
        self.base = base;
        self
    }

    /// Builds the network: topology, routing tree, zeroed statistics.
    ///
    /// Positional base choices (`NearestCenter` / `NearestCorner`) consider
    /// only nodes in the largest connected component — a powered access
    /// point would never be deployed on an isolated straggler node.
    pub fn build(self, positions: Vec<Position>, area: Area) -> Result<Network, NetworkError> {
        if positions.is_empty() {
            return Err(NetworkError::Empty);
        }
        let n = positions.len();
        let topology = Topology::new(positions, area, self.radio.range);
        // Largest connected component (candidates for positional bases).
        let mut seen = vec![false; n];
        let mut best_component: Vec<NodeId> = Vec::new();
        for start in topology.nodes() {
            if seen[start.0 as usize] {
                continue;
            }
            let reach = topology.reachable_from(start);
            let members: Vec<NodeId> = topology.nodes().filter(|&v| reach[v.0 as usize]).collect();
            for &v in &members {
                seen[v.0 as usize] = true;
            }
            if members.len() > best_component.len() {
                best_component = members;
            }
        }
        let nearest = |target: Position| -> NodeId {
            best_component
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    topology
                        .position(a)
                        .distance(&target)
                        .total_cmp(&topology.position(b).distance(&target))
                })
                .expect("component is non-empty")
        };
        let base = match self.base {
            BaseChoice::NearestCenter => nearest(area.center()),
            BaseChoice::NearestCorner => nearest(Position::new(0.0, 0.0)),
            BaseChoice::Node(id) => {
                if (id.0 as usize) >= n {
                    return Err(NetworkError::BadBase);
                }
                id
            }
        };
        let routing = RoutingTree::build(&topology, base);
        Ok(Network {
            topology,
            routing,
            radio: self.radio,
            energy: self.energy,
            stats: NetworkStats::new(n),
            base,
            trace: None,
            channel: None,
            arq: ArqPolicy::None,
            alive: vec![true; n],
            churn: None,
            churn_boundary: 0,
            churn_clock: 0,
            repair_strategy: RepairStrategy::default(),
            battery: None,
            parent_policy: ParentPolicy::default(),
        })
    }
}

/// A simulated sensor network: topology + routing tree + charge-point for
/// every transmission.
///
/// All payload movement must go through [`Network::unicast`] /
/// [`Network::broadcast`] (or their `_delivery` variants), which fragment
/// the payload into packets of at most [`RadioConfig::max_payload`] bytes
/// and charge transmission/reception statistics and energy. The return
/// value is the hop's transfer latency, which protocol state machines feed
/// into the [`crate::Scheduler`].
///
/// With a lossy [`Channel`] attached ([`Network::set_channel`]), every
/// fragment is drawn through the channel and repaired by the configured
/// [`ArqPolicy`] ([`Network::set_arq`]); the `_delivery` variants report
/// what ultimately arrived. Without a channel — or with a provably perfect
/// one — the lossless fast path is taken and byte counts are identical to a
/// network that never heard of loss.
#[derive(Debug, Clone)]
pub struct Network {
    topology: Topology,
    routing: RoutingTree,
    radio: RadioConfig,
    energy: EnergyModel,
    stats: NetworkStats,
    base: NodeId,
    trace: Option<Trace>,
    channel: Option<Channel>,
    arq: ArqPolicy,
    alive: Vec<bool>,
    churn: Option<ChurnTimeline>,
    churn_boundary: u32,
    churn_clock: Time,
    repair_strategy: RepairStrategy,
    battery: Option<BatteryBank>,
    parent_policy: ParentPolicy,
}

impl Network {
    /// Enables or disables transmission tracing (disabled by default; the
    /// trace is cleared on [`Network::reset_stats`]).
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = if on { Some(Trace::new()) } else { None };
    }

    /// The transmission trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// The base station node.
    pub fn base(&self) -> NodeId {
        self.base
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The current routing tree.
    pub fn routing(&self) -> &RoutingTree {
        &self.routing
    }

    /// The radio configuration.
    pub fn radio(&self) -> &RadioConfig {
        &self.radio
    }

    /// The energy model.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.topology.len()
    }

    /// Whether the network is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.topology.is_empty()
    }

    /// Moves the accumulated statistics out, leaving fresh counters — what
    /// per-round executors want at round end, without cloning the per-node
    /// vectors (the next round resets anyway).
    pub fn take_stats(&mut self) -> NetworkStats {
        std::mem::replace(&mut self.stats, NetworkStats::new(self.topology.len()))
    }

    /// Resets statistics and the trace (e.g. between repetitions).
    pub fn reset_stats(&mut self) {
        self.stats = NetworkStats::new(self.topology.len());
        if let Some(t) = &mut self.trace {
            *t = Trace::new();
        }
    }

    /// Rebuilds the routing tree treating links with `link_down(u, v)` as
    /// unusable — the converged state of CTP after route repair (§IV-F).
    /// Dead nodes (after [`Network::fail_node`]) are always excluded. The
    /// rebuild runs in place, reusing the tree's flat per-node buffers.
    pub fn rebuild_routing(&mut self, link_down: &dyn Fn(NodeId, NodeId) -> bool) {
        let Self {
            routing,
            topology,
            alive,
            ..
        } = self;
        routing.rebuild_excluding(topology, &|a, b| {
            !alive[a.0 as usize] || !alive[b.0 as usize] || link_down(a, b)
        });
    }

    /// Whether `node` is currently alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.0 as usize]
    }

    /// Per-node liveness flags, indexed by node id.
    pub fn alive_mask(&self) -> &[bool] {
        &self.alive
    }

    /// Attaches (or removes, with `None`) a churn timeline. Executors poll
    /// it via [`Network::apply_churn`] at each protocol boundary.
    pub fn set_churn(&mut self, churn: Option<ChurnTimeline>) {
        self.churn = churn;
    }

    /// Whether executors must poll [`Network::apply_churn`] at protocol
    /// boundaries: true when a churn timeline is attached *or* a battery
    /// bank is — battery exhaustion is endogenous churn, and it only turns
    /// into crash-stop failures when a boundary is polled.
    pub fn has_churn(&self) -> bool {
        self.churn.is_some() || self.battery.is_some()
    }

    /// Attaches (or removes, with `None`) a per-node battery bank. While
    /// attached, every µJ charged into the statistics is also debited from
    /// the charged node's battery, and [`Network::apply_churn`] converts
    /// battery exhaustion into crash-stop failures at the next boundary.
    /// Batteries survive [`Network::reset_stats`] / [`Network::take_stats`],
    /// like liveness and the churn timeline.
    ///
    /// # Panics
    /// Panics if the bank's node count does not match the network's.
    pub fn set_battery(&mut self, battery: Option<BatteryBank>) {
        if let Some(b) = &battery {
            assert_eq!(b.len(), self.topology.len(), "one battery per node");
        }
        self.battery = battery;
    }

    /// The attached battery bank, if any.
    pub fn battery(&self) -> Option<&BatteryBank> {
        self.battery.as_ref()
    }

    /// Mutable access to the attached battery bank, if any.
    pub fn battery_mut(&mut self) -> Option<&mut BatteryBank> {
        self.battery.as_mut()
    }

    /// Selects how parents are picked among equally-shallow candidates
    /// (default: [`ParentPolicy::MinHop`]). [`ParentPolicy::PowerAware`]
    /// re-ranks parents by residual battery at every
    /// [`Network::apply_churn`] boundary; it requires an attached
    /// [`BatteryBank`] and is a no-op without one.
    pub fn set_parent_policy(&mut self, policy: ParentPolicy) {
        self.parent_policy = policy;
    }

    /// The configured parent policy.
    pub fn parent_policy(&self) -> ParentPolicy {
        self.parent_policy
    }

    /// Selects how liveness changes repair the routing tree (default:
    /// [`RepairStrategy::Localized`]).
    pub fn set_repair_strategy(&mut self, strategy: RepairStrategy) {
        self.repair_strategy = strategy;
    }

    /// The configured repair strategy.
    pub fn repair_strategy(&self) -> RepairStrategy {
        self.repair_strategy
    }

    /// The next boundary index [`Network::apply_churn`] will poll.
    pub fn churn_boundary(&self) -> u32 {
        self.churn_boundary
    }

    /// Appends a `checkpoint` event row to the trace (no-op when tracing
    /// is off): marks — relative to the data traffic — where a durability
    /// snapshot was taken, so a resumed trace shows its recovery point.
    pub fn note_checkpoint(&mut self, phase: &str) {
        let base = self.base;
        if let Some(t) = &mut self.trace {
            t.push_event(phase, "checkpoint", base, Vec::new());
        }
    }

    /// Exports every piece of state a mid-run network mutates — the
    /// checkpoint/restore surface. The static construction parameters
    /// (topology, radio, energy model, base choice, ARQ policy, repair
    /// strategy, parent policy, channel loss models and seed) are *not*
    /// captured: a restoring run rebuilds the network from the same
    /// configuration and then replays this snapshot on top via
    /// [`Network::restore_state`].
    pub fn export_state(&self) -> NetSnapshot {
        let (parent, depth) = self.routing.export_tree();
        let (churn_timed, churn_boundary_events) = match &self.churn {
            Some(t) => {
                let (timed, boundary) = t.export_events();
                (Some(timed), boundary)
            }
            None => (None, Vec::new()),
        };
        NetSnapshot {
            alive: self.alive.clone(),
            parent,
            depth,
            stats: self.stats.clone(),
            trace: self.trace.as_ref().map(|t| t.records().to_vec()),
            channel_states: self.channel.as_ref().map(|c| c.export_states()),
            churn_timed,
            churn_boundary_events,
            churn_boundary: self.churn_boundary,
            churn_clock: self.churn_clock,
            battery: self.battery.as_ref().map(|b| b.export_state()),
        }
    }

    /// Restores a snapshot previously exported with
    /// [`Network::export_state`] onto an identically-configured network
    /// (same topology, radio, energy model, base, ARQ, channel models and
    /// seed, repair strategy, parent policy). After the call the network's
    /// future behavior — routing, liveness, loss draws, churn schedule,
    /// battery debits, statistics and trace — is bit-identical to the
    /// exporting network's.
    ///
    /// # Panics
    /// Panics if the snapshot's node count does not match.
    pub fn restore_state(&mut self, s: &NetSnapshot) {
        assert_eq!(
            s.alive.len(),
            self.topology.len(),
            "network snapshot node count mismatch"
        );
        self.alive = s.alive.clone();
        self.routing.import_tree(s.parent.clone(), s.depth.clone());
        self.stats = s.stats.clone();
        if let Some(records) = &s.trace {
            self.trace = Some(Trace::from_records(records.clone()));
        }
        if let (Some(channel), Some(states)) = (&mut self.channel, &s.channel_states) {
            channel.import_states(states);
        }
        if let Some(timed) = &s.churn_timed {
            self.churn = Some(ChurnTimeline::from_events(
                timed.clone(),
                s.churn_boundary_events.clone(),
            ));
        }
        self.churn_boundary = s.churn_boundary;
        self.churn_clock = s.churn_clock;
        if let (Some(bank), Some(snap)) = (&mut self.battery, &s.battery) {
            bank.import_state(snap);
        }
    }

    /// Polls the churn timeline at the next protocol boundary: advances the
    /// churn clock by `elapsed` (the simulated time spent since the previous
    /// boundary), drains every event due at the boundary index or at the
    /// advanced clock, and applies it ([`Network::fail_node`] /
    /// [`Network::revive_node`]). Boundaries and the clock count up
    /// monotonically over the network's lifetime — one boundary per protocol
    /// phase (one-shot joins), round (continuous queries) or epoch (query
    /// groups), so repeated executions on the same network keep consuming
    /// the same timeline.
    pub fn apply_churn(&mut self, elapsed: Time) -> ChurnOutcome {
        let boundary = self.churn_boundary;
        self.churn_boundary += 1;
        self.churn_clock = self.churn_clock.saturating_add(elapsed);
        let now = self.churn_clock;
        let events = match &mut self.churn {
            Some(tl) => tl.due(boundary, now),
            None => Vec::new(),
        };
        let mut out = ChurnOutcome {
            boundary,
            ..Default::default()
        };
        for (node, action) in events {
            match action {
                ChurnAction::Crash => {
                    if node == self.base || !self.alive[node.0 as usize] {
                        continue;
                    }
                    let rep = self.fail_node(node);
                    out.crashed.push(node);
                    out.reattached.extend(rep.reattached);
                }
                ChurnAction::Revive => {
                    if self.alive[node.0 as usize] {
                        continue;
                    }
                    let rep = self.revive_node(node);
                    out.revived.push(node);
                    out.reattached.extend(rep.reattached);
                }
            }
        }
        // Endogenous failures: batteries that crossed their capacity since
        // the previous boundary die now, through the very same crash-stop
        // path as timeline events.
        self.drain_depletions(&mut out);
        if self.parent_policy == ParentPolicy::PowerAware && self.battery.is_some() {
            let moved = self.reselect_power_aware();
            out.reattached.extend(moved);
            // Reselection beacons cost energy too; a battery they push over
            // the edge dies at this boundary, not a round later.
            self.drain_depletions(&mut out);
        }
        out.reattached.sort_unstable();
        out.reattached.dedup();
        // A node that crashed at this very boundary is not "reattached".
        out.reattached.retain(|v| self.alive[v.0 as usize]);
        out
    }

    /// Converts pending battery exhaustions into crash-stop failures,
    /// looping because the repair traffic a death charges can push further
    /// batteries over the edge (a depletion cascade resolves within one
    /// boundary). Trace rows: a `battery` event marking the exhaustion,
    /// then the `death(energy)` event of the crash itself.
    fn drain_depletions(&mut self, out: &mut ChurnOutcome) {
        loop {
            let pending = match &mut self.battery {
                Some(b) => b.take_pending(),
                None => return,
            };
            if pending.is_empty() {
                return;
            }
            for node in pending {
                if node == self.base || !self.alive[node.0 as usize] {
                    continue;
                }
                if let Some(t) = &mut self.trace {
                    t.push_event(PHASE_REPAIR, "battery", node, vec![]);
                }
                let rep = self.fail_node_with(node, "death(energy)");
                out.depleted.push(node);
                out.crashed.push(node);
                out.reattached.extend(rep.reattached);
            }
        }
    }

    /// [`ParentPolicy::PowerAware`]'s boundary step: re-rank every routed
    /// node's parent by residual battery and charge one probe beacon (plus
    /// the adopting parent's ack) per node that actually moved — the same
    /// control-traffic pricing as a repair reattachment.
    fn reselect_power_aware(&mut self) -> Vec<NodeId> {
        let residual = match &self.battery {
            Some(b) => b.residuals(),
            None => return Vec::new(),
        };
        let moved = self
            .routing
            .reselect_parents(&self.topology, &self.alive, &residual);
        for &v in &moved {
            self.charge_beacon_broadcast(v);
            let parent = self.routing.parent(v);
            if let Some(p) = parent {
                self.charge_beacon_unicast(p, v);
            }
            if let Some(t) = &mut self.trace {
                t.push_event(PHASE_REPAIR, "repair", v, parent.into_iter().collect());
            }
        }
        moved
    }

    /// Crash-stop failure of `node`: it leaves the network, losing all
    /// state, and the routing tree is repaired around it per the configured
    /// [`RepairStrategy`]. Detection probes (one control beacon from each
    /// former tree neighbor), the death notification relayed to the base
    /// station, and every repair beacon are charged through the energy
    /// model as control traffic under the `"repair"` phase. No-op if the
    /// node is already dead.
    ///
    /// # Panics
    /// Panics if `node` is the base station — the powered access point
    /// never fails.
    pub fn fail_node(&mut self, node: NodeId) -> RepairReport {
        self.fail_node_with(node, "death")
    }

    /// [`Network::fail_node`] with an explicit trace-event kind, so
    /// endogenous battery deaths write `death(energy)` rows while exogenous
    /// churn keeps plain `death` — the crash-stop mechanics are identical.
    fn fail_node_with(&mut self, node: NodeId, kind: &str) -> RepairReport {
        assert_ne!(node, self.base, "the base station never fails");
        if !self.alive[node.0 as usize] {
            return RepairReport::default();
        }
        self.alive[node.0 as usize] = false;
        self.stats.record_death(node, PHASE_REPAIR);
        if let Some(t) = &mut self.trace {
            t.push_event(PHASE_REPAIR, kind, node, vec![]);
        }
        let former_parent = self.routing.parent(node);
        let former_children = self.routing.children(node).to_vec();
        let report = self.repair_tree(&[node]);
        // Silence-detection probes at the former tree neighbors.
        for probe in former_parent.into_iter().chain(former_children) {
            if self.alive[probe.0 as usize] {
                self.charge_beacon_broadcast(probe);
            }
        }
        // The former parent relays the death report to the base station so
        // proxies can drop the dead node's rows.
        if let Some(p) = former_parent {
            if self.alive[p.0 as usize] {
                self.charge_chain_to_base(p);
            }
        }
        report
    }

    /// Revival (reboot with state loss) of `node`: it rejoins the network
    /// with no protocol state and the routing tree re-adopts it (and any
    /// orphans it reconnects) per the configured [`RepairStrategy`]; repair
    /// beacons are charged as control traffic. No-op if already alive.
    pub fn revive_node(&mut self, node: NodeId) -> RepairReport {
        if self.alive[node.0 as usize] {
            return RepairReport::default();
        }
        self.alive[node.0 as usize] = true;
        if let Some(t) = &mut self.trace {
            t.push_event(PHASE_REPAIR, "revival", node, vec![]);
        }
        self.repair_tree(&[node])
    }

    /// Repairs routing after a liveness change and charges the repair
    /// traffic, per the configured strategy. `epicenters` are the nodes
    /// whose liveness just flipped — localized repair walks only their
    /// neighborhoods, never the full node array.
    fn repair_tree(&mut self, epicenters: &[NodeId]) -> RepairReport {
        match self.repair_strategy {
            RepairStrategy::Localized => {
                let report = self
                    .routing
                    .repair_localized(&self.topology, &self.alive, epicenters);
                for &f in &report.reattached {
                    // Parent re-selection: the floating node probes its
                    // neighborhood once, the chosen parent acknowledges.
                    self.charge_beacon_broadcast(f);
                    let parent = self.routing.parent(f);
                    if let Some(p) = parent {
                        self.charge_beacon_unicast(p, f);
                    }
                    if let Some(t) = &mut self.trace {
                        t.push_event(PHASE_REPAIR, "repair", f, parent.into_iter().collect());
                    }
                }
                report
            }
            RepairStrategy::FullRebuild => {
                // Baseline: global CTP re-convergence — every live node
                // beacons once, the whole tree is rebuilt.
                let before: Vec<Option<NodeId>> = self
                    .topology
                    .nodes()
                    .map(|v| self.routing.parent(v))
                    .collect();
                let before_depth: Vec<Option<u32>> = self
                    .topology
                    .nodes()
                    .map(|v| self.routing.depth(v))
                    .collect();
                self.rebuild_routing(&|_, _| false);
                for v in self.topology.nodes() {
                    if self.alive[v.0 as usize] {
                        self.charge_beacon_broadcast(v);
                    }
                }
                let mut report = RepairReport::default();
                for v in self.topology.nodes() {
                    let i = v.0 as usize;
                    if !self.alive[i] {
                        if before_depth[i].is_some() {
                            report.detached.push(v);
                        }
                        continue;
                    }
                    if self.routing.depth(v).is_none() {
                        if v != self.base {
                            report.orphaned.push(v);
                        }
                    } else if self.routing.parent(v) != before[i] {
                        report.reattached.push(v);
                        if let Some(t) = &mut self.trace {
                            let parent = self.routing.parent(v);
                            t.push_event(PHASE_REPAIR, "repair", v, parent.into_iter().collect());
                        }
                    }
                }
                report
            }
        }
    }

    /// Charges one control beacon broadcast at `from`: transmission at the
    /// sender, reception energy at every live neighbor. Control-plane
    /// beacons bypass the lossy channel and ARQ (CTP's beaconing has its own
    /// redundancy) — they are deterministic cost, not data traffic.
    fn charge_beacon_broadcast(&mut self, from: NodeId) {
        let on_air = BEACON_BYTES + self.radio.header_bytes;
        let tx = self.energy.tx(on_air);
        let rx = self.energy.rx(on_air);
        self.stats.record_ack(from, BEACON_BYTES, tx, PHASE_REPAIR);
        if let Some(b) = &mut self.battery {
            b.debit(from, tx);
        }
        for &r in self.topology.neighbors(from) {
            if self.alive[r.0 as usize] {
                self.stats.record_energy(r, rx, PHASE_REPAIR);
                if let Some(b) = &mut self.battery {
                    b.debit(r, rx);
                }
            }
        }
    }

    /// Charges one control beacon from `from` heard only at `to` (e.g. a
    /// parent acknowledging an adoption).
    fn charge_beacon_unicast(&mut self, from: NodeId, to: NodeId) {
        let on_air = BEACON_BYTES + self.radio.header_bytes;
        let tx = self.energy.tx(on_air);
        let rx = self.energy.rx(on_air);
        self.stats.record_ack(from, BEACON_BYTES, tx, PHASE_REPAIR);
        self.stats.record_energy(to, rx, PHASE_REPAIR);
        if let Some(b) = &mut self.battery {
            b.debit(from, tx);
            b.debit(to, rx);
        }
    }

    /// Charges a control-beacon relay chain from `from` up to the base
    /// station along the current tree.
    fn charge_chain_to_base(&mut self, from: NodeId) {
        let Some(path) = self.routing.path_to_base(from) else {
            return;
        };
        for hop in path.windows(2) {
            self.charge_beacon_unicast(hop[0], hop[1]);
        }
    }

    /// Attaches (or detaches, with `None`) a lossy channel. Fragments of
    /// every subsequent transfer are drawn through it.
    pub fn set_channel(&mut self, channel: Option<Channel>) {
        self.channel = channel;
    }

    /// The attached channel, if any.
    pub fn channel(&self) -> Option<&Channel> {
        self.channel.as_ref()
    }

    /// Sets the hop-by-hop ARQ policy used when a lossy channel is attached
    /// (default: [`ArqPolicy::None`]).
    pub fn set_arq(&mut self, arq: ArqPolicy) {
        self.arq = arq;
    }

    /// The configured ARQ policy.
    pub fn arq(&self) -> ArqPolicy {
        self.arq
    }

    /// Whether transfers can actually lose packets: a channel is attached
    /// and it is not provably perfect. When `false`, the lossless fast path
    /// runs and byte counts match a channel-free network exactly.
    pub fn lossy(&self) -> bool {
        self.channel.as_ref().is_some_and(|c| !c.is_perfect())
    }

    /// Sends `bytes` of application payload from `from` to neighbor `to`.
    /// Fragments into packets, charges both ends, and returns the transfer
    /// latency. Zero bytes cost nothing.
    ///
    /// On a lossy network this runs the ARQ machinery; use
    /// [`Network::unicast_delivery`] when the caller needs to know whether
    /// the message actually arrived.
    ///
    /// # Panics
    /// Panics if `to` is not a neighbor of `from` (protocols only ever talk
    /// to tree neighbors).
    pub fn unicast(&mut self, from: NodeId, to: NodeId, bytes: usize, phase: &str) -> Time {
        self.unicast_delivery(from, to, bytes, phase).time
    }

    /// [`Network::unicast`] with a full delivery report: completeness,
    /// retransmissions and control frames.
    pub fn unicast_delivery(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        phase: &str,
    ) -> Delivery {
        if bytes == 0 {
            return Delivery::lossless(0, 0);
        }
        assert!(
            self.topology.neighbors(from).contains(&to),
            "{from} -> {to} are not neighbors"
        );
        debug_assert!(self.alive[from.0 as usize], "dead node {from} transmits");
        debug_assert!(self.alive[to.0 as usize], "transmission to dead node {to}");
        let (b, delivered) = self.transfer(from, &[to], bytes, phase);
        Delivery {
            time: b.time,
            fragments: b.fragments,
            delivered: delivered[0],
            retransmissions: b.retransmissions,
            control_packets: b.control_packets,
            complete: b.complete[0],
        }
    }

    /// Local broadcast: one transmission per fragment at `from`, reception
    /// charged at every node of `receivers` (used for filter dissemination:
    /// "broadcast(SubtreeFilter)", Fig. 3).
    ///
    /// # Panics
    /// Panics if any receiver is not a neighbor.
    pub fn broadcast(
        &mut self,
        from: NodeId,
        receivers: &[NodeId],
        bytes: usize,
        phase: &str,
    ) -> Time {
        self.broadcast_delivery(from, receivers, bytes, phase).time
    }

    /// [`Network::broadcast`] with a full delivery report (per-receiver
    /// completeness).
    pub fn broadcast_delivery(
        &mut self,
        from: NodeId,
        receivers: &[NodeId],
        bytes: usize,
        phase: &str,
    ) -> BroadcastDelivery {
        if bytes == 0 || receivers.is_empty() {
            return BroadcastDelivery::lossless(0, 0, receivers.len());
        }
        debug_assert!(self.alive[from.0 as usize], "dead node {from} transmits");
        for r in receivers {
            assert!(
                self.topology.neighbors(from).contains(r),
                "{from} -> {r} are not neighbors"
            );
            debug_assert!(self.alive[r.0 as usize], "transmission to dead node {r}");
        }
        self.transfer(from, receivers, bytes, phase).0
    }

    /// The one charge point: moves a message from `from` to `receivers`,
    /// charging every data fragment, retransmission and control frame
    /// straight onto the network's counters. Returns the delivery report
    /// plus per-receiver decoded-fragment counts.
    fn transfer(
        &mut self,
        from: NodeId,
        receivers: &[NodeId],
        bytes: usize,
        phase: &str,
    ) -> (BroadcastDelivery, Vec<usize>) {
        let mut sink = DirectSink {
            stats: &mut self.stats,
            trace: self.trace.as_mut(),
            battery: self.battery.as_mut(),
        };
        transfer_impl(
            &self.radio,
            &self.energy,
            self.arq,
            self.channel.as_mut(),
            &mut sink,
            from,
            receivers,
            bytes,
            phase,
        )
    }

    /// Opens an independent charging lane for one worker thread of a
    /// parallel wave. The lane borrows the immutable network structure
    /// (topology, liveness) and owns a clone of the channel plus a
    /// [`StatLedger`]; its `*_delivery` methods behave exactly like the
    /// network's own, but record their charges instead of applying them.
    /// After the thread joins, pass [`LinkLane::finish`]'s outcome to
    /// [`Network::absorb_lane`] — replaying lanes in serial-traversal order
    /// reproduces the serial charge sequence bit for bit (see
    /// [`StatLedger`]).
    pub fn open_lane(&self) -> LinkLane<'_> {
        LinkLane {
            topology: &self.topology,
            alive: &self.alive,
            radio: self.radio,
            energy: self.energy,
            arq: self.arq,
            channel: self.channel.clone(),
            ledger: StatLedger::new(self.trace.is_some()),
            links: Vec::new(),
        }
    }

    /// Splits the network into its routing tree and a [`DeliveryPort`]:
    /// the port charges transfers exactly like
    /// [`Network::unicast_delivery`] / [`Network::broadcast_delivery`]
    /// while the tree stays borrowable — so a wave engine can walk
    /// children/parents without cloning the tree (O(n) scratch at the
    /// scales the simulator now targets).
    pub fn delivery_port(&mut self) -> (&RoutingTree, DeliveryPort<'_>) {
        let Self {
            topology,
            routing,
            radio,
            energy,
            stats,
            trace,
            channel,
            arq,
            alive,
            battery,
            ..
        } = self;
        (
            routing,
            DeliveryPort {
                topology,
                alive,
                radio: *radio,
                energy: *energy,
                arq: *arq,
                channel: channel.as_mut(),
                stats,
                trace: trace.as_mut(),
                battery: battery.as_mut(),
            },
        )
    }

    /// Merges a finished lane back: replays its recorded charges onto the
    /// network's counters and trace, and adopts the channel state of every
    /// directed link the lane drew on (each link is owned by exactly one
    /// lane, so the streams end up positioned exactly as after a serial
    /// run).
    pub fn absorb_lane(&mut self, outcome: LaneOutcome) {
        let LaneOutcome {
            ledger,
            channel,
            links,
        } = outcome;
        ledger.replay(&mut self.stats, self.trace.as_mut(), self.battery.as_mut());
        if let (Some(mine), Some(theirs)) = (self.channel.as_mut(), channel.as_ref()) {
            for &(a, b) in &links {
                mine.adopt_link_state(theirs, a, b);
            }
        }
    }
}

/// A per-thread charging lane of a parallel wave: same delivery semantics
/// as [`Network::unicast_delivery`] / [`Network::broadcast_delivery`], but
/// charges are recorded in a [`StatLedger`] (and packet fates drawn from a
/// private channel clone) instead of mutating shared state. Obtain with
/// [`Network::open_lane`], merge back with [`Network::absorb_lane`].
#[derive(Debug)]
pub struct LinkLane<'a> {
    topology: &'a Topology,
    alive: &'a [bool],
    radio: RadioConfig,
    energy: EnergyModel,
    arq: ArqPolicy,
    channel: Option<Channel>,
    ledger: StatLedger,
    links: Vec<(NodeId, NodeId)>,
}

/// The delivery half of [`Network::delivery_port`]: mutable access to the
/// charging machinery (stats, trace, channel) while the routing tree stays
/// separately borrowed. Semantics are identical to the network's own
/// delivery methods — both funnel into the same transfer engine.
#[derive(Debug)]
pub struct DeliveryPort<'a> {
    topology: &'a Topology,
    alive: &'a [bool],
    radio: RadioConfig,
    energy: EnergyModel,
    arq: ArqPolicy,
    channel: Option<&'a mut Channel>,
    stats: &'a mut NetworkStats,
    trace: Option<&'a mut Trace>,
    battery: Option<&'a mut BatteryBank>,
}

impl DeliveryPort<'_> {
    /// Port twin of [`Network::unicast_delivery`].
    pub fn unicast_delivery(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        phase: &str,
    ) -> Delivery {
        if bytes == 0 {
            return Delivery::lossless(0, 0);
        }
        assert!(
            self.topology.neighbors(from).contains(&to),
            "{from} -> {to} are not neighbors"
        );
        debug_assert!(self.alive[from.0 as usize], "dead node {from} transmits");
        debug_assert!(self.alive[to.0 as usize], "transmission to dead node {to}");
        let (b, delivered) = self.transfer(from, &[to], bytes, phase);
        Delivery {
            time: b.time,
            fragments: b.fragments,
            delivered: delivered[0],
            retransmissions: b.retransmissions,
            control_packets: b.control_packets,
            complete: b.complete[0],
        }
    }

    /// Port twin of [`Network::broadcast_delivery`].
    pub fn broadcast_delivery(
        &mut self,
        from: NodeId,
        receivers: &[NodeId],
        bytes: usize,
        phase: &str,
    ) -> BroadcastDelivery {
        if bytes == 0 || receivers.is_empty() {
            return BroadcastDelivery::lossless(0, 0, receivers.len());
        }
        debug_assert!(self.alive[from.0 as usize], "dead node {from} transmits");
        for r in receivers {
            assert!(
                self.topology.neighbors(from).contains(r),
                "{from} -> {r} are not neighbors"
            );
            debug_assert!(self.alive[r.0 as usize], "transmission to dead node {r}");
        }
        self.transfer(from, receivers, bytes, phase).0
    }

    fn transfer(
        &mut self,
        from: NodeId,
        receivers: &[NodeId],
        bytes: usize,
        phase: &str,
    ) -> (BroadcastDelivery, Vec<usize>) {
        let mut sink = DirectSink {
            stats: self.stats,
            trace: self.trace.as_deref_mut(),
            battery: self.battery.as_deref_mut(),
        };
        transfer_impl(
            &self.radio,
            &self.energy,
            self.arq,
            self.channel.as_deref_mut(),
            &mut sink,
            from,
            receivers,
            bytes,
            phase,
        )
    }
}

/// What a finished [`LinkLane`] hands back for merging: the recorded
/// charges, the advanced channel clone and the directed links it drew on.
#[derive(Debug)]
pub struct LaneOutcome {
    ledger: StatLedger,
    channel: Option<Channel>,
    links: Vec<(NodeId, NodeId)>,
}

impl LinkLane<'_> {
    /// Lane twin of [`Network::unicast_delivery`] — identical semantics,
    /// charges recorded instead of applied.
    pub fn unicast_delivery(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        phase: &str,
    ) -> Delivery {
        if bytes == 0 {
            return Delivery::lossless(0, 0);
        }
        assert!(
            self.topology.neighbors(from).contains(&to),
            "{from} -> {to} are not neighbors"
        );
        debug_assert!(self.alive[from.0 as usize], "dead node {from} transmits");
        debug_assert!(self.alive[to.0 as usize], "transmission to dead node {to}");
        let (b, delivered) = self.transfer(from, &[to], bytes, phase);
        Delivery {
            time: b.time,
            fragments: b.fragments,
            delivered: delivered[0],
            retransmissions: b.retransmissions,
            control_packets: b.control_packets,
            complete: b.complete[0],
        }
    }

    /// Lane twin of [`Network::broadcast_delivery`].
    pub fn broadcast_delivery(
        &mut self,
        from: NodeId,
        receivers: &[NodeId],
        bytes: usize,
        phase: &str,
    ) -> BroadcastDelivery {
        if bytes == 0 || receivers.is_empty() {
            return BroadcastDelivery::lossless(0, 0, receivers.len());
        }
        debug_assert!(self.alive[from.0 as usize], "dead node {from} transmits");
        for r in receivers {
            assert!(
                self.topology.neighbors(from).contains(r),
                "{from} -> {r} are not neighbors"
            );
            debug_assert!(self.alive[r.0 as usize], "transmission to dead node {r}");
        }
        self.transfer(from, receivers, bytes, phase).0
    }

    fn transfer(
        &mut self,
        from: NodeId,
        receivers: &[NodeId],
        bytes: usize,
        phase: &str,
    ) -> (BroadcastDelivery, Vec<usize>) {
        if self.channel.as_ref().is_some_and(|c| !c.is_perfect()) {
            // Remember the directed links whose streams this lane advances
            // (data one way, ACK/summary frames the other).
            for &r in receivers {
                self.links.push((from, r));
                self.links.push((r, from));
            }
        }
        transfer_impl(
            &self.radio,
            &self.energy,
            self.arq,
            self.channel.as_mut(),
            &mut self.ledger,
            from,
            receivers,
            bytes,
            phase,
        )
    }

    /// Closes the lane, handing back everything [`Network::absorb_lane`]
    /// needs.
    pub fn finish(self) -> LaneOutcome {
        LaneOutcome {
            ledger: self.ledger,
            channel: self.channel,
            links: self.links,
        }
    }
}

/// Fragment sizes of a `bytes`-byte payload.
fn fragment_sizes(radio: &RadioConfig, bytes: usize) -> Vec<usize> {
    let full = bytes / radio.max_payload;
    let tail = bytes % radio.max_payload;
    std::iter::repeat_n(radio.max_payload, full)
        .chain((tail > 0).then_some(tail))
        .collect()
}

/// The shared transfer engine behind [`Network`] and [`LinkLane`]: moves a
/// message from `from` to `receivers`, charging every data fragment,
/// retransmission and control frame into `sink`. Returns the delivery
/// report plus per-receiver decoded-fragment counts.
#[allow(clippy::too_many_arguments)]
fn transfer_impl<S: StatSink>(
    radio: &RadioConfig,
    energy: &EnergyModel,
    arq: ArqPolicy,
    channel: Option<&mut Channel>,
    sink: &mut S,
    from: NodeId,
    receivers: &[NodeId],
    bytes: usize,
    phase: &str,
) -> (BroadcastDelivery, Vec<usize>) {
    let sizes = fragment_sizes(radio, bytes);
    let nfrags = sizes.len();
    let lossy = channel.as_ref().is_some_and(|c| !c.is_perfect());
    if !lossy {
        // Lossless fast path: identical charging to the pre-channel
        // simulator, no ARQ traffic whatsoever.
        for &size in &sizes {
            let on_air = size + radio.header_bytes;
            sink.record_tx(from, size, energy.tx(on_air), phase);
            for &r in receivers {
                sink.record_rx(r, size, energy.rx(on_air), phase);
            }
        }
        if sink.wants_trace() {
            sink.trace_lossless(phase, from, receivers, bytes, nfrags);
        }
        let d = BroadcastDelivery::lossless(radio.transfer_us(bytes), nfrags, receivers.len());
        let delivered = vec![nfrags; receivers.len()];
        return (d, delivered);
    }

    let nrecv = receivers.len();
    // have[f][ri]: ground truth — receiver ri decoded fragment f.
    let mut have = vec![vec![false; nrecv]; nfrags];
    let mut time: Time = 0;
    let mut retx: u64 = 0;
    let mut ctrl: u64 = 0;
    let header = radio.header_bytes;
    let ch = channel.expect("lossy implies a channel");
    match arq {
        ArqPolicy::None => {
            for (f, &size) in sizes.iter().enumerate() {
                let on_air = size + header;
                sink.record_tx(from, size, energy.tx(on_air), phase);
                time += radio.airtime_us(size);
                for (ri, &r) in receivers.iter().enumerate() {
                    if ch.deliver(from, r, phase) {
                        have[f][ri] = true;
                        sink.record_rx(r, size, energy.rx(on_air), phase);
                    }
                }
            }
        }
        ArqPolicy::AckRetransmit { max_retries } => {
            // Stop-and-wait per fragment: retransmit until every
            // receiver's ACK came back or the retry budget is spent.
            for (f, &size) in sizes.iter().enumerate() {
                let on_air = size + header;
                let mut acked = vec![false; nrecv];
                for attempt in 0..=max_retries {
                    if attempt == 0 {
                        sink.record_tx(from, size, energy.tx(on_air), phase);
                    } else {
                        retx += 1;
                        sink.record_retx(from, size, energy.tx(on_air), phase);
                        // Timeout stall before each retransmission.
                        time += radio.hop_delay_us;
                    }
                    time += radio.airtime_us(size);
                    for (ri, &r) in receivers.iter().enumerate() {
                        if acked[ri] {
                            continue; // receiver already done with f
                        }
                        if ch.deliver(from, r, phase) {
                            if !have[f][ri] {
                                have[f][ri] = true;
                                sink.record_rx(r, size, energy.rx(on_air), phase);
                            } else {
                                // Duplicate (its earlier ACK was lost):
                                // energy only, the copy is discarded.
                                sink.record_energy(r, energy.rx(on_air), phase);
                            }
                        }
                        if have[f][ri] {
                            ctrl += 1;
                            sink.record_ack(r, ACK_BYTES, energy.tx(ACK_BYTES + header), phase);
                            time += radio.airtime_us(ACK_BYTES);
                            if ch.deliver(r, from, phase) {
                                acked[ri] = true;
                                sink.record_energy(from, energy.rx(ACK_BYTES + header), phase);
                            }
                        }
                    }
                    if acked.iter().all(|&a| a) {
                        break;
                    }
                }
            }
        }
        ArqPolicy::SummaryRepair { max_rounds } => {
            // Round 0: ship the whole fragment train once.
            for (f, &size) in sizes.iter().enumerate() {
                let on_air = size + header;
                sink.record_tx(from, size, energy.tx(on_air), phase);
                time += radio.airtime_us(size);
                for (ri, &r) in receivers.iter().enumerate() {
                    if ch.deliver(from, r, phase) {
                        have[f][ri] = true;
                        sink.record_rx(r, size, energy.rx(on_air), phase);
                    }
                }
            }
            // Repair rounds: each open receiver summarizes (OK or NACK
            // bitmap); the sender rebroadcasts the union of NACKed
            // fragments.
            let sbytes = summary_bytes(nfrags);
            let mut done = vec![false; nrecv]; // sender has the OK
            for round in 0..=max_rounds {
                let mut requested = vec![false; nfrags];
                for (ri, &r) in receivers.iter().enumerate() {
                    if done[ri] {
                        continue;
                    }
                    ctrl += 1;
                    sink.record_ack(r, sbytes, energy.tx(sbytes + header), phase);
                    time += radio.airtime_us(sbytes);
                    if ch.deliver(r, from, phase) {
                        sink.record_energy(from, energy.rx(sbytes + header), phase);
                        let missing: Vec<usize> = (0..nfrags).filter(|&f| !have[f][ri]).collect();
                        if missing.is_empty() {
                            done[ri] = true;
                        } else {
                            for f in missing {
                                requested[f] = true;
                            }
                        }
                    }
                    // A lost summary stalls this receiver one round.
                }
                if done.iter().all(|&d| d) || round == max_rounds {
                    break;
                }
                for (f, &size) in sizes.iter().enumerate() {
                    if !requested[f] {
                        continue;
                    }
                    let on_air = size + header;
                    retx += 1;
                    sink.record_retx(from, size, energy.tx(on_air), phase);
                    time += radio.airtime_us(size);
                    for (ri, &r) in receivers.iter().enumerate() {
                        if done[ri] {
                            continue;
                        }
                        if have[f][ri] {
                            // Overhears the repair it did not need.
                            sink.record_energy(r, energy.rx(on_air), phase);
                        } else if ch.deliver(from, r, phase) {
                            have[f][ri] = true;
                            sink.record_rx(r, size, energy.rx(on_air), phase);
                        }
                    }
                }
                time += radio.hop_delay_us; // round turnaround
            }
        }
    }
    time += radio.hop_delay_us;
    // Permanent losses.
    let mut delivered = vec![0usize; nrecv];
    let mut complete = vec![true; nrecv];
    for (ri, &r) in receivers.iter().enumerate() {
        for row in have.iter() {
            if row[ri] {
                delivered[ri] += 1;
            } else {
                complete[ri] = false;
                sink.record_loss(r, phase);
            }
        }
    }
    let acked = complete.iter().all(|&c| c);
    if sink.wants_trace() {
        sink.trace_delivery(phase, from, receivers, bytes, nfrags, retx, acked);
    }
    (
        BroadcastDelivery {
            time,
            fragments: nfrags,
            complete,
            retransmissions: retx,
            control_packets: ctrl,
        },
        delivered,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LossModel;
    use sensjoin_field::Placement;

    fn small_net() -> Network {
        let area = Area::new(200.0, 200.0);
        let positions = Placement::UniformRandom { n: 60 }.generate(area, 2);
        NetworkBuilder::new().build(positions, area).unwrap()
    }

    #[test]
    fn unicast_fragments_and_charges() {
        let mut net = small_net();
        let base = net.base();
        let child = net.routing().children(base)[0];
        let t = net.unicast(child, base, 100, "p");
        assert!(t > 0);
        // 100 bytes over 48-byte payloads = 3 packets.
        assert_eq!(net.stats().node(child).tx_packets, 3);
        assert_eq!(net.stats().node(child).tx_bytes, 100);
        assert_eq!(net.stats().node(base).rx_packets, 3);
        assert!(net.stats().node(child).energy_uj > 0.0);
    }

    #[test]
    fn zero_bytes_free() {
        let mut net = small_net();
        let base = net.base();
        let child = net.routing().children(base)[0];
        assert_eq!(net.unicast(child, base, 0, "p"), 0);
        assert_eq!(net.stats().total_tx_packets(), 0);
    }

    #[test]
    fn broadcast_single_tx_multi_rx() {
        let mut net = small_net();
        let base = net.base();
        let children: Vec<NodeId> = net.routing().children(base).to_vec();
        assert!(children.len() >= 2, "test topology needs >= 2 children");
        net.broadcast(base, &children, 30, "filter");
        assert_eq!(net.stats().node(base).tx_packets, 1);
        for c in &children {
            assert_eq!(net.stats().node(*c).rx_packets, 1);
        }
    }

    #[test]
    fn perfect_channel_is_byte_identical_to_no_channel() {
        let mut plain = small_net();
        let mut chan = small_net();
        chan.set_channel(Some(Channel::bernoulli(0.0, 9)));
        chan.set_arq(ArqPolicy::ack(5));
        let base = plain.base();
        let child = plain.routing().children(base)[0];
        for net in [&mut plain, &mut chan] {
            net.unicast(child, base, 100, "p");
            net.broadcast(base, &[child], 30, "q");
        }
        assert_eq!(plain.stats().node(child), chan.stats().node(child));
        assert_eq!(plain.stats().node(base), chan.stats().node(base));
        assert_eq!(chan.stats().total_retx_packets(), 0);
        assert_eq!(chan.stats().total_ack_packets(), 0);
        assert!((plain.stats().total_energy_uj() - chan.stats().total_energy_uj()).abs() < 1e-9);
    }

    #[test]
    fn arq_none_drops_fragments_permanently() {
        let mut net = small_net();
        let base = net.base();
        let child = net.routing().children(base)[0];
        net.set_channel(Some(Channel::bernoulli(1.0, 3)));
        let d = net.unicast_delivery(child, base, 100, "p");
        assert!(!d.complete);
        assert_eq!(d.delivered, 0);
        assert_eq!(d.fragments, 3);
        assert_eq!(net.stats().node(base).rx_packets, 0);
        assert_eq!(net.stats().node(base).lost_packets, 3);
        // First attempts are still charged at the sender.
        assert_eq!(net.stats().node(child).tx_packets, 3);
    }

    #[test]
    fn ack_retransmit_repairs_heavy_loss() {
        let mut net = small_net();
        let base = net.base();
        let child = net.routing().children(base)[0];
        net.set_channel(Some(Channel::bernoulli(0.4, 11)));
        net.set_arq(ArqPolicy::ack(20));
        let d = net.unicast_delivery(child, base, 100, "p");
        assert!(d.complete);
        assert!(d.retransmissions > 0, "40 % loss must retransmit");
        assert!(d.control_packets >= 3, "each fragment is acked");
        assert_eq!(net.stats().node(base).rx_packets, 3);
        assert_eq!(net.stats().node(base).lost_packets, 0);
        // tx counters stay loss-invariant; repair lives in retx/ack.
        assert_eq!(net.stats().node(child).tx_packets, 3);
        assert_eq!(net.stats().node(child).retx_packets, d.retransmissions);
        assert!(net.stats().total_overhead_bytes() > 0);
    }

    #[test]
    fn summary_repair_repairs_and_charges_summaries() {
        let mut net = small_net();
        let base = net.base();
        let child = net.routing().children(base)[0];
        net.set_channel(Some(Channel::gilbert_elliott(0.3, 4.0, 13)));
        net.set_arq(ArqPolicy::summary(20));
        let d = net.unicast_delivery(child, base, 200, "p");
        assert!(d.complete);
        assert!(d.control_packets >= 1, "at least the final OK summary");
        assert_eq!(net.stats().node(base).rx_packets, 5);
        assert_eq!(net.stats().node(base).ack_packets, d.control_packets);
        assert_eq!(net.stats().node(child).tx_packets, 5);
    }

    #[test]
    fn dropped_then_retried_unicast_traces_one_logical_record() {
        let mut net = small_net();
        net.set_tracing(true);
        let base = net.base();
        let child = net.routing().children(base)[0];
        net.set_channel(Some(Channel::bernoulli(0.5, 21)));
        net.set_arq(ArqPolicy::ack(30));
        let d = net.unicast_delivery(child, base, 40, "p");
        assert!(d.complete);
        assert!(d.retransmissions > 0, "seed 21 at 50 % loss must drop once");
        let trace = net.trace().unwrap();
        assert_eq!(trace.len(), 1, "retries must not add records");
        let rec = &trace.records()[0];
        assert_eq!(rec.retransmissions, d.retransmissions);
        assert!(rec.acked);
        assert_eq!(rec.packets, 1);
        let csv = trace.to_csv();
        assert!(csv.contains(&format!(",40,1,{},true\n", d.retransmissions)));
    }

    #[test]
    fn broadcast_delivery_reports_per_receiver() {
        let mut net = small_net();
        let base = net.base();
        let children: Vec<NodeId> = net.routing().children(base).to_vec();
        assert!(children.len() >= 2);
        let mut ch = Channel::perfect();
        // Only the link to children[0] is dead.
        ch.set_link_model(base, children[0], LossModel::Bernoulli { p: 1.0 });
        net.set_channel(Some(ch));
        net.set_arq(ArqPolicy::summary(3));
        let d = net.broadcast_delivery(base, &children, 30, "p");
        assert!(!d.complete[0]);
        assert!(d.complete[1..].iter().all(|&c| c));
        assert_eq!(net.stats().node(children[0]).rx_packets, 0);
        assert_eq!(net.stats().node(children[1]).rx_packets, 1);
    }

    #[test]
    #[should_panic(expected = "not neighbors")]
    fn unicast_to_non_neighbor_panics() {
        // Two nodes far apart.
        let area = Area::new(500.0, 10.0);
        let positions = vec![Position::new(0.0, 5.0), Position::new(400.0, 5.0)];
        let mut net = NetworkBuilder::new()
            .base(BaseChoice::Node(NodeId(0)))
            .build(positions, area)
            .unwrap();
        net.unicast(NodeId(1), NodeId(0), 10, "p");
    }

    #[test]
    fn base_choices() {
        // A connected 3-node chain (positional base choices only consider
        // the largest connected component).
        let area = Area::new(100.0, 100.0);
        let positions = vec![
            Position::new(10.0, 10.0),
            Position::new(45.0, 45.0),
            Position::new(80.0, 80.0),
        ];
        let center = NetworkBuilder::new()
            .build(positions.clone(), area)
            .unwrap();
        assert_eq!(center.base(), NodeId(1));
        let corner = NetworkBuilder::new()
            .base(BaseChoice::NearestCorner)
            .build(positions.clone(), area)
            .unwrap();
        assert_eq!(corner.base(), NodeId(0));
        let explicit = NetworkBuilder::new()
            .base(BaseChoice::Node(NodeId(2)))
            .build(positions.clone(), area)
            .unwrap();
        assert_eq!(explicit.base(), NodeId(2));
        assert_eq!(
            NetworkBuilder::new()
                .base(BaseChoice::Node(NodeId(9)))
                .build(positions, area)
                .unwrap_err(),
            NetworkError::BadBase
        );
        assert_eq!(
            NetworkBuilder::new().build(vec![], area).unwrap_err(),
            NetworkError::Empty
        );
    }

    #[test]
    fn positional_base_avoids_isolated_stragglers() {
        // A big cluster plus one isolated node sitting exactly in the
        // corner: the corner base choice must land in the cluster, not on
        // the straggler.
        let area = Area::new(500.0, 500.0);
        let mut positions =
            Placement::UniformRandom { n: 120 }.generate(Area::new(200.0, 200.0), 3);
        for p in &mut positions {
            p.x += 250.0;
            p.y += 250.0;
        }
        positions.push(Position::new(1.0, 1.0)); // the isolated straggler
        let straggler = NodeId(positions.len() as u32 - 1);
        let net = NetworkBuilder::new()
            .base(BaseChoice::NearestCorner)
            .build(positions, area)
            .unwrap();
        assert_ne!(net.base(), straggler);
        assert!(net.routing().descendants(net.base()) > 100);
    }

    #[test]
    fn rebuild_after_failure_changes_tree() {
        let mut net = small_net();
        let base = net.base();
        let victim = net.routing().children(base)[0];
        let before = net.routing().parent(victim);
        assert_eq!(before, Some(base));
        net.rebuild_routing(&move |a, b| (a == victim && b == base) || (a == base && b == victim));
        assert_ne!(net.routing().parent(victim), Some(base));
    }

    #[test]
    fn fail_and_revive_round_trip() {
        let mut net = small_net();
        net.set_tracing(true);
        let base = net.base();
        let victim = *net
            .routing()
            .children(base)
            .iter()
            .max_by_key(|&&c| net.routing().descendants(c))
            .unwrap();
        let orphans = net.routing().children(victim).to_vec();
        assert!(net.is_alive(victim));
        let rep = net.fail_node(victim);
        assert!(!net.is_alive(victim));
        assert!(rep.detached.contains(&victim));
        assert_eq!(net.routing().depth(victim), None);
        for &o in &orphans {
            assert!(
                net.routing().depth(o).is_some() || rep.orphaned.contains(&o),
                "{o} neither reattached nor reported orphaned"
            );
        }
        // Repair traffic was charged as control frames under "repair".
        let by_phase = net.stats().phase(PHASE_REPAIR);
        assert!(by_phase.ack_packets > 0, "beacons must be charged");
        assert!(net.stats().total_overhead_bytes() > 0);
        // Second failure of the same node is a no-op.
        assert!(net.fail_node(victim).is_empty());
        let rep2 = net.revive_node(victim);
        assert!(net.is_alive(victim));
        assert!(rep2.reattached.contains(&victim));
        assert_eq!(net.routing().depth(victim), Some(1));
        assert!(net.revive_node(victim).is_empty());
        // Trace recorded the death and the revival.
        let kinds: Vec<&str> = net
            .trace()
            .unwrap()
            .records()
            .iter()
            .map(|r| r.kind.as_str())
            .collect();
        assert!(kinds.contains(&"death"));
        assert!(kinds.contains(&"revival"));
        assert!(kinds.contains(&"repair"));
    }

    #[test]
    fn full_rebuild_floods_more_than_localized_repair() {
        let mut local = small_net();
        let mut full = small_net();
        full.set_repair_strategy(RepairStrategy::FullRebuild);
        let base = local.base();
        let victim = local.routing().children(base)[0];
        local.fail_node(victim);
        full.fail_node(victim);
        let lb = local.stats().total_cost_bytes();
        let fb = full.stats().total_cost_bytes();
        assert!(
            lb < fb,
            "localized repair ({lb} B) must beat the global flood ({fb} B)"
        );
        // Both end with valid trees over the same live set.
        for v in local.topology().nodes() {
            assert_eq!(
                local.routing().depth(v).is_some(),
                full.routing().depth(v).is_some()
            );
        }
    }

    #[test]
    fn apply_churn_drains_boundaries_deterministically() {
        let area = Area::new(200.0, 200.0);
        let positions = Placement::UniformRandom { n: 60 }.generate(area, 2);
        let make = || {
            let mut n = NetworkBuilder::new()
                .build(positions.clone(), area)
                .unwrap();
            let victim = n.routing().children(n.base())[0];
            n.set_churn(Some(
                ChurnTimeline::new()
                    .at_boundary(1, victim, ChurnAction::Crash)
                    .at_boundary(3, victim, ChurnAction::Revive),
            ));
            (n, victim)
        };
        let (mut a, victim) = make();
        let (mut b, _) = make();
        assert!(a.has_churn());
        assert!(a.apply_churn(0).is_empty());
        assert_eq!(a.churn_boundary(), 1);
        let out = a.apply_churn(0);
        assert_eq!(out.boundary, 1);
        assert_eq!(out.crashed, vec![victim]);
        assert!(!a.is_alive(victim));
        assert!(a.apply_churn(0).is_empty());
        let out3 = a.apply_churn(0);
        assert_eq!(out3.revived, vec![victim]);
        assert!(out3.reattached.contains(&victim));
        assert!(a.is_alive(victim));
        // Determinism: the twin replays the identical sequence.
        for _ in 0..4 {
            b.apply_churn(0);
        }
        assert_eq!(a.stats().total_cost_bytes(), b.stats().total_cost_bytes());
        for v in a.topology().nodes() {
            assert_eq!(a.routing().parent(v), b.routing().parent(v));
        }
    }

    #[test]
    fn lane_roundtrip_is_bit_identical_to_direct_transfer() {
        let mut direct = small_net();
        direct.set_tracing(true);
        let base = direct.base();
        let kids: Vec<NodeId> = direct.routing().children(base).to_vec();
        direct.unicast_delivery(kids[0], base, 100, "up");
        direct.broadcast_delivery(base, &kids, 30, "down");
        direct.unicast_delivery(kids[1], base, 0, "up");
        let mut laned = small_net();
        laned.set_tracing(true);
        let mut lane = laned.open_lane();
        lane.unicast_delivery(kids[0], base, 100, "up");
        lane.broadcast_delivery(base, &kids, 30, "down");
        lane.unicast_delivery(kids[1], base, 0, "up");
        let outcome = lane.finish();
        // Nothing lands until the lane is absorbed.
        assert_eq!(laned.stats().total_tx_packets(), 0);
        assert!(laned.trace().unwrap().records().is_empty());
        laned.absorb_lane(outcome);
        for v in direct.topology().nodes() {
            assert_eq!(direct.stats().node(v), laned.stats().node(v));
        }
        assert_eq!(
            direct.trace().unwrap().records(),
            laned.trace().unwrap().records()
        );
    }

    #[test]
    fn lane_adopts_channel_state_for_links_it_drew_on() {
        // Twin A does everything directly; twin B routes the middle
        // transfer through a lane. After absorption the per-link RNG
        // streams must be positioned identically, so the *next* direct
        // transfer decides packet fates the same way on both.
        let mk = || {
            let mut net = small_net();
            net.set_channel(Some(Channel::bernoulli(0.4, 17)));
            net.set_arq(ArqPolicy::ack(20));
            net
        };
        let mut a = mk();
        let mut b = mk();
        let base = a.base();
        let child = a.routing().children(base)[0];
        a.unicast_delivery(child, base, 100, "p");
        let mut lane = b.open_lane();
        lane.unicast_delivery(child, base, 100, "p");
        let outcome = lane.finish();
        b.absorb_lane(outcome);
        assert_eq!(a.stats().node(child), b.stats().node(child));
        let da = a.unicast_delivery(child, base, 200, "q");
        let db = b.unicast_delivery(child, base, 200, "q");
        assert_eq!(da.retransmissions, db.retransmissions);
        assert_eq!(da.control_packets, db.control_packets);
        assert_eq!(a.stats().node(child), b.stats().node(child));
        assert_eq!(a.stats().node(base), b.stats().node(base));
    }

    #[test]
    fn battery_depletion_drives_crash_stop_churn() {
        let mut net = small_net();
        net.set_tracing(true);
        let base = net.base();
        let child = net.routing().children(base)[0];
        net.set_battery(Some(BatteryBank::uniform(net.len(), base, 5_000.0)));
        // Burn the child's battery with data traffic.
        let mut sent = 0;
        while !net.battery().unwrap().is_depleted(child) {
            net.unicast(child, base, 48, "p");
            sent += 1;
            assert!(sent < 100, "5 mJ cannot absorb 100 packets");
        }
        assert!(net.is_alive(child), "depletion waits for the boundary");
        let out = net.apply_churn(0);
        assert_eq!(out.depleted, vec![child]);
        assert!(out.crashed.contains(&child));
        assert!(!net.is_alive(child));
        assert_eq!(net.stats().node(child).deaths, 1);
        assert_eq!(net.stats().total_deaths(), 1);
        assert_eq!(net.battery().unwrap().death_order(), &[child]);
        let kinds: Vec<&str> = net
            .trace()
            .unwrap()
            .records()
            .iter()
            .map(|r| r.kind.as_str())
            .collect();
        assert!(kinds.contains(&"battery"));
        assert!(kinds.contains(&"death(energy)"));
        // Batteries survive stats resets, like liveness and churn state.
        net.reset_stats();
        let _ = net.take_stats();
        assert!(net.battery().unwrap().is_depleted(child));
        assert!(net.battery().unwrap().total_debited_uj() > 0.0);
    }

    #[test]
    fn undepleted_battery_is_bit_identical_to_no_battery() {
        let mut plain = small_net();
        let mut powered = small_net();
        plain.set_tracing(true);
        powered.set_tracing(true);
        let jittered = BatteryBank::with_jitter(powered.len(), powered.base(), 1e12, 0.2, 5);
        powered.set_battery(Some(jittered));
        let base = plain.base();
        let kids: Vec<NodeId> = plain.routing().children(base).to_vec();
        for net in [&mut plain, &mut powered] {
            net.unicast(kids[0], base, 100, "up");
            net.broadcast(base, &kids, 30, "down");
            net.fail_node(kids[1]);
            net.apply_churn(7);
        }
        for v in plain.topology().nodes() {
            assert_eq!(plain.stats().node(v), powered.stats().node(v));
        }
        assert_eq!(
            plain.trace().unwrap().records(),
            powered.trace().unwrap().records()
        );
        // Every charged µJ was debited, nothing more.
        let bank = powered.battery().unwrap();
        assert!(
            (bank.total_debited_uj() - powered.stats().total_energy_uj()).abs() < 1e-9,
            "debits must mirror the energy counters"
        );
    }

    #[test]
    fn power_aware_policy_rotates_parents_at_boundaries() {
        // Diamond: base 0; 1 and 2 at depth 1, equidistant from 3.
        let area = Area::new(200.0, 50.0);
        let positions = vec![
            Position::new(50.0, 25.0),
            Position::new(90.0, 5.0),
            Position::new(90.0, 45.0),
            Position::new(130.0, 25.0),
        ];
        let mut net = NetworkBuilder::new()
            .base(BaseChoice::Node(NodeId(0)))
            .build(positions, area)
            .unwrap();
        net.set_battery(Some(BatteryBank::uniform(4, NodeId(0), 1e9)));
        net.set_parent_policy(ParentPolicy::PowerAware);
        assert_eq!(net.routing().parent(NodeId(3)), Some(NodeId(1)));
        // Equal residuals: the boundary re-evaluation changes nothing.
        assert!(net.apply_churn(0).is_empty());
        // Drain node 1; at the next boundary 3 rotates its link to 2.
        net.battery_mut().unwrap().debit(NodeId(1), 5e8);
        let out = net.apply_churn(0);
        assert_eq!(out.reattached, vec![NodeId(3)]);
        assert!(out.crashed.is_empty() && out.depleted.is_empty());
        assert_eq!(net.routing().parent(NodeId(3)), Some(NodeId(2)));
        // The rotation was charged as repair control traffic.
        assert!(net.stats().phase(PHASE_REPAIR).ack_packets >= 2);
    }

    #[test]
    fn churn_state_survives_stats_reset() {
        let mut net = small_net();
        let victim = net.routing().children(net.base())[0];
        net.set_churn(Some(ChurnTimeline::new().at_boundary(
            5,
            victim,
            ChurnAction::Crash,
        )));
        net.fail_node(victim);
        net.reset_stats();
        let _ = net.take_stats();
        assert!(!net.is_alive(victim), "liveness survives stats resets");
        assert!(net.has_churn(), "the timeline survives stats resets");
        assert_eq!(net.stats().total_cost_bytes(), 0);
    }
}
