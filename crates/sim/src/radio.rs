//! Radio / MAC layer parameters.

/// PHY/MAC configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioConfig {
    /// Communication range in meters (links are bidirectional; the paper
    /// uses 50 m, "a common setting in the networking community", §VI).
    pub range: f64,
    /// Maximum application payload per packet in bytes (the paper's default
    /// metric setting is 48; §VI-A also discusses 124).
    pub max_payload: usize,
    /// Link-layer header bytes per packet — charged for energy and airtime
    /// but not against the payload budget.
    pub header_bytes: usize,
    /// Radio bit rate in bits per second (for latency accounting).
    pub bitrate: f64,
    /// Per-hop processing/queueing delay in microseconds.
    pub hop_delay_us: u64,
}

impl RadioConfig {
    /// The paper's experiment setting: 50 m range, 48-byte packets. Header
    /// and timing follow IEEE 802.15.4 at 250 kbit/s.
    pub fn paper_default() -> Self {
        Self {
            range: 50.0,
            max_payload: 48,
            header_bytes: 11,
            bitrate: 250_000.0,
            hop_delay_us: 2_000,
        }
    }

    /// The large-packet variant of §VI-A ("for a maximum packet size of
    /// 124 bytes ...").
    pub fn large_packets() -> Self {
        Self {
            max_payload: 124,
            ..Self::paper_default()
        }
    }

    /// Number of packets needed for `bytes` of application payload
    /// (0 bytes → 0 packets).
    #[inline]
    pub fn packets_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.max_payload)
    }

    /// Airtime of one packet carrying `payload` bytes, in microseconds.
    #[inline]
    pub fn airtime_us(&self, payload: usize) -> u64 {
        let bits = 8.0 * (payload + self.header_bytes) as f64;
        (bits / self.bitrate * 1e6) as u64
    }

    /// Total time to transfer `bytes` across one hop: airtime of every
    /// fragment plus the per-hop delay.
    pub fn transfer_us(&self, bytes: usize) -> u64 {
        let n = self.packets_for(bytes);
        let full = bytes / self.max_payload;
        let tail = bytes % self.max_payload;
        let mut t = full as u64 * self.airtime_us(self.max_payload);
        if tail > 0 {
            t += self.airtime_us(tail);
        }
        if n > 0 {
            t += self.hop_delay_us;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragmentation_counts() {
        let r = RadioConfig::paper_default();
        assert_eq!(r.packets_for(0), 0);
        assert_eq!(r.packets_for(1), 1);
        assert_eq!(r.packets_for(48), 1);
        assert_eq!(r.packets_for(49), 2);
        assert_eq!(r.packets_for(96), 2);
        assert_eq!(r.packets_for(97), 3);
    }

    #[test]
    fn large_packet_variant() {
        let r = RadioConfig::large_packets();
        assert_eq!(r.max_payload, 124);
        assert_eq!(r.packets_for(124), 1);
    }

    #[test]
    fn airtime_scales_with_bytes() {
        let r = RadioConfig::paper_default();
        // 48+11 bytes at 250 kbit/s = 59*32 us = 1888 us.
        assert_eq!(r.airtime_us(48), 1888);
        assert!(r.transfer_us(96) > r.transfer_us(48));
        assert_eq!(r.transfer_us(0), 0);
    }
}
