//! Hop-by-hop reliability (ARQ) policies over the lossy channel.
//!
//! When a [`crate::Channel`] is attached to a [`crate::Network`], every
//! message transfer runs under the network's [`ArqPolicy`]:
//!
//! * [`ArqPolicy::None`] — fire and forget. Lost fragments stay lost; a
//!   message missing any fragment is undecodable and dropped whole at the
//!   receiver (checksum semantics).
//! * [`ArqPolicy::AckRetransmit`] — per-fragment stop-and-wait: each
//!   receiver acknowledges each fragment with a tiny ACK frame; a missing
//!   ACK (lost data *or* lost ACK) triggers a retransmission, up to
//!   `max_retries` extra attempts per fragment.
//! * [`ArqPolicy::SummaryRepair`] — per-message end-to-end repair: the whole
//!   fragment train is sent once, then each receiver returns a summary frame
//!   (OK, or a NACK bitmap of missing fragments) and the sender retransmits
//!   exactly the missing fragments, for up to `max_rounds` repair rounds.
//!   In the tree-synchronized waves every link carries one message per
//!   phase, so this is precisely the per-phase summary-and-repair check.
//!
//! Retransmitted data fragments, ACK/summary frames and timeout stalls are
//! charged through the existing [`crate::EnergyModel`], the new
//! retransmit/ack counters of [`crate::NetworkStats`], and the
//! retransmission fields of [`crate::TraceRecord`] — the actual charging
//! loop lives in [`crate::Network::unicast_delivery`] /
//! [`crate::Network::broadcast_delivery`]. First-attempt data fragments keep
//! using the plain `tx` counters, so the paper's primary metric stays
//! loss-invariant and a perfect channel reproduces lossless runs exactly.

use crate::Time;

/// Payload bytes of a positive acknowledgement frame (sequence echo).
pub const ACK_BYTES: usize = 2;

/// Payload bytes of a summary frame for a message of `fragments` fragments:
/// a 2-byte header plus a received-fragment bitmap.
pub fn summary_bytes(fragments: usize) -> usize {
    2 + fragments.div_ceil(8)
}

/// A hop-by-hop ARQ policy (see the module docs for the three variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArqPolicy {
    /// No recovery: lost fragments stay lost.
    #[default]
    None,
    /// Per-fragment positive ACK + stop-and-wait retransmission.
    AckRetransmit {
        /// Maximum retransmissions per fragment (per receiver).
        max_retries: u32,
    },
    /// Per-message summary frames + retransmission of missing fragments.
    SummaryRepair {
        /// Maximum repair rounds per message.
        max_rounds: u32,
    },
}

impl ArqPolicy {
    /// Ack-and-retransmit with the given retry budget.
    pub fn ack(max_retries: u32) -> Self {
        ArqPolicy::AckRetransmit { max_retries }
    }

    /// Summary-and-repair with the given round budget.
    pub fn summary(max_rounds: u32) -> Self {
        ArqPolicy::SummaryRepair { max_rounds }
    }

    /// Whether the policy ever retransmits.
    pub fn repairs(&self) -> bool {
        !matches!(self, ArqPolicy::None)
    }
}

/// Outcome of one unicast message transfer over the lossy network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// Transfer latency including retransmissions, control frames and
    /// timeout stalls.
    pub time: Time,
    /// Fragments the message was split into.
    pub fragments: usize,
    /// Fragments the receiver ultimately decoded.
    pub delivered: usize,
    /// Data-fragment retransmissions the sender performed.
    pub retransmissions: u64,
    /// ACK / summary frames transmitted (by the receiver).
    pub control_packets: u64,
    /// Whether every fragment arrived — an incomplete message is
    /// undecodable and must be treated as lost by the application.
    pub complete: bool,
}

impl Delivery {
    /// A lossless delivery (the fast path without a channel).
    pub fn lossless(time: Time, fragments: usize) -> Self {
        Self {
            time,
            fragments,
            delivered: fragments,
            retransmissions: 0,
            control_packets: 0,
            complete: true,
        }
    }
}

/// Outcome of one local-broadcast transfer over the lossy network.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastDelivery {
    /// Transfer latency including repair traffic.
    pub time: Time,
    /// Fragments the message was split into.
    pub fragments: usize,
    /// Per-receiver completeness, aligned with the receiver slice passed to
    /// [`crate::Network::broadcast_delivery`].
    pub complete: Vec<bool>,
    /// Data-fragment (re)broadcasts beyond the first attempt.
    pub retransmissions: u64,
    /// ACK / summary frames transmitted by the receivers.
    pub control_packets: u64,
}

impl BroadcastDelivery {
    /// A lossless delivery to `receivers` receivers.
    pub fn lossless(time: Time, fragments: usize, receivers: usize) -> Self {
        Self {
            time,
            fragments,
            complete: vec![true; receivers],
            retransmissions: 0,
            control_packets: 0,
        }
    }

    /// Whether every receiver decoded the whole message.
    pub fn all_complete(&self) -> bool {
        self.complete.iter().all(|&c| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_sizes() {
        assert_eq!(summary_bytes(1), 3);
        assert_eq!(summary_bytes(8), 3);
        assert_eq!(summary_bytes(9), 4);
        assert_eq!(summary_bytes(0), 2);
    }

    #[test]
    fn policy_constructors() {
        assert_eq!(ArqPolicy::default(), ArqPolicy::None);
        assert!(!ArqPolicy::None.repairs());
        assert!(ArqPolicy::ack(3).repairs());
        assert_eq!(
            ArqPolicy::ack(3),
            ArqPolicy::AckRetransmit { max_retries: 3 }
        );
        assert_eq!(
            ArqPolicy::summary(4),
            ArqPolicy::SummaryRepair { max_rounds: 4 }
        );
    }

    #[test]
    fn delivery_helpers() {
        let d = Delivery::lossless(10, 3);
        assert!(d.complete);
        assert_eq!(d.delivered, 3);
        let b = BroadcastDelivery::lossless(10, 2, 4);
        assert!(b.all_complete());
        assert_eq!(b.complete.len(), 4);
    }
}
