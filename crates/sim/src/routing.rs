//! CTP-style collection tree.

use crate::Topology;
use sensjoin_relation::NodeId;

/// A collection (routing) tree rooted at the base station.
///
/// "Based on a periodic beaconing mechanism, each node maintains a parent
/// that minimizes the hop count to the base station" (§III, citing the
/// TinyOS collection-tree protocol). We emulate the converged state of that
/// protocol: a breadth-first tree where ties between candidate parents are
/// broken by link quality — proxied, as is standard for distance-dependent
/// packet-reception rates, by the shorter link — then by node id, making
/// tree construction deterministic.
///
/// Nodes that cannot reach the base station (disconnected placements, or
/// partitions after failures) have no parent and are reported by
/// [`RoutingTree::unreachable`].
///
/// # Example
///
/// ```
/// use sensjoin_sim::{RoutingTree, Topology, NodeId};
/// use sensjoin_field::{Area, Position};
///
/// // A 3-hop line: 0 - 1 - 2 - 3.
/// let positions = (0..4).map(|i| Position::new(40.0 * i as f64 + 1.0, 1.0)).collect();
/// let topo = Topology::new(positions, Area::new(200.0, 2.0), 50.0);
/// let tree = RoutingTree::build(&topo, NodeId(0));
/// assert_eq!(tree.depth(NodeId(3)), Some(3));
/// assert_eq!(tree.parent(NodeId(3)), Some(NodeId(2)));
/// assert_eq!(tree.descendants(NodeId(0)), 3);
/// ```
#[derive(Debug, Clone)]
pub struct RoutingTree {
    base: NodeId,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<u32>,
    descendants: Vec<u32>,
    max_depth: u32,
}

impl RoutingTree {
    /// Builds the tree over `topology` rooted at `base`.
    pub fn build(topology: &Topology, base: NodeId) -> Self {
        Self::build_excluding(topology, base, &|_, _| false)
    }

    /// Builds the tree while treating links for which `link_down(u, v)`
    /// returns `true` as unusable (used after failure injection; the
    /// predicate must be symmetric).
    pub fn build_excluding(
        topology: &Topology,
        base: NodeId,
        link_down: &dyn Fn(NodeId, NodeId) -> bool,
    ) -> Self {
        let n = topology.len();
        let mut depth = vec![u32::MAX; n];
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut frontier = vec![base];
        depth[base.0 as usize] = 0;
        // Level-synchronous BFS so that parent selection at depth d+1 can
        // deterministically pick the best depth-d candidate.
        while !frontier.is_empty() {
            let mut next: Vec<NodeId> = Vec::new();
            for &u in &frontier {
                for &v in topology.neighbors(u) {
                    if link_down(u, v) {
                        continue;
                    }
                    let vd = depth[v.0 as usize];
                    let cand = depth[u.0 as usize] + 1;
                    if vd > cand {
                        if vd == u32::MAX {
                            next.push(v);
                        }
                        depth[v.0 as usize] = cand;
                        parent[v.0 as usize] = Some(u);
                    } else if vd == cand {
                        // Tie-break: shorter link, then smaller id.
                        let cur = parent[v.0 as usize].expect("tie implies a parent");
                        let pv = topology.position(v);
                        let d_cur = topology.position(cur).distance(&pv);
                        let d_new = topology.position(u).distance(&pv);
                        if d_new < d_cur - 1e-12 || (d_new <= d_cur + 1e-12 && u < cur) {
                            parent[v.0 as usize] = Some(u);
                        }
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
        let mut children = vec![Vec::new(); n];
        for v in topology.nodes() {
            if let Some(p) = parent[v.0 as usize] {
                children[p.0 as usize].push(v);
            }
        }
        for c in &mut children {
            c.sort_unstable();
        }
        // Descendant counts bottom-up (order nodes by decreasing depth).
        let mut order: Vec<NodeId> = topology
            .nodes()
            .filter(|v| depth[v.0 as usize] != u32::MAX)
            .collect();
        order.sort_unstable_by_key(|v| std::cmp::Reverse(depth[v.0 as usize]));
        let mut descendants = vec![0u32; n];
        for &v in &order {
            if let Some(p) = parent[v.0 as usize] {
                descendants[p.0 as usize] += descendants[v.0 as usize] + 1;
            }
        }
        let max_depth = depth
            .iter()
            .copied()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0);
        Self {
            base,
            parent,
            children,
            depth,
            descendants,
            max_depth,
        }
    }

    /// The root of the tree.
    pub fn base(&self) -> NodeId {
        self.base
    }

    /// Parent of `node` (`None` for the base station and unreachable nodes).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.0 as usize]
    }

    /// Children of `node`, sorted by id.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.0 as usize]
    }

    /// Hop count from `node` to the base (`None` if unreachable).
    pub fn depth(&self, node: NodeId) -> Option<u32> {
        let d = self.depth[node.0 as usize];
        (d != u32::MAX).then_some(d)
    }

    /// Number of descendants of `node` in the tree.
    pub fn descendants(&self, node: NodeId) -> u32 {
        self.descendants[node.0 as usize]
    }

    /// Maximum tree depth.
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Nodes with no route to the base station.
    pub fn unreachable(&self) -> Vec<NodeId> {
        (0..self.parent.len() as u32)
            .map(NodeId)
            .filter(|&v| v != self.base && self.parent[v.0 as usize].is_none())
            .collect()
    }

    /// All reachable nodes in deepest-first order — the processing order of
    /// collection phases (leaves report before their parents).
    pub fn bottom_up_order(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = (0..self.parent.len() as u32)
            .map(NodeId)
            .filter(|&v| self.depth(v).is_some())
            .collect();
        order.sort_unstable_by_key(|&v| (std::cmp::Reverse(self.depth[v.0 as usize]), v));
        order
    }

    /// All reachable nodes in shallowest-first order — the processing order
    /// of dissemination phases.
    pub fn top_down_order(&self) -> Vec<NodeId> {
        let mut order = self.bottom_up_order();
        order.reverse();
        order
    }

    /// The path from `node` up to the base station (inclusive), or `None`
    /// if unreachable.
    pub fn path_to_base(&self, node: NodeId) -> Option<Vec<NodeId>> {
        self.depth(node)?;
        let mut path = vec![node];
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensjoin_field::{Area, Placement, Position};

    fn random_topology(n: usize, side: f64, seed: u64) -> Topology {
        let area = Area::new(side, side);
        let pos = Placement::UniformRandom { n }.generate(area, seed);
        Topology::new(pos, area, 50.0)
    }

    #[test]
    fn line_tree_depths() {
        let positions: Vec<Position> = (0..5)
            .map(|i| Position::new(i as f64 * 40.0 + 1.0, 1.0))
            .collect();
        let t = Topology::new(positions, Area::new(200.0, 2.0), 50.0);
        let tree = RoutingTree::build(&t, NodeId(0));
        for i in 0..5u32 {
            assert_eq!(tree.depth(NodeId(i)), Some(i));
        }
        assert_eq!(tree.descendants(NodeId(0)), 4);
        assert_eq!(tree.descendants(NodeId(4)), 0);
        assert_eq!(tree.path_to_base(NodeId(4)).unwrap().len(), 5);
    }

    #[test]
    fn depths_are_shortest_paths() {
        let t = random_topology(400, 500.0, 3);
        let tree = RoutingTree::build(&t, NodeId(0));
        // Verify BFS optimality: every node's depth is <= neighbor depth + 1.
        for u in t.nodes() {
            if let Some(du) = tree.depth(u) {
                for &v in t.neighbors(u) {
                    if let Some(dv) = tree.depth(v) {
                        assert!(du <= dv + 1, "{u}:{du} vs {v}:{dv}");
                    }
                }
            }
        }
    }

    #[test]
    fn parent_child_consistency() {
        let t = random_topology(300, 450.0, 8);
        let tree = RoutingTree::build(&t, NodeId(0));
        for u in t.nodes() {
            for &c in tree.children(u) {
                assert_eq!(tree.parent(c), Some(u));
                assert_eq!(tree.depth(c), tree.depth(u).map(|d| d + 1));
            }
        }
        // Descendant counts sum to reachable nodes - 1.
        let reachable = t.nodes().filter(|&v| tree.depth(v).is_some()).count();
        assert_eq!(tree.descendants(NodeId(0)) as usize, reachable - 1);
    }

    #[test]
    fn deterministic_construction() {
        let t = random_topology(300, 450.0, 8);
        let a = RoutingTree::build(&t, NodeId(0));
        let b = RoutingTree::build(&t, NodeId(0));
        for v in t.nodes() {
            assert_eq!(a.parent(v), b.parent(v));
        }
    }

    #[test]
    fn excluded_links_reroute() {
        // Line 0-1-2 plus a detour 0-3-2 with longer links.
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(30.0, 0.0),
            Position::new(60.0, 0.0),
            Position::new(30.0, 35.0),
        ];
        let t = Topology::new(positions, Area::new(100.0, 50.0), 50.0);
        let normal = RoutingTree::build(&t, NodeId(0));
        assert_eq!(normal.parent(NodeId(2)), Some(NodeId(1)));
        let broken = RoutingTree::build_excluding(&t, NodeId(0), &|a, b| {
            (a, b) == (NodeId(1), NodeId(2)) || (a, b) == (NodeId(2), NodeId(1))
        });
        assert_eq!(broken.parent(NodeId(2)), Some(NodeId(3)));
        assert_eq!(broken.depth(NodeId(2)), Some(2));
    }

    #[test]
    fn orders_are_consistent() {
        let t = random_topology(200, 400.0, 1);
        let tree = RoutingTree::build(&t, NodeId(0));
        let up = tree.bottom_up_order();
        // Every child appears before its parent.
        let pos: std::collections::HashMap<NodeId, usize> =
            up.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for v in t.nodes() {
            if let Some(p) = tree.parent(v) {
                assert!(pos[&v] < pos[&p]);
            }
        }
        assert_eq!(tree.top_down_order().first(), Some(&NodeId(0)));
    }

    #[test]
    fn unreachable_reported() {
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(10.0, 0.0),
            Position::new(900.0, 0.0),
        ];
        let t = Topology::new(positions, Area::new(1000.0, 1.0), 50.0);
        let tree = RoutingTree::build(&t, NodeId(0));
        assert_eq!(tree.unreachable(), vec![NodeId(2)]);
    }
}
