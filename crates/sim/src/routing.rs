//! CTP-style collection tree.

use crate::Topology;
use sensjoin_relation::NodeId;
use std::collections::BTreeMap;

/// Flat-array sentinel for "no parent" (the base station and unreachable
/// nodes).
const NO_PARENT: u32 = u32::MAX;

/// How a node picks among equally-shallow candidate parents.
///
/// Depth is never traded away: both policies keep every node at its
/// BFS-minimal hop count, which is what preserves the repair machinery's
/// rebuild-identical-depths guarantee (and with it the executors'
/// liveness-projected exactness). The policies differ only in which
/// depth-minimal neighbor carries the node's subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParentPolicy {
    /// CTP's converged state: ties broken by link quality (shorter link),
    /// then node id. Deterministic and battery-oblivious. The default.
    #[default]
    MinHop,
    /// Power-aware parent selection per the PAR recipe: among the
    /// depth-minimal candidates, pick the one with the most residual
    /// battery energy (ties by shorter link, then id). Re-evaluated at
    /// every churn/repair boundary via [`RoutingTree::reselect_parents`],
    /// so load rotates away from nearly-drained relays instead of pinning
    /// the bottleneck subtree on one node until it dies. A no-op unless a
    /// [`crate::BatteryBank`] is attached to supply residuals.
    PowerAware,
}

/// [`ParentPolicy::PowerAware`]'s rotation dead band: a sibling only adopts
/// a subtree when its residual energy exceeds the current parent's by this
/// factor. See [`RoutingTree::reselect_parents`] for why the dead band is
/// load-bearing and not a tuning nicety.
pub const POWER_AWARE_HYSTERESIS: f64 = 1.25;

/// A collection (routing) tree rooted at the base station.
///
/// "Based on a periodic beaconing mechanism, each node maintains a parent
/// that minimizes the hop count to the base station" (§III, citing the
/// TinyOS collection-tree protocol). We emulate the converged state of that
/// protocol: a breadth-first tree where ties between candidate parents are
/// broken by link quality — proxied, as is standard for distance-dependent
/// packet-reception rates, by the shorter link — then by node id, making
/// tree construction deterministic.
///
/// All per-node state is struct-of-arrays: `parent` and `depth` are flat
/// `u32` arrays (sentinel `u32::MAX`), children live in one CSR buffer
/// (offsets + one flat id array), and the bottom-up processing order is a
/// cached *subtree-major post-order* — each node's subtree occupies a
/// contiguous block, child subtrees appear in ascending child-id order, and
/// the root comes last. Rebuilds and repairs reuse every buffer instead of
/// reallocating, so a million-node tree is a handful of flat allocations for
/// its whole lifetime.
///
/// Nodes that cannot reach the base station (disconnected placements, or
/// partitions after failures) have no parent and are reported by
/// [`RoutingTree::unreachable`].
///
/// # Example
///
/// ```
/// use sensjoin_sim::{RoutingTree, Topology, NodeId};
/// use sensjoin_field::{Area, Position};
///
/// // A 3-hop line: 0 - 1 - 2 - 3.
/// let positions = (0..4).map(|i| Position::new(40.0 * i as f64 + 1.0, 1.0)).collect();
/// let topo = Topology::new(positions, Area::new(200.0, 2.0), 50.0);
/// let tree = RoutingTree::build(&topo, NodeId(0));
/// assert_eq!(tree.depth(NodeId(3)), Some(3));
/// assert_eq!(tree.parent(NodeId(3)), Some(NodeId(2)));
/// assert_eq!(tree.descendants(NodeId(0)), 3);
/// ```
#[derive(Debug, Clone)]
pub struct RoutingTree {
    base: NodeId,
    /// Parent id per node; [`NO_PARENT`] for the base and unreachable nodes.
    parent: Vec<u32>,
    /// Hop count per node; `u32::MAX` for unreachable nodes.
    depth: Vec<u32>,
    descendants: Vec<u32>,
    /// CSR offsets: node `v`'s children are
    /// `child_buf[child_off[v]..child_off[v + 1]]`, ascending by id.
    child_off: Vec<u32>,
    child_buf: Vec<NodeId>,
    /// Cached subtree-major post-order over reachable nodes: children before
    /// parents, each subtree contiguous, child subtrees ascending, root last.
    post_order: Vec<NodeId>,
    max_depth: u32,
    /// Epoch-marked repair scratch: `mark[v] == epoch` means `v` belongs to
    /// the floating set of the repair in progress. Bumping `epoch` clears the
    /// whole array in O(1), so a localized repair never pays an O(n) reset.
    mark: Vec<u32>,
    epoch: u32,
    /// Reusable DFS stack.
    scratch: Vec<NodeId>,
}

/// What [`RoutingTree::repair`] did.
#[derive(Debug, Clone, Default)]
pub struct RepairReport {
    /// Dead nodes that were removed from the tree.
    pub detached: Vec<NodeId>,
    /// Live nodes that selected a new parent (orphan-subtree members and
    /// previously-unreachable nodes that found a route).
    pub reattached: Vec<NodeId>,
    /// Live nodes left without any route to the base station.
    pub orphaned: Vec<NodeId>,
}

impl RepairReport {
    /// Whether the repair changed nothing.
    pub fn is_empty(&self) -> bool {
        self.detached.is_empty() && self.reattached.is_empty() && self.orphaned.is_empty()
    }
}

impl RoutingTree {
    /// Builds the tree over `topology` rooted at `base`.
    pub fn build(topology: &Topology, base: NodeId) -> Self {
        Self::build_excluding(topology, base, &|_, _| false)
    }

    /// Builds the tree while treating links for which `link_down(u, v)`
    /// returns `true` as unusable (used after failure injection; the
    /// predicate must be symmetric).
    pub fn build_excluding(
        topology: &Topology,
        base: NodeId,
        link_down: &dyn Fn(NodeId, NodeId) -> bool,
    ) -> Self {
        let n = topology.len();
        let mut tree = Self {
            base,
            parent: vec![NO_PARENT; n],
            depth: vec![u32::MAX; n],
            descendants: vec![0; n],
            child_off: vec![0; n + 1],
            child_buf: Vec::new(),
            post_order: Vec::new(),
            max_depth: 0,
            mark: vec![0; n],
            epoch: 0,
            scratch: Vec::new(),
        };
        tree.rebuild_excluding(topology, link_down);
        tree
    }

    /// Rebuilds the tree in place over the same topology, reusing every
    /// flat buffer (no per-node reallocation).
    pub fn rebuild(&mut self, topology: &Topology) {
        self.rebuild_excluding(topology, &|_, _| false);
    }

    /// [`RoutingTree::rebuild`] with a `link_down` exclusion predicate —
    /// the in-place, buffer-reusing equivalent of
    /// [`RoutingTree::build_excluding`].
    pub fn rebuild_excluding(
        &mut self,
        topology: &Topology,
        link_down: &dyn Fn(NodeId, NodeId) -> bool,
    ) {
        let n = topology.len();
        assert_eq!(self.parent.len(), n, "rebuild must keep the node count");
        self.depth.fill(u32::MAX);
        self.parent.fill(NO_PARENT);
        self.depth[self.base.0 as usize] = 0;
        let mut frontier = std::mem::take(&mut self.scratch);
        frontier.clear();
        frontier.push(self.base);
        let mut next: Vec<NodeId> = Vec::new();
        // Level-synchronous BFS so that parent selection at depth d+1 can
        // deterministically pick the best depth-d candidate.
        while !frontier.is_empty() {
            next.clear();
            for &u in &frontier {
                for &v in topology.neighbors(u) {
                    if link_down(u, v) {
                        continue;
                    }
                    let i = v.0 as usize;
                    let vd = self.depth[i];
                    let cand = self.depth[u.0 as usize] + 1;
                    if vd > cand {
                        if vd == u32::MAX {
                            next.push(v);
                        }
                        self.depth[i] = cand;
                        self.parent[i] = u.0;
                    } else if vd == cand {
                        // Tie-break: shorter link, then smaller id.
                        let cur = NodeId(self.parent[i]);
                        let pv = topology.position(v);
                        let d_cur = topology.position(cur).distance(&pv);
                        let d_new = topology.position(u).distance(&pv);
                        if d_new < d_cur - 1e-12 || (d_new <= d_cur + 1e-12 && u < cur) {
                            self.parent[i] = u.0;
                        }
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            std::mem::swap(&mut frontier, &mut next);
        }
        self.scratch = frontier;
        self.rebuild_derived();
    }

    /// Localized self-healing after liveness changes: dead nodes
    /// (`!alive[v]`) are detached, and every live node whose route to the
    /// base broke — orphan-subtree members below a dead node, plus nodes
    /// that had no route at all (e.g. just revived) — re-selects a parent
    /// among live neighbors that still have a route. The attached region
    /// keeps its routes untouched; only the floating set moves.
    ///
    /// This wrapper derives the change epicenters with one O(n) scan (any
    /// node whose liveness disagrees with its routed state); when the caller
    /// knows which nodes flipped, [`RoutingTree::repair_localized`] skips
    /// even that scan.
    ///
    /// Parent re-selection replays [`RoutingTree::build_excluding`]'s
    /// level-synchronous relaxation (same shorter-link-then-smaller-id
    /// tie-break) restricted to the floating set, seeded with the attached
    /// nodes bordering it at their existing depths. Under pure node
    /// *removals* the attached depths are still BFS-minimal (removals only
    /// lengthen shortest paths, and the surviving parent chain attains the
    /// old distance), so the repaired tree assigns every node the exact
    /// depth a full rebuild would — the repaired tree spans exactly the
    /// base-reachable live set at rebuild-identical depths. (Attached nodes
    /// adjacent to a reattached subtree may keep a different — equally
    /// shallow — parent than a rebuild would pick; that is the point of
    /// locality.) After *revivals* the attached region does not re-optimize
    /// through the revived bridge, so only set-coverage parity is
    /// guaranteed.
    ///
    /// Returns which nodes were detached, reattached and left orphaned.
    pub fn repair(&mut self, topology: &Topology, alive: &[bool]) -> RepairReport {
        let n = topology.len();
        assert_eq!(alive.len(), n, "one liveness flag per node");
        let mut epicenters = Vec::new();
        for v in topology.nodes() {
            let routed = self.depth[v.0 as usize] != u32::MAX;
            // Dead-but-routed = crash epicenter; live-but-routeless =
            // revival or an orphan worth re-examining.
            if alive[v.0 as usize] != routed {
                epicenters.push(v);
            }
        }
        self.repair_localized(topology, alive, &epicenters)
    }

    /// [`RoutingTree::repair`] given the *epicenters* — the nodes whose
    /// liveness flipped since the last repair. Work is proportional to the
    /// affected region (floating subtrees, orphan neighborhoods and their
    /// attached boundary), never the full node array: floating-set discovery
    /// walks only the epicenters' subtrees / routeless neighborhoods, and
    /// the epoch-marked scratch avoids O(n) clears.
    ///
    /// The epicenter list must cover every node whose liveness changed since
    /// the previous repair; missing one leaves the tree referencing a dead
    /// node or ignoring a revived one.
    pub fn repair_localized(
        &mut self,
        topology: &Topology,
        alive: &[bool],
        epicenters: &[NodeId],
    ) -> RepairReport {
        let n = topology.len();
        assert_eq!(alive.len(), n, "one liveness flag per node");
        assert!(alive[self.base.0 as usize], "the base station never fails");
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.mark.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        let mut report = RepairReport::default();
        // The floating set: live nodes that must re-select a parent, each
        // with whether it had a route before (only lost routes count as
        // newly orphaned).
        let mut floating: Vec<(NodeId, bool)> = Vec::new();
        let mut stack = std::mem::take(&mut self.scratch);
        stack.clear();
        for &e in epicenters {
            let i = e.0 as usize;
            if self.mark[i] == epoch {
                continue; // already swept up by an earlier epicenter
            }
            if !alive[i] {
                // Crash: the whole subtree under `e` floats. Traverse
                // through dead members — a dead node inside the subtree cuts
                // the nodes below it loose as well.
                if self.depth[i] == u32::MAX {
                    continue; // already detached
                }
                self.mark[i] = epoch;
                stack.push(e);
                while let Some(u) = stack.pop() {
                    let ui = u.0 as usize;
                    let had = self.depth[ui] != u32::MAX;
                    self.depth[ui] = u32::MAX;
                    self.parent[ui] = NO_PARENT;
                    if alive[ui] {
                        floating.push((u, had));
                    } else if had {
                        report.detached.push(u);
                    }
                    let s = self.child_off[ui] as usize;
                    let t = self.child_off[ui + 1] as usize;
                    for &c in &self.child_buf[s..t] {
                        if self.mark[c.0 as usize] != epoch {
                            self.mark[c.0 as usize] = epoch;
                            stack.push(c);
                        }
                    }
                }
            } else {
                // Revival (or orphan re-examination): flood the routeless
                // live region around `e` — exactly the nodes whose
                // attachability the revival may have changed.
                if self.depth[i] != u32::MAX {
                    continue; // already attached
                }
                self.mark[i] = epoch;
                stack.push(e);
                while let Some(u) = stack.pop() {
                    floating.push((u, false));
                    for &v in topology.neighbors(u) {
                        let vi = v.0 as usize;
                        if self.mark[vi] != epoch && alive[vi] && self.depth[vi] == u32::MAX {
                            self.mark[vi] = epoch;
                            stack.push(v);
                        }
                    }
                }
            }
        }
        self.scratch = stack;
        if floating.is_empty() && report.detached.is_empty() {
            return report; // nothing moved; derived state is still valid
        }
        // Multi-source level-synchronous BFS relaxing only floating nodes,
        // with the identical fold order and tie-break as build_excluding.
        // Seeding only the attached *boundary* (attached neighbors of
        // floating nodes, at their current depths) is equivalent to seeding
        // the whole attached region: a non-boundary attached node has no
        // floating neighbor, so it relaxes nothing.
        let mut by_depth: BTreeMap<u32, Vec<NodeId>> = Default::default();
        for &(f, _) in &floating {
            for &u in topology.neighbors(f) {
                let ui = u.0 as usize;
                if alive[ui] && self.depth[ui] != u32::MAX {
                    by_depth.entry(self.depth[ui]).or_default().push(u);
                }
            }
        }
        while let Some((d, mut level)) = by_depth.pop_first() {
            level.sort_unstable();
            level.dedup();
            for &u in &level {
                for &v in topology.neighbors(u) {
                    let i = v.0 as usize;
                    if self.mark[i] != epoch || !alive[i] {
                        continue;
                    }
                    let vd = self.depth[i];
                    let cand = d + 1;
                    if vd > cand {
                        debug_assert_eq!(vd, u32::MAX, "levels are processed in order");
                        self.depth[i] = cand;
                        self.parent[i] = u.0;
                        by_depth.entry(cand).or_default().push(v);
                    } else if vd == cand {
                        // Tie-break: shorter link, then smaller id.
                        let cur = NodeId(self.parent[i]);
                        let pv = topology.position(v);
                        let d_cur = topology.position(cur).distance(&pv);
                        let d_new = topology.position(u).distance(&pv);
                        if d_new < d_cur - 1e-12 || (d_new <= d_cur + 1e-12 && u < cur) {
                            self.parent[i] = u.0;
                        }
                    }
                }
            }
        }
        for &(f, had) in &floating {
            if self.depth[f.0 as usize] == u32::MAX {
                // Nodes that never had a route (isolated stragglers) are
                // not *newly* orphaned — report only lost routes.
                if had {
                    report.orphaned.push(f);
                }
            } else {
                report.reattached.push(f);
            }
        }
        report.detached.sort_unstable();
        report.reattached.sort_unstable();
        report.orphaned.sort_unstable();
        self.rebuild_derived();
        report
    }

    /// [`ParentPolicy::PowerAware`]'s boundary re-evaluation: every routed
    /// live node re-picks its parent among *all* live depth-(d−1) routed
    /// neighbors — the same candidate set BFS tie-breaking chose from —
    /// ranked by *residual energy per unit of routed load*,
    /// `residual[u] / (descendants(u) + 1)`, ties broken by shorter link
    /// then smaller id. A relay's drain rate is proportional to the subtree
    /// it forwards for, so this score is (up to the shared per-round
    /// constant) the candidate's rounds-to-exhaustion: ranking by it moves
    /// subtrees to the parent that will *survive longest after adopting
    /// them*, not merely the one with the fullest battery right now.
    /// Loads are tracked intra-boundary — a candidate that just adopted a
    /// subtree earlier in this pass scores lower for the next mover, and a
    /// parent that shed one scores higher — so movers fan out across the
    /// sibling ring instead of dogpiling onto the single richest node.
    /// Depths are untouched, so the tree stays BFS-minimal and every
    /// repair invariant holds; only which sibling carries each subtree
    /// changes.
    ///
    /// A rotation only happens when the best candidate's post-adoption
    /// score exceeds the current parent's by the
    /// [`POWER_AWARE_HYSTERESIS`] factor. Without the dead band, every
    /// boundary re-ranks on last round's noise: subtrees ping-pong between
    /// near-equal siblings and the rotation beacons (a broadcast charges
    /// every neighbor's receiver) drain the network faster than min-hop
    /// ever would.
    ///
    /// Returns the nodes whose parent changed (their new ancestors hold no
    /// synopses about them — executors must reconcile them exactly like
    /// repair reattachments). Derived state is rebuilt iff anything moved.
    pub fn reselect_parents(
        &mut self,
        topology: &Topology,
        alive: &[bool],
        residual: &[f64],
    ) -> Vec<NodeId> {
        let n = topology.len();
        assert_eq!(alive.len(), n, "one liveness flag per node");
        assert_eq!(residual.len(), n, "one residual per node");
        let mut changed = Vec::new();
        // Subtree weight adopted (+) or shed (−) per candidate within this
        // pass, so later movers see the loads earlier moves already created.
        let mut delta = vec![0i64; n];
        for v in topology.nodes() {
            let i = v.0 as usize;
            let d = self.depth[i];
            if v == self.base || d == u32::MAX || !alive[i] {
                continue;
            }
            let cur = NodeId(self.parent[i]);
            let pv = topology.position(v);
            // The load `v` brings: its whole subtree plus itself.
            let w = self.descendants[i] as i64 + 1;
            // Rounds-to-exhaustion proxy for keeping the status quo (the
            // current parent's load already includes `w`) vs. adopting
            // (candidates are charged `w` on top of their present load).
            let load_of = |u: NodeId, extra: i64| -> f64 {
                let ui = u.0 as usize;
                (self.descendants[ui] as i64 + 1 + delta[ui] + extra).max(1) as f64
            };
            let cur_score = residual[cur.0 as usize] / load_of(cur, 0);
            let mut best = cur;
            let mut best_score = cur_score;
            for &u in topology.neighbors(v) {
                let ui = u.0 as usize;
                if u == cur || !alive[ui] || self.depth[ui] != d - 1 {
                    continue;
                }
                let score = residual[ui] / load_of(u, w);
                let better = match score.total_cmp(&best_score) {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Less => false,
                    std::cmp::Ordering::Equal => {
                        // Tie-break: shorter link, then smaller id.
                        let d_best = topology.position(best).distance(&pv);
                        let d_new = topology.position(u).distance(&pv);
                        d_new < d_best - 1e-12 || (d_new <= d_best + 1e-12 && u < best)
                    }
                };
                if better {
                    best = u;
                    best_score = score;
                }
            }
            if best != cur && best_score > cur_score * POWER_AWARE_HYSTERESIS {
                self.parent[i] = best.0;
                delta[best.0 as usize] += w;
                delta[cur.0 as usize] -= w;
                changed.push(v);
            }
        }
        if !changed.is_empty() {
            self.rebuild_derived();
        }
        changed
    }

    /// Exports the defining arrays of the tree — parent and hop count per
    /// node ([`NO_PARENT`]/`u32::MAX` for the base and unreachable nodes) —
    /// the checkpoint/restore surface. Everything else the tree holds is
    /// derived from these two arrays.
    pub fn export_tree(&self) -> (Vec<u32>, Vec<u32>) {
        (self.parent.clone(), self.depth.clone())
    }

    /// Restores a tree previously exported with
    /// [`RoutingTree::export_tree`], rebuilding the derived structures
    /// (children CSR, post-order, descendant counts, maximum depth). The
    /// arrays must describe the same node count.
    pub fn import_tree(&mut self, parent: Vec<u32>, depth: Vec<u32>) {
        assert_eq!(
            parent.len(),
            self.parent.len(),
            "routing snapshot node count mismatch"
        );
        assert_eq!(depth.len(), parent.len(), "parent/depth length mismatch");
        self.parent = parent;
        self.depth = depth;
        self.rebuild_derived();
    }

    /// Rebuilds the children CSR, the cached post-order, descendant counts
    /// and the maximum depth from the parent/depth arrays — allocation-free
    /// O(n) passes over the reused flat buffers.
    fn rebuild_derived(&mut self) {
        let n = self.parent.len();
        // Children CSR by counting sort: count into child_off[p + 1],
        // prefix-sum, fill using child_off[p] as a cursor, then shift right
        // to restore the row starts. Filling in ascending child id keeps
        // every row sorted without a sort pass.
        self.child_off.fill(0);
        for i in 0..n {
            let p = self.parent[i];
            if p != NO_PARENT {
                self.child_off[p as usize + 1] += 1;
            }
        }
        for c in 0..n {
            self.child_off[c + 1] += self.child_off[c];
        }
        let total = self.child_off[n] as usize;
        self.child_buf.resize(total, NodeId(0));
        for i in 0..n {
            let p = self.parent[i] as usize;
            if p != NO_PARENT as usize {
                self.child_buf[self.child_off[p] as usize] = NodeId(i as u32);
                self.child_off[p] += 1;
            }
        }
        self.child_off.copy_within(0..n, 1);
        self.child_off[0] = 0;
        // Subtree-major post-order: pop-append with children pushed in
        // ascending id order yields root-first with child subtrees
        // descending; reversing gives children-before-parents with child
        // subtrees ascending and the root last.
        self.post_order.clear();
        self.post_order.reserve(total + 1);
        let mut stack = std::mem::take(&mut self.scratch);
        stack.clear();
        stack.push(self.base);
        while let Some(u) = stack.pop() {
            self.post_order.push(u);
            let s = self.child_off[u.0 as usize] as usize;
            let t = self.child_off[u.0 as usize + 1] as usize;
            stack.extend_from_slice(&self.child_buf[s..t]);
        }
        self.scratch = stack;
        self.post_order.reverse();
        // Children precede parents in post-order, so one forward pass folds
        // descendant counts bottom-up; max depth rides along.
        self.descendants.fill(0);
        self.max_depth = 0;
        for idx in 0..self.post_order.len() {
            let v = self.post_order[idx];
            let i = v.0 as usize;
            self.max_depth = self.max_depth.max(self.depth[i]);
            let p = self.parent[i];
            if p != NO_PARENT {
                let sub = self.descendants[i] + 1;
                self.descendants[p as usize] += sub;
            }
        }
    }

    /// The root of the tree.
    pub fn base(&self) -> NodeId {
        self.base
    }

    /// Parent of `node` (`None` for the base station and unreachable nodes).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        let p = self.parent[node.0 as usize];
        (p != NO_PARENT).then_some(NodeId(p))
    }

    /// Children of `node`, sorted by id.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        let i = node.0 as usize;
        &self.child_buf[self.child_off[i] as usize..self.child_off[i + 1] as usize]
    }

    /// Hop count from `node` to the base (`None` if unreachable).
    pub fn depth(&self, node: NodeId) -> Option<u32> {
        let d = self.depth[node.0 as usize];
        (d != u32::MAX).then_some(d)
    }

    /// Number of descendants of `node` in the tree.
    pub fn descendants(&self, node: NodeId) -> u32 {
        self.descendants[node.0 as usize]
    }

    /// Maximum tree depth.
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Nodes with no route to the base station.
    pub fn unreachable(&self) -> Vec<NodeId> {
        (0..self.parent.len() as u32)
            .map(NodeId)
            .filter(|&v| v != self.base && self.parent[v.0 as usize] == NO_PARENT)
            .collect()
    }

    /// All reachable nodes in *subtree-major post-order* — the processing
    /// order of collection phases. Children appear before their parents,
    /// every subtree occupies one contiguous block (child subtrees in
    /// ascending child-id order), and the root comes last. The contiguity is
    /// what lets wave execution hand each root-child subtree to a different
    /// thread as one slice.
    pub fn bottom_up_order(&self) -> &[NodeId] {
        &self.post_order
    }

    /// All reachable nodes in *subtree-major pre-order* — the processing
    /// order of dissemination phases: parents before children, each subtree
    /// contiguous, child subtrees in ascending child-id order, root first.
    pub fn top_down_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.post_order.len());
        let mut stack = vec![self.base];
        while let Some(u) = stack.pop() {
            order.push(u);
            let s = self.child_off[u.0 as usize] as usize;
            let t = self.child_off[u.0 as usize + 1] as usize;
            // Push descending so the smallest child pops first.
            stack.extend(self.child_buf[s..t].iter().rev().copied());
        }
        order
    }

    /// The path from `node` up to the base station (inclusive), or `None`
    /// if unreachable.
    pub fn path_to_base(&self, node: NodeId) -> Option<Vec<NodeId>> {
        self.depth(node)?;
        let mut path = vec![node];
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensjoin_field::{Area, Placement, Position};

    fn random_topology(n: usize, side: f64, seed: u64) -> Topology {
        let area = Area::new(side, side);
        let pos = Placement::UniformRandom { n }.generate(area, seed);
        Topology::new(pos, area, 50.0)
    }

    #[test]
    fn line_tree_depths() {
        let positions: Vec<Position> = (0..5)
            .map(|i| Position::new(i as f64 * 40.0 + 1.0, 1.0))
            .collect();
        let t = Topology::new(positions, Area::new(200.0, 2.0), 50.0);
        let tree = RoutingTree::build(&t, NodeId(0));
        for i in 0..5u32 {
            assert_eq!(tree.depth(NodeId(i)), Some(i));
        }
        assert_eq!(tree.descendants(NodeId(0)), 4);
        assert_eq!(tree.descendants(NodeId(4)), 0);
        assert_eq!(tree.path_to_base(NodeId(4)).unwrap().len(), 5);
    }

    #[test]
    fn depths_are_shortest_paths() {
        let t = random_topology(400, 500.0, 3);
        let tree = RoutingTree::build(&t, NodeId(0));
        // Verify BFS optimality: every node's depth is <= neighbor depth + 1.
        for u in t.nodes() {
            if let Some(du) = tree.depth(u) {
                for &v in t.neighbors(u) {
                    if let Some(dv) = tree.depth(v) {
                        assert!(du <= dv + 1, "{u}:{du} vs {v}:{dv}");
                    }
                }
            }
        }
    }

    #[test]
    fn parent_child_consistency() {
        let t = random_topology(300, 450.0, 8);
        let tree = RoutingTree::build(&t, NodeId(0));
        for u in t.nodes() {
            for &c in tree.children(u) {
                assert_eq!(tree.parent(c), Some(u));
                assert_eq!(tree.depth(c), tree.depth(u).map(|d| d + 1));
            }
        }
        // Descendant counts sum to reachable nodes - 1.
        let reachable = t.nodes().filter(|&v| tree.depth(v).is_some()).count();
        assert_eq!(tree.descendants(NodeId(0)) as usize, reachable - 1);
    }

    #[test]
    fn deterministic_construction() {
        let t = random_topology(300, 450.0, 8);
        let a = RoutingTree::build(&t, NodeId(0));
        let b = RoutingTree::build(&t, NodeId(0));
        for v in t.nodes() {
            assert_eq!(a.parent(v), b.parent(v));
        }
    }

    #[test]
    fn rebuild_in_place_matches_fresh_build() {
        let t = random_topology(250, 420.0, 11);
        let fresh = RoutingTree::build(&t, NodeId(0));
        let mut reused = RoutingTree::build_excluding(&t, NodeId(0), &|a, b| {
            // Start from a different tree so the rebuild has real work.
            a == NodeId(1) || b == NodeId(1)
        });
        reused.rebuild(&t);
        for v in t.nodes() {
            assert_eq!(reused.parent(v), fresh.parent(v), "{v}");
            assert_eq!(reused.depth(v), fresh.depth(v), "{v}");
            assert_eq!(reused.descendants(v), fresh.descendants(v), "{v}");
            assert_eq!(reused.children(v), fresh.children(v), "{v}");
        }
        assert_eq!(reused.bottom_up_order(), fresh.bottom_up_order());
        assert_eq!(reused.max_depth(), fresh.max_depth());
    }

    #[test]
    fn excluded_links_reroute() {
        // Line 0-1-2 plus a detour 0-3-2 with longer links.
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(30.0, 0.0),
            Position::new(60.0, 0.0),
            Position::new(30.0, 35.0),
        ];
        let t = Topology::new(positions, Area::new(100.0, 50.0), 50.0);
        let normal = RoutingTree::build(&t, NodeId(0));
        assert_eq!(normal.parent(NodeId(2)), Some(NodeId(1)));
        let broken = RoutingTree::build_excluding(&t, NodeId(0), &|a, b| {
            (a, b) == (NodeId(1), NodeId(2)) || (a, b) == (NodeId(2), NodeId(1))
        });
        assert_eq!(broken.parent(NodeId(2)), Some(NodeId(3)));
        assert_eq!(broken.depth(NodeId(2)), Some(2));
    }

    #[test]
    fn orders_are_consistent() {
        let t = random_topology(200, 400.0, 1);
        let tree = RoutingTree::build(&t, NodeId(0));
        let up = tree.bottom_up_order();
        // Every child appears before its parent.
        let pos: std::collections::HashMap<NodeId, usize> =
            up.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for v in t.nodes() {
            if let Some(p) = tree.parent(v) {
                assert!(pos[&v] < pos[&p]);
            }
        }
        assert_eq!(tree.top_down_order().first(), Some(&NodeId(0)));
    }

    #[test]
    fn post_order_is_subtree_major() {
        let t = random_topology(200, 400.0, 7);
        let tree = RoutingTree::build(&t, NodeId(0));
        let up = tree.bottom_up_order();
        // Root last; every subtree is a contiguous block ending at its root,
        // of exactly descendants + 1 nodes; root-child blocks ascend by id.
        assert_eq!(up.last(), Some(&tree.base()));
        let pos: std::collections::HashMap<NodeId, usize> =
            up.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for &v in up {
            let end = pos[&v];
            let size = tree.descendants(v) as usize + 1;
            assert!(end + 1 >= size, "{v}: block runs off the front");
            let block = &up[end + 1 - size..=end];
            // Every block member's path to the root of the block stays in
            // the block — i.e. the block is exactly subtree(v).
            for &m in block {
                let mut cur = m;
                while cur != v {
                    cur = tree.parent(cur).expect("block member below v");
                }
            }
        }
        // Pre-order mirrors it: root first, children ascending.
        let down = tree.top_down_order();
        assert_eq!(down.len(), up.len());
        let base_children = tree.children(tree.base());
        if !base_children.is_empty() {
            assert_eq!(down[1], base_children[0]);
        }
    }

    /// The repaired tree must be a valid tree over the live reachable set:
    /// live parents, consistent depths, base-anchored.
    fn assert_valid_tree(tree: &RoutingTree, t: &Topology, alive: &[bool]) {
        for v in t.nodes() {
            let i = v.0 as usize;
            if let Some(p) = tree.parent(v) {
                assert!(alive[i], "{v} is dead but has a parent");
                assert!(alive[p.0 as usize], "{v}'s parent {p} is dead");
                assert!(t.neighbors(v).contains(&p), "{v} -> {p} not a link");
                assert_eq!(tree.depth(v), tree.depth(p).map(|d| d + 1));
            } else if v != tree.base() {
                assert_eq!(tree.depth(v), None);
            }
        }
    }

    #[test]
    fn repair_after_removals_matches_rebuild_depths() {
        // Satellite invariant, deterministic instance: killing arbitrary
        // nodes and repairing locally spans exactly the base-reachable live
        // set, at the exact depths a full rebuild assigns.
        let t = random_topology(300, 450.0, 8);
        let base = NodeId(0);
        for kill_seed in 0..6u64 {
            let mut alive = vec![true; t.len()];
            for k in 0..12 {
                let victim = ((kill_seed * 131 + k * 37) % (t.len() as u64 - 1)) + 1;
                alive[victim as usize] = false;
            }
            let mut repaired = RoutingTree::build(&t, base);
            let rep = repaired.repair(&t, &alive);
            let rebuilt = RoutingTree::build_excluding(&t, base, &|a, b| {
                !alive[a.0 as usize] || !alive[b.0 as usize]
            });
            assert_valid_tree(&repaired, &t, &alive);
            for v in t.nodes() {
                assert_eq!(
                    repaired.depth(v),
                    rebuilt.depth(v),
                    "seed {kill_seed}: depth of {v} diverges"
                );
            }
            // The spanned set is exactly the base-reachable live set.
            let reach = t.reachable_from_alive(base, &alive);
            for v in t.nodes() {
                assert_eq!(
                    repaired.depth(v).is_some(),
                    alive[v.0 as usize] && reach[v.0 as usize],
                    "seed {kill_seed}: coverage of {v}"
                );
            }
            for &d in &rep.detached {
                assert!(!alive[d.0 as usize]);
            }
            for &r in &rep.reattached {
                assert!(repaired.depth(r).is_some());
            }
            for &o in &rep.orphaned {
                assert!(alive[o.0 as usize] && repaired.depth(o).is_none());
            }
        }
    }

    #[test]
    fn localized_epicenters_match_full_scan_repair() {
        // repair_localized fed exactly the flipped nodes must agree with the
        // wrapper's O(n) epicenter scan.
        let t = random_topology(300, 450.0, 13);
        let base = NodeId(0);
        let mut by_scan = RoutingTree::build(&t, base);
        let mut by_epicenter = by_scan.clone();
        let mut alive = vec![true; t.len()];
        let victims = [NodeId(17), NodeId(42), NodeId(108), NodeId(211)];
        for &v in &victims {
            alive[v.0 as usize] = false;
        }
        let ra = by_scan.repair(&t, &alive);
        let rb = by_epicenter.repair_localized(&t, &alive, &victims);
        assert_eq!(ra.detached, rb.detached);
        assert_eq!(ra.reattached, rb.reattached);
        assert_eq!(ra.orphaned, rb.orphaned);
        for v in t.nodes() {
            assert_eq!(by_scan.parent(v), by_epicenter.parent(v), "{v}");
            assert_eq!(by_scan.depth(v), by_epicenter.depth(v), "{v}");
        }
        // Now revive two of them; epicenters are just the revived pair.
        for &v in &victims[..2] {
            alive[v.0 as usize] = true;
        }
        let ra = by_scan.repair(&t, &alive);
        let rb = by_epicenter.repair_localized(&t, &alive, &victims[..2]);
        assert_eq!(ra.reattached, rb.reattached);
        assert_eq!(ra.orphaned, rb.orphaned);
        for v in t.nodes() {
            assert_eq!(by_scan.parent(v), by_epicenter.parent(v), "{v}");
            assert_eq!(by_scan.depth(v), by_epicenter.depth(v), "{v}");
        }
    }

    mod repair_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Satellite proptest: after arbitrary node removals, localized
            /// repair spans exactly the base-station-reachable live set, at
            /// rebuild-identical depths, on random topologies.
            #[test]
            fn repair_spans_reachable_live_set(
                topo_seed in 0u64..50,
                n in 60usize..160,
                kills in prop::collection::vec(1u32..160, 0..25),
            ) {
                let t = random_topology(n, 380.0, topo_seed);
                let base = NodeId(0);
                let mut alive = vec![true; n];
                for k in kills {
                    let v = (k as usize) % n;
                    if v != base.0 as usize {
                        alive[v] = false;
                    }
                }
                let mut repaired = RoutingTree::build(&t, base);
                repaired.repair(&t, &alive);
                let rebuilt = RoutingTree::build_excluding(&t, base, &|a, b| {
                    !alive[a.0 as usize] || !alive[b.0 as usize]
                });
                assert_valid_tree(&repaired, &t, &alive);
                let reach = t.reachable_from_alive(base, &alive);
                for v in t.nodes() {
                    prop_assert_eq!(repaired.depth(v), rebuilt.depth(v), "depth of {}", v);
                    prop_assert_eq!(
                        repaired.depth(v).is_some(),
                        alive[v.0 as usize] && reach[v.0 as usize],
                        "coverage of {}", v
                    );
                }
            }
        }
    }

    #[test]
    fn repair_reattaches_revived_nodes() {
        let t = random_topology(200, 400.0, 5);
        let base = NodeId(0);
        let mut tree = RoutingTree::build(&t, base);
        let mut alive = vec![true; t.len()];
        // Kill a depth-1 node with a subtree, then revive it.
        let victim = *tree
            .children(base)
            .iter()
            .max_by_key(|&&c| tree.descendants(c))
            .unwrap();
        alive[victim.0 as usize] = false;
        let rep = tree.repair(&t, &alive);
        assert!(rep.detached.contains(&victim));
        assert_eq!(tree.depth(victim), None);
        assert_valid_tree(&tree, &t, &alive);
        alive[victim.0 as usize] = true;
        let rep2 = tree.repair(&t, &alive);
        assert!(rep2.reattached.contains(&victim));
        assert_eq!(
            tree.depth(victim),
            Some(1),
            "a base neighbor rejoins at depth 1"
        );
        assert_valid_tree(&tree, &t, &alive);
        // Set parity with a clean rebuild after the full crash+revive cycle.
        let rebuilt = RoutingTree::build(&t, base);
        for v in t.nodes() {
            assert_eq!(tree.depth(v).is_some(), rebuilt.depth(v).is_some());
        }
    }

    #[test]
    fn repair_without_changes_is_identity() {
        let t = random_topology(150, 350.0, 2);
        let mut tree = RoutingTree::build(&t, NodeId(0));
        let reference = tree.clone();
        let rep = tree.repair(&t, &vec![true; t.len()]);
        assert!(rep.is_empty());
        for v in t.nodes() {
            assert_eq!(tree.parent(v), reference.parent(v));
            assert_eq!(tree.depth(v), reference.depth(v));
            assert_eq!(tree.descendants(v), reference.descendants(v));
        }
    }

    #[test]
    fn power_aware_reselection_rotates_by_residual() {
        // Diamond: base 0; 1 and 2 both at depth 1, equidistant from 3.
        let positions = vec![
            Position::new(50.0, 25.0),
            Position::new(90.0, 5.0),
            Position::new(90.0, 45.0),
            Position::new(130.0, 25.0),
        ];
        let t = Topology::new(positions, Area::new(200.0, 50.0), 50.0);
        let mut tree = RoutingTree::build(&t, NodeId(0));
        // Min-hop tie-break (equal links) lands on the smaller id.
        assert_eq!(tree.parent(NodeId(3)), Some(NodeId(1)));
        let alive = vec![true; 4];
        // Equal residuals: the min-hop choice is already the best.
        let same = tree.reselect_parents(&t, &alive, &[f64::INFINITY, 50.0, 50.0, 50.0]);
        assert!(same.is_empty());
        // Node 2 has more battery left: 3 rotates its subtree over.
        let moved = tree.reselect_parents(&t, &alive, &[f64::INFINITY, 10.0, 100.0, 50.0]);
        assert_eq!(moved, vec![NodeId(3)]);
        assert_eq!(tree.parent(NodeId(3)), Some(NodeId(2)));
        assert_eq!(tree.depth(NodeId(3)), Some(2), "depths never change");
        assert_eq!(tree.children(NodeId(2)), &[NodeId(3)]);
        assert_eq!(tree.children(NodeId(1)), &[] as &[NodeId]);
        assert_eq!(tree.descendants(NodeId(2)), 1);
        assert_valid_tree(&tree, &t, &alive);
        // And back, once 1 recovers the lead.
        let back = tree.reselect_parents(&t, &alive, &[f64::INFINITY, 100.0, 10.0, 50.0]);
        assert_eq!(back, vec![NodeId(3)]);
        assert_eq!(tree.parent(NodeId(3)), Some(NodeId(1)));
    }

    #[test]
    fn unreachable_reported() {
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(10.0, 0.0),
            Position::new(900.0, 0.0),
        ];
        let t = Topology::new(positions, Area::new(1000.0, 1.0), 50.0);
        let tree = RoutingTree::build(&t, NodeId(0));
        assert_eq!(tree.unreachable(), vec![NodeId(2)]);
    }
}
