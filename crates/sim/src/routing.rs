//! CTP-style collection tree.

use crate::Topology;
use sensjoin_relation::NodeId;

/// A collection (routing) tree rooted at the base station.
///
/// "Based on a periodic beaconing mechanism, each node maintains a parent
/// that minimizes the hop count to the base station" (§III, citing the
/// TinyOS collection-tree protocol). We emulate the converged state of that
/// protocol: a breadth-first tree where ties between candidate parents are
/// broken by link quality — proxied, as is standard for distance-dependent
/// packet-reception rates, by the shorter link — then by node id, making
/// tree construction deterministic.
///
/// Nodes that cannot reach the base station (disconnected placements, or
/// partitions after failures) have no parent and are reported by
/// [`RoutingTree::unreachable`].
///
/// # Example
///
/// ```
/// use sensjoin_sim::{RoutingTree, Topology, NodeId};
/// use sensjoin_field::{Area, Position};
///
/// // A 3-hop line: 0 - 1 - 2 - 3.
/// let positions = (0..4).map(|i| Position::new(40.0 * i as f64 + 1.0, 1.0)).collect();
/// let topo = Topology::new(positions, Area::new(200.0, 2.0), 50.0);
/// let tree = RoutingTree::build(&topo, NodeId(0));
/// assert_eq!(tree.depth(NodeId(3)), Some(3));
/// assert_eq!(tree.parent(NodeId(3)), Some(NodeId(2)));
/// assert_eq!(tree.descendants(NodeId(0)), 3);
/// ```
#[derive(Debug, Clone)]
pub struct RoutingTree {
    base: NodeId,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<u32>,
    descendants: Vec<u32>,
    max_depth: u32,
}

/// What [`RoutingTree::repair`] did.
#[derive(Debug, Clone, Default)]
pub struct RepairReport {
    /// Dead nodes that were removed from the tree.
    pub detached: Vec<NodeId>,
    /// Live nodes that selected a new parent (orphan-subtree members and
    /// previously-unreachable nodes that found a route).
    pub reattached: Vec<NodeId>,
    /// Live nodes left without any route to the base station.
    pub orphaned: Vec<NodeId>,
}

impl RepairReport {
    /// Whether the repair changed nothing.
    pub fn is_empty(&self) -> bool {
        self.detached.is_empty() && self.reattached.is_empty() && self.orphaned.is_empty()
    }
}

impl RoutingTree {
    /// Builds the tree over `topology` rooted at `base`.
    pub fn build(topology: &Topology, base: NodeId) -> Self {
        Self::build_excluding(topology, base, &|_, _| false)
    }

    /// Builds the tree while treating links for which `link_down(u, v)`
    /// returns `true` as unusable (used after failure injection; the
    /// predicate must be symmetric).
    pub fn build_excluding(
        topology: &Topology,
        base: NodeId,
        link_down: &dyn Fn(NodeId, NodeId) -> bool,
    ) -> Self {
        let n = topology.len();
        let mut depth = vec![u32::MAX; n];
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut frontier = vec![base];
        depth[base.0 as usize] = 0;
        // Level-synchronous BFS so that parent selection at depth d+1 can
        // deterministically pick the best depth-d candidate.
        while !frontier.is_empty() {
            let mut next: Vec<NodeId> = Vec::new();
            for &u in &frontier {
                for &v in topology.neighbors(u) {
                    if link_down(u, v) {
                        continue;
                    }
                    let vd = depth[v.0 as usize];
                    let cand = depth[u.0 as usize] + 1;
                    if vd > cand {
                        if vd == u32::MAX {
                            next.push(v);
                        }
                        depth[v.0 as usize] = cand;
                        parent[v.0 as usize] = Some(u);
                    } else if vd == cand {
                        // Tie-break: shorter link, then smaller id.
                        let cur = parent[v.0 as usize].expect("tie implies a parent");
                        let pv = topology.position(v);
                        let d_cur = topology.position(cur).distance(&pv);
                        let d_new = topology.position(u).distance(&pv);
                        if d_new < d_cur - 1e-12 || (d_new <= d_cur + 1e-12 && u < cur) {
                            parent[v.0 as usize] = Some(u);
                        }
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
        let mut children = vec![Vec::new(); n];
        for v in topology.nodes() {
            if let Some(p) = parent[v.0 as usize] {
                children[p.0 as usize].push(v);
            }
        }
        for c in &mut children {
            c.sort_unstable();
        }
        // Descendant counts bottom-up (order nodes by decreasing depth).
        let mut order: Vec<NodeId> = topology
            .nodes()
            .filter(|v| depth[v.0 as usize] != u32::MAX)
            .collect();
        order.sort_unstable_by_key(|v| std::cmp::Reverse(depth[v.0 as usize]));
        let mut descendants = vec![0u32; n];
        for &v in &order {
            if let Some(p) = parent[v.0 as usize] {
                descendants[p.0 as usize] += descendants[v.0 as usize] + 1;
            }
        }
        let max_depth = depth
            .iter()
            .copied()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0);
        Self {
            base,
            parent,
            children,
            depth,
            descendants,
            max_depth,
        }
    }

    /// Localized self-healing after liveness changes: dead nodes
    /// (`!alive[v]`) are detached, and every live node whose route to the
    /// base broke — orphan-subtree members below a dead node, plus nodes
    /// that had no route at all (e.g. just revived) — re-selects a parent
    /// among live neighbors that still have a route. The attached region
    /// keeps its routes untouched; only the floating set moves.
    ///
    /// Parent re-selection replays [`RoutingTree::build_excluding`]'s
    /// level-synchronous relaxation (same shorter-link-then-smaller-id
    /// tie-break) restricted to the floating set, seeded with the attached
    /// nodes at their existing depths. Under pure node *removals* the
    /// attached depths are still BFS-minimal (removals only lengthen
    /// shortest paths, and the surviving parent chain attains the old
    /// distance), so the repaired tree assigns every node the exact depth a
    /// full rebuild would — the repaired tree spans exactly the
    /// base-reachable live set at rebuild-identical depths. (Attached nodes
    /// adjacent to a reattached subtree may keep a different — equally
    /// shallow — parent than a rebuild would pick; that is the point of
    /// locality.) After *revivals* the attached region does not re-optimize
    /// through the revived bridge, so only set-coverage parity is
    /// guaranteed.
    ///
    /// Returns which nodes were detached, reattached and left orphaned.
    pub fn repair(&mut self, topology: &Topology, alive: &[bool]) -> RepairReport {
        let n = topology.len();
        assert_eq!(alive.len(), n, "one liveness flag per node");
        assert!(alive[self.base.0 as usize], "the base station never fails");
        // Attached region: nodes whose whole parent chain is alive.
        let mut attached = vec![false; n];
        attached[self.base.0 as usize] = true;
        let mut stack = vec![self.base];
        while let Some(u) = stack.pop() {
            for &c in &self.children[u.0 as usize] {
                if alive[c.0 as usize] {
                    attached[c.0 as usize] = true;
                    stack.push(c);
                }
                // A dead child cuts its whole subtree loose.
            }
        }
        let mut report = RepairReport::default();
        let mut floating = vec![false; n];
        let mut had_route = vec![false; n];
        for v in topology.nodes() {
            let i = v.0 as usize;
            if attached[i] {
                continue;
            }
            had_route[i] = self.depth[i] != u32::MAX;
            self.parent[i] = None;
            self.depth[i] = u32::MAX;
            if alive[i] {
                floating[i] = true;
            } else if had_route[i] {
                report.detached.push(v);
            }
        }
        // Multi-source level-synchronous BFS from the attached region,
        // relaxing only floating nodes — identical fold order and tie-break
        // as build_excluding.
        let mut by_depth: std::collections::BTreeMap<u32, Vec<NodeId>> = Default::default();
        for v in topology.nodes() {
            if attached[v.0 as usize] {
                by_depth
                    .entry(self.depth[v.0 as usize])
                    .or_default()
                    .push(v);
            }
        }
        while let Some((d, mut level)) = by_depth.pop_first() {
            level.sort_unstable();
            level.dedup();
            for &u in &level {
                for &v in topology.neighbors(u) {
                    let i = v.0 as usize;
                    if !floating[i] {
                        continue;
                    }
                    let vd = self.depth[i];
                    let cand = d + 1;
                    if vd > cand {
                        debug_assert_eq!(vd, u32::MAX, "levels are processed in order");
                        self.depth[i] = cand;
                        self.parent[i] = Some(u);
                        by_depth.entry(cand).or_default().push(v);
                    } else if vd == cand {
                        // Tie-break: shorter link, then smaller id.
                        let cur = self.parent[i].expect("tie implies a parent");
                        let pv = topology.position(v);
                        let d_cur = topology.position(cur).distance(&pv);
                        let d_new = topology.position(u).distance(&pv);
                        if d_new < d_cur - 1e-12 || (d_new <= d_cur + 1e-12 && u < cur) {
                            self.parent[i] = Some(u);
                        }
                    }
                }
            }
        }
        for v in topology.nodes() {
            let i = v.0 as usize;
            if floating[i] {
                if self.depth[i] == u32::MAX {
                    // Nodes that never had a route (isolated stragglers) are
                    // not *newly* orphaned — report only lost routes.
                    if had_route[i] {
                        report.orphaned.push(v);
                    }
                } else {
                    report.reattached.push(v);
                }
            }
        }
        self.recompute_derived(topology);
        report
    }

    /// Rebuilds children lists, descendant counts and the maximum depth from
    /// the parent/depth arrays.
    fn recompute_derived(&mut self, topology: &Topology) {
        for c in &mut self.children {
            c.clear();
        }
        for v in topology.nodes() {
            if let Some(p) = self.parent[v.0 as usize] {
                self.children[p.0 as usize].push(v);
            }
        }
        for c in &mut self.children {
            c.sort_unstable();
        }
        let mut order: Vec<NodeId> = topology
            .nodes()
            .filter(|v| self.depth[v.0 as usize] != u32::MAX)
            .collect();
        order.sort_unstable_by_key(|v| std::cmp::Reverse(self.depth[v.0 as usize]));
        self.descendants = vec![0; topology.len()];
        for &v in &order {
            if let Some(p) = self.parent[v.0 as usize] {
                self.descendants[p.0 as usize] += self.descendants[v.0 as usize] + 1;
            }
        }
        self.max_depth = self
            .depth
            .iter()
            .copied()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0);
    }

    /// The root of the tree.
    pub fn base(&self) -> NodeId {
        self.base
    }

    /// Parent of `node` (`None` for the base station and unreachable nodes).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.0 as usize]
    }

    /// Children of `node`, sorted by id.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.0 as usize]
    }

    /// Hop count from `node` to the base (`None` if unreachable).
    pub fn depth(&self, node: NodeId) -> Option<u32> {
        let d = self.depth[node.0 as usize];
        (d != u32::MAX).then_some(d)
    }

    /// Number of descendants of `node` in the tree.
    pub fn descendants(&self, node: NodeId) -> u32 {
        self.descendants[node.0 as usize]
    }

    /// Maximum tree depth.
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Nodes with no route to the base station.
    pub fn unreachable(&self) -> Vec<NodeId> {
        (0..self.parent.len() as u32)
            .map(NodeId)
            .filter(|&v| v != self.base && self.parent[v.0 as usize].is_none())
            .collect()
    }

    /// All reachable nodes in deepest-first order — the processing order of
    /// collection phases (leaves report before their parents).
    pub fn bottom_up_order(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = (0..self.parent.len() as u32)
            .map(NodeId)
            .filter(|&v| self.depth(v).is_some())
            .collect();
        order.sort_unstable_by_key(|&v| (std::cmp::Reverse(self.depth[v.0 as usize]), v));
        order
    }

    /// All reachable nodes in shallowest-first order — the processing order
    /// of dissemination phases.
    pub fn top_down_order(&self) -> Vec<NodeId> {
        let mut order = self.bottom_up_order();
        order.reverse();
        order
    }

    /// The path from `node` up to the base station (inclusive), or `None`
    /// if unreachable.
    pub fn path_to_base(&self, node: NodeId) -> Option<Vec<NodeId>> {
        self.depth(node)?;
        let mut path = vec![node];
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensjoin_field::{Area, Placement, Position};

    fn random_topology(n: usize, side: f64, seed: u64) -> Topology {
        let area = Area::new(side, side);
        let pos = Placement::UniformRandom { n }.generate(area, seed);
        Topology::new(pos, area, 50.0)
    }

    #[test]
    fn line_tree_depths() {
        let positions: Vec<Position> = (0..5)
            .map(|i| Position::new(i as f64 * 40.0 + 1.0, 1.0))
            .collect();
        let t = Topology::new(positions, Area::new(200.0, 2.0), 50.0);
        let tree = RoutingTree::build(&t, NodeId(0));
        for i in 0..5u32 {
            assert_eq!(tree.depth(NodeId(i)), Some(i));
        }
        assert_eq!(tree.descendants(NodeId(0)), 4);
        assert_eq!(tree.descendants(NodeId(4)), 0);
        assert_eq!(tree.path_to_base(NodeId(4)).unwrap().len(), 5);
    }

    #[test]
    fn depths_are_shortest_paths() {
        let t = random_topology(400, 500.0, 3);
        let tree = RoutingTree::build(&t, NodeId(0));
        // Verify BFS optimality: every node's depth is <= neighbor depth + 1.
        for u in t.nodes() {
            if let Some(du) = tree.depth(u) {
                for &v in t.neighbors(u) {
                    if let Some(dv) = tree.depth(v) {
                        assert!(du <= dv + 1, "{u}:{du} vs {v}:{dv}");
                    }
                }
            }
        }
    }

    #[test]
    fn parent_child_consistency() {
        let t = random_topology(300, 450.0, 8);
        let tree = RoutingTree::build(&t, NodeId(0));
        for u in t.nodes() {
            for &c in tree.children(u) {
                assert_eq!(tree.parent(c), Some(u));
                assert_eq!(tree.depth(c), tree.depth(u).map(|d| d + 1));
            }
        }
        // Descendant counts sum to reachable nodes - 1.
        let reachable = t.nodes().filter(|&v| tree.depth(v).is_some()).count();
        assert_eq!(tree.descendants(NodeId(0)) as usize, reachable - 1);
    }

    #[test]
    fn deterministic_construction() {
        let t = random_topology(300, 450.0, 8);
        let a = RoutingTree::build(&t, NodeId(0));
        let b = RoutingTree::build(&t, NodeId(0));
        for v in t.nodes() {
            assert_eq!(a.parent(v), b.parent(v));
        }
    }

    #[test]
    fn excluded_links_reroute() {
        // Line 0-1-2 plus a detour 0-3-2 with longer links.
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(30.0, 0.0),
            Position::new(60.0, 0.0),
            Position::new(30.0, 35.0),
        ];
        let t = Topology::new(positions, Area::new(100.0, 50.0), 50.0);
        let normal = RoutingTree::build(&t, NodeId(0));
        assert_eq!(normal.parent(NodeId(2)), Some(NodeId(1)));
        let broken = RoutingTree::build_excluding(&t, NodeId(0), &|a, b| {
            (a, b) == (NodeId(1), NodeId(2)) || (a, b) == (NodeId(2), NodeId(1))
        });
        assert_eq!(broken.parent(NodeId(2)), Some(NodeId(3)));
        assert_eq!(broken.depth(NodeId(2)), Some(2));
    }

    #[test]
    fn orders_are_consistent() {
        let t = random_topology(200, 400.0, 1);
        let tree = RoutingTree::build(&t, NodeId(0));
        let up = tree.bottom_up_order();
        // Every child appears before its parent.
        let pos: std::collections::HashMap<NodeId, usize> =
            up.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for v in t.nodes() {
            if let Some(p) = tree.parent(v) {
                assert!(pos[&v] < pos[&p]);
            }
        }
        assert_eq!(tree.top_down_order().first(), Some(&NodeId(0)));
    }

    /// The repaired tree must be a valid tree over the live reachable set:
    /// live parents, consistent depths, base-anchored.
    fn assert_valid_tree(tree: &RoutingTree, t: &Topology, alive: &[bool]) {
        for v in t.nodes() {
            let i = v.0 as usize;
            if let Some(p) = tree.parent(v) {
                assert!(alive[i], "{v} is dead but has a parent");
                assert!(alive[p.0 as usize], "{v}'s parent {p} is dead");
                assert!(t.neighbors(v).contains(&p), "{v} -> {p} not a link");
                assert_eq!(tree.depth(v), tree.depth(p).map(|d| d + 1));
            } else if v != tree.base() {
                assert_eq!(tree.depth(v), None);
            }
        }
    }

    #[test]
    fn repair_after_removals_matches_rebuild_depths() {
        // Satellite invariant, deterministic instance: killing arbitrary
        // nodes and repairing locally spans exactly the base-reachable live
        // set, at the exact depths a full rebuild assigns.
        let t = random_topology(300, 450.0, 8);
        let base = NodeId(0);
        for kill_seed in 0..6u64 {
            let mut alive = vec![true; t.len()];
            for k in 0..12 {
                let victim = ((kill_seed * 131 + k * 37) % (t.len() as u64 - 1)) + 1;
                alive[victim as usize] = false;
            }
            let mut repaired = RoutingTree::build(&t, base);
            let rep = repaired.repair(&t, &alive);
            let rebuilt = RoutingTree::build_excluding(&t, base, &|a, b| {
                !alive[a.0 as usize] || !alive[b.0 as usize]
            });
            assert_valid_tree(&repaired, &t, &alive);
            for v in t.nodes() {
                assert_eq!(
                    repaired.depth(v),
                    rebuilt.depth(v),
                    "seed {kill_seed}: depth of {v} diverges"
                );
            }
            // The spanned set is exactly the base-reachable live set.
            let reach = t.reachable_from_alive(base, &alive);
            for v in t.nodes() {
                assert_eq!(
                    repaired.depth(v).is_some(),
                    alive[v.0 as usize] && reach[v.0 as usize],
                    "seed {kill_seed}: coverage of {v}"
                );
            }
            for &d in &rep.detached {
                assert!(!alive[d.0 as usize]);
            }
            for &r in &rep.reattached {
                assert!(repaired.depth(r).is_some());
            }
            for &o in &rep.orphaned {
                assert!(alive[o.0 as usize] && repaired.depth(o).is_none());
            }
        }
    }

    mod repair_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Satellite proptest: after arbitrary node removals, localized
            /// repair spans exactly the base-station-reachable live set, at
            /// rebuild-identical depths, on random topologies.
            #[test]
            fn repair_spans_reachable_live_set(
                topo_seed in 0u64..50,
                n in 60usize..160,
                kills in prop::collection::vec(1u32..160, 0..25),
            ) {
                let t = random_topology(n, 380.0, topo_seed);
                let base = NodeId(0);
                let mut alive = vec![true; n];
                for k in kills {
                    let v = (k as usize) % n;
                    if v != base.0 as usize {
                        alive[v] = false;
                    }
                }
                let mut repaired = RoutingTree::build(&t, base);
                repaired.repair(&t, &alive);
                let rebuilt = RoutingTree::build_excluding(&t, base, &|a, b| {
                    !alive[a.0 as usize] || !alive[b.0 as usize]
                });
                assert_valid_tree(&repaired, &t, &alive);
                let reach = t.reachable_from_alive(base, &alive);
                for v in t.nodes() {
                    prop_assert_eq!(repaired.depth(v), rebuilt.depth(v), "depth of {}", v);
                    prop_assert_eq!(
                        repaired.depth(v).is_some(),
                        alive[v.0 as usize] && reach[v.0 as usize],
                        "coverage of {}", v
                    );
                }
            }
        }
    }

    #[test]
    fn repair_reattaches_revived_nodes() {
        let t = random_topology(200, 400.0, 5);
        let base = NodeId(0);
        let mut tree = RoutingTree::build(&t, base);
        let mut alive = vec![true; t.len()];
        // Kill a depth-1 node with a subtree, then revive it.
        let victim = *tree
            .children(base)
            .iter()
            .max_by_key(|&&c| tree.descendants(c))
            .unwrap();
        alive[victim.0 as usize] = false;
        let rep = tree.repair(&t, &alive);
        assert!(rep.detached.contains(&victim));
        assert_eq!(tree.depth(victim), None);
        assert_valid_tree(&tree, &t, &alive);
        alive[victim.0 as usize] = true;
        let rep2 = tree.repair(&t, &alive);
        assert!(rep2.reattached.contains(&victim));
        assert_eq!(
            tree.depth(victim),
            Some(1),
            "a base neighbor rejoins at depth 1"
        );
        assert_valid_tree(&tree, &t, &alive);
        // Set parity with a clean rebuild after the full crash+revive cycle.
        let rebuilt = RoutingTree::build(&t, base);
        for v in t.nodes() {
            assert_eq!(tree.depth(v).is_some(), rebuilt.depth(v).is_some());
        }
    }

    #[test]
    fn repair_without_changes_is_identity() {
        let t = random_topology(150, 350.0, 2);
        let mut tree = RoutingTree::build(&t, NodeId(0));
        let reference = tree.clone();
        let rep = tree.repair(&t, &vec![true; t.len()]);
        assert!(rep.is_empty());
        for v in t.nodes() {
            assert_eq!(tree.parent(v), reference.parent(v));
            assert_eq!(tree.depth(v), reference.depth(v));
            assert_eq!(tree.descendants(v), reference.descendants(v));
        }
    }

    #[test]
    fn unreachable_reported() {
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(10.0, 0.0),
            Position::new(900.0, 0.0),
        ];
        let t = Topology::new(positions, Area::new(1000.0, 1.0), 50.0);
        let tree = RoutingTree::build(&t, NodeId(0));
        assert_eq!(tree.unreachable(), vec![NodeId(2)]);
    }
}
