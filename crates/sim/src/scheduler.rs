//! A minimal discrete-event scheduler.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in microseconds.
pub type Time = u64;

/// A discrete-event queue: events of type `E` ordered by time, FIFO within
/// equal timestamps (insertion order is preserved via a sequence number, so
/// protocol state machines behave deterministically).
///
/// # Example
///
/// ```
/// use sensjoin_sim::Scheduler;
///
/// let mut sched = Scheduler::new();
/// sched.schedule(30_000_000, "sample round 1");
/// sched.schedule(0, "query dissemination");
/// assert_eq!(sched.pop(), Some((0, "query dissemination")));
/// sched.schedule_in(5_000, "phase 2");
/// assert_eq!(sched.pop(), Some((5_000, "phase 2")));
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler<E> {
    heap: BinaryHeap<Reverse<(Time, u64, EventBox<E>)>>,
    seq: u64,
    now: Time,
}

/// Wrapper that opts the payload out of ordering comparisons.
#[derive(Debug, Clone)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` lies in the past — discrete-event causality violation.
    pub fn schedule(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past ({at} < {})",
            self.now
        );
        self.heap.push(Reverse((at, self.seq, EventBox(event))));
        self.seq += 1;
    }

    /// Schedules `event` after a delay relative to now.
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let Reverse((t, _, EventBox(e))) = self.heap.pop()?;
        self.now = t;
        Some((t, e))
    }

    /// The next event's timestamp and payload, without popping it or
    /// advancing the clock. Lets drivers coalesce everything due at one
    /// instant (e.g. apply control events before a periodic tick sharing
    /// their timestamp).
    pub fn peek(&self) -> Option<(Time, &E)> {
        self.heap.peek().map(|Reverse((t, _, EventBox(e)))| (*t, e))
    }

    /// Whether any events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

impl<E: Clone> Scheduler<E> {
    /// Pending events as `(time, payload)` pairs in pop order (time-ordered,
    /// FIFO within equal timestamps) — the checkpoint/restore surface.
    /// Re-scheduling the returned list *in order* into a fresh scheduler
    /// reproduces the pop sequence exactly (fresh sequence numbers are
    /// assigned in list order, preserving the FIFO tie-break).
    pub fn pending(&self) -> Vec<(Time, E)> {
        let mut entries: Vec<(Time, u64, E)> = self
            .heap
            .iter()
            .map(|Reverse((t, s, EventBox(e)))| (*t, *s, e.clone()))
            .collect();
        entries.sort_by_key(|&(t, s, _)| (t, s));
        entries.into_iter().map(|(t, _, e)| (t, e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ordering() {
        let mut s = Scheduler::new();
        s.schedule(30, "c");
        s.schedule(10, "a");
        s.schedule(20, "b");
        assert_eq!(s.pop(), Some((10, "a")));
        assert_eq!(s.now(), 10);
        assert_eq!(s.pop(), Some((20, "b")));
        assert_eq!(s.pop(), Some((30, "c")));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn fifo_within_timestamp() {
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.schedule(5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut s = Scheduler::new();
        s.schedule(10, "a");
        s.schedule(20, "b");
        assert_eq!(s.peek(), Some((10, &"a")));
        assert_eq!(s.now(), 0);
        assert_eq!(s.pop(), Some((10, "a")));
        assert_eq!(s.peek(), Some((20, &"b")));
        s.pop();
        assert_eq!(s.peek(), None);
    }

    #[test]
    fn relative_scheduling() {
        let mut s = Scheduler::new();
        s.schedule(100, ());
        s.pop();
        s.schedule_in(50, ());
        assert_eq!(s.pop(), Some((150, ())));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_event_panics() {
        let mut s = Scheduler::new();
        s.schedule(100, ());
        s.pop();
        s.schedule(50, ());
    }
}
