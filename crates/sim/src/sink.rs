//! Where transfer charging lands.
//!
//! [`crate::Network`]'s single charge point is generic over a [`StatSink`]:
//! the serial path writes straight into the network's counters and trace
//! ([`DirectSink`]), while parallel wave execution gives each worker thread
//! a [`StatLedger`] that *records* the exact sequence of charge calls. After
//! the threads join, the ledgers are replayed in deterministic (serial
//! traversal) order through the very same [`crate::NetworkStats`] methods —
//! the replayed call sequence is verbatim what the serial path would have
//! issued, so every byte/packet counter, every floating-point energy
//! accumulation (same addition order) and every trace row (same sequence
//! numbers) is bit-identical to serial execution.

use crate::{BatteryBank, NetworkStats, Trace};
use sensjoin_relation::NodeId;

/// The charge-call surface of a transfer: statistics records plus trace
/// rows. Mirrors [`NetworkStats`]' recording methods one-to-one.
pub(crate) trait StatSink {
    fn record_tx(&mut self, node: NodeId, payload: usize, uj: f64, phase: &str);
    fn record_rx(&mut self, node: NodeId, payload: usize, uj: f64, phase: &str);
    fn record_retx(&mut self, node: NodeId, payload: usize, uj: f64, phase: &str);
    fn record_ack(&mut self, node: NodeId, payload: usize, uj: f64, phase: &str);
    fn record_energy(&mut self, node: NodeId, uj: f64, phase: &str);
    fn record_loss(&mut self, node: NodeId, phase: &str);
    /// Whether trace rows should be materialized at all (gates the
    /// receiver-list allocation on the hot path).
    fn wants_trace(&self) -> bool;
    fn trace_lossless(
        &mut self,
        phase: &str,
        from: NodeId,
        to: &[NodeId],
        bytes: usize,
        packets: usize,
    );
    #[allow(clippy::too_many_arguments)]
    fn trace_delivery(
        &mut self,
        phase: &str,
        from: NodeId,
        to: &[NodeId],
        bytes: usize,
        packets: usize,
        retransmissions: u64,
        acked: bool,
    );
}

/// The serial sink: charges land immediately on the network's counters —
/// and, when a battery bank is attached, every µJ is debited from the
/// charged node's battery at the same call site.
pub(crate) struct DirectSink<'a> {
    pub stats: &'a mut NetworkStats,
    pub trace: Option<&'a mut Trace>,
    pub battery: Option<&'a mut BatteryBank>,
}

impl DirectSink<'_> {
    #[inline]
    fn debit(&mut self, node: NodeId, uj: f64) {
        if let Some(b) = &mut self.battery {
            b.debit(node, uj);
        }
    }
}

impl StatSink for DirectSink<'_> {
    fn record_tx(&mut self, node: NodeId, payload: usize, uj: f64, phase: &str) {
        self.stats.record_tx(node, payload, uj, phase);
        self.debit(node, uj);
    }
    fn record_rx(&mut self, node: NodeId, payload: usize, uj: f64, phase: &str) {
        self.stats.record_rx(node, payload, uj, phase);
        self.debit(node, uj);
    }
    fn record_retx(&mut self, node: NodeId, payload: usize, uj: f64, phase: &str) {
        self.stats.record_retx(node, payload, uj, phase);
        self.debit(node, uj);
    }
    fn record_ack(&mut self, node: NodeId, payload: usize, uj: f64, phase: &str) {
        self.stats.record_ack(node, payload, uj, phase);
        self.debit(node, uj);
    }
    fn record_energy(&mut self, node: NodeId, uj: f64, phase: &str) {
        self.stats.record_energy(node, uj, phase);
        self.debit(node, uj);
    }
    fn record_loss(&mut self, node: NodeId, phase: &str) {
        self.stats.record_loss(node, phase);
    }
    fn wants_trace(&self) -> bool {
        self.trace.is_some()
    }
    fn trace_lossless(
        &mut self,
        phase: &str,
        from: NodeId,
        to: &[NodeId],
        bytes: usize,
        packets: usize,
    ) {
        if let Some(t) = &mut self.trace {
            t.push(phase, from, to.to_vec(), bytes, packets);
        }
    }
    fn trace_delivery(
        &mut self,
        phase: &str,
        from: NodeId,
        to: &[NodeId],
        bytes: usize,
        packets: usize,
        retransmissions: u64,
        acked: bool,
    ) {
        if let Some(t) = &mut self.trace {
            t.push_delivery(
                phase,
                from,
                to.to_vec(),
                bytes,
                packets,
                retransmissions,
                acked,
            );
        }
    }
}

/// One recorded charge call. Phase labels are interned per ledger (a wave
/// charges under a single phase, so the table holds one or two entries).
#[derive(Debug, Clone)]
enum StatEvent {
    Tx {
        node: NodeId,
        payload: usize,
        uj: f64,
        phase: u16,
    },
    Rx {
        node: NodeId,
        payload: usize,
        uj: f64,
        phase: u16,
    },
    Retx {
        node: NodeId,
        payload: usize,
        uj: f64,
        phase: u16,
    },
    Ack {
        node: NodeId,
        payload: usize,
        uj: f64,
        phase: u16,
    },
    Energy {
        node: NodeId,
        uj: f64,
        phase: u16,
    },
    Loss {
        node: NodeId,
        phase: u16,
    },
    TraceLossless {
        phase: u16,
        from: NodeId,
        to: Vec<NodeId>,
        bytes: usize,
        packets: usize,
    },
    TraceDelivery {
        phase: u16,
        from: NodeId,
        to: Vec<NodeId>,
        bytes: usize,
        packets: usize,
        retransmissions: u64,
        acked: bool,
    },
}

/// A replayable recording of charge calls, used as the per-thread sink of
/// parallel wave execution. Replaying issues the identical call sequence
/// against the real counters, preserving bit-identity with serial charging
/// (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct StatLedger {
    phases: Vec<String>,
    events: Vec<StatEvent>,
    tracing: bool,
}

impl StatLedger {
    /// An empty ledger; `tracing` mirrors whether the owning network has a
    /// trace attached (gates trace-row recording).
    pub(crate) fn new(tracing: bool) -> Self {
        Self {
            phases: Vec::new(),
            events: Vec::new(),
            tracing,
        }
    }

    fn phase_id(&mut self, phase: &str) -> u16 {
        if let Some(i) = self.phases.iter().position(|p| p == phase) {
            return i as u16;
        }
        self.phases.push(phase.to_owned());
        (self.phases.len() - 1) as u16
    }

    /// Replays every recorded call, in order, against `stats`, `trace` and
    /// (when attached) `battery`. Battery debits happen during the serial
    /// replay — never inside the worker threads — so the per-node f64 debit
    /// order, and therefore the depletion schedule, is bit-identical
    /// between serial and parallel wave execution.
    pub(crate) fn replay(
        self,
        stats: &mut NetworkStats,
        mut trace: Option<&mut Trace>,
        mut battery: Option<&mut BatteryBank>,
    ) {
        let StatLedger { phases, events, .. } = self;
        let phase = |id: u16| phases[id as usize].as_str();
        let debit = |battery: &mut Option<&mut BatteryBank>, node: NodeId, uj: f64| {
            if let Some(b) = battery.as_deref_mut() {
                b.debit(node, uj);
            }
        };
        for ev in events {
            match ev {
                StatEvent::Tx {
                    node,
                    payload,
                    uj,
                    phase: p,
                } => {
                    stats.record_tx(node, payload, uj, phase(p));
                    debit(&mut battery, node, uj);
                }
                StatEvent::Rx {
                    node,
                    payload,
                    uj,
                    phase: p,
                } => {
                    stats.record_rx(node, payload, uj, phase(p));
                    debit(&mut battery, node, uj);
                }
                StatEvent::Retx {
                    node,
                    payload,
                    uj,
                    phase: p,
                } => {
                    stats.record_retx(node, payload, uj, phase(p));
                    debit(&mut battery, node, uj);
                }
                StatEvent::Ack {
                    node,
                    payload,
                    uj,
                    phase: p,
                } => {
                    stats.record_ack(node, payload, uj, phase(p));
                    debit(&mut battery, node, uj);
                }
                StatEvent::Energy { node, uj, phase: p } => {
                    stats.record_energy(node, uj, phase(p));
                    debit(&mut battery, node, uj);
                }
                StatEvent::Loss { node, phase: p } => {
                    stats.record_loss(node, phase(p));
                }
                StatEvent::TraceLossless {
                    phase: p,
                    from,
                    to,
                    bytes,
                    packets,
                } => {
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(phase(p), from, to, bytes, packets);
                    }
                }
                StatEvent::TraceDelivery {
                    phase: p,
                    from,
                    to,
                    bytes,
                    packets,
                    retransmissions,
                    acked,
                } => {
                    if let Some(t) = trace.as_deref_mut() {
                        t.push_delivery(phase(p), from, to, bytes, packets, retransmissions, acked);
                    }
                }
            }
        }
    }
}

impl StatSink for StatLedger {
    fn record_tx(&mut self, node: NodeId, payload: usize, uj: f64, phase: &str) {
        let phase = self.phase_id(phase);
        self.events.push(StatEvent::Tx {
            node,
            payload,
            uj,
            phase,
        });
    }
    fn record_rx(&mut self, node: NodeId, payload: usize, uj: f64, phase: &str) {
        let phase = self.phase_id(phase);
        self.events.push(StatEvent::Rx {
            node,
            payload,
            uj,
            phase,
        });
    }
    fn record_retx(&mut self, node: NodeId, payload: usize, uj: f64, phase: &str) {
        let phase = self.phase_id(phase);
        self.events.push(StatEvent::Retx {
            node,
            payload,
            uj,
            phase,
        });
    }
    fn record_ack(&mut self, node: NodeId, payload: usize, uj: f64, phase: &str) {
        let phase = self.phase_id(phase);
        self.events.push(StatEvent::Ack {
            node,
            payload,
            uj,
            phase,
        });
    }
    fn record_energy(&mut self, node: NodeId, uj: f64, phase: &str) {
        let phase = self.phase_id(phase);
        self.events.push(StatEvent::Energy { node, uj, phase });
    }
    fn record_loss(&mut self, node: NodeId, phase: &str) {
        let phase = self.phase_id(phase);
        self.events.push(StatEvent::Loss { node, phase });
    }
    fn wants_trace(&self) -> bool {
        self.tracing
    }
    fn trace_lossless(
        &mut self,
        phase: &str,
        from: NodeId,
        to: &[NodeId],
        bytes: usize,
        packets: usize,
    ) {
        if !self.tracing {
            return;
        }
        let phase = self.phase_id(phase);
        self.events.push(StatEvent::TraceLossless {
            phase,
            from,
            to: to.to_vec(),
            bytes,
            packets,
        });
    }
    fn trace_delivery(
        &mut self,
        phase: &str,
        from: NodeId,
        to: &[NodeId],
        bytes: usize,
        packets: usize,
        retransmissions: u64,
        acked: bool,
    ) {
        if !self.tracing {
            return;
        }
        let phase = self.phase_id(phase);
        self.events.push(StatEvent::TraceDelivery {
            phase,
            from,
            to: to.to_vec(),
            bytes,
            packets,
            retransmissions,
            acked,
        });
    }
}
