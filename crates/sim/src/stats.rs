//! Per-node and per-phase communication statistics.

use sensjoin_relation::NodeId;
use std::collections::BTreeMap;

/// Counters of one node.
///
/// `tx_packets` / `tx_bytes` count *first-attempt data fragments only* — the
/// paper's primary metric, which stays invariant under packet loss.
/// Reliability traffic lives in the dedicated retransmit / ack counters and
/// everything (including control-frame receptions) is charged into
/// `energy_uj`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeStats {
    /// Data packets transmitted (first attempts).
    pub tx_packets: u64,
    /// Application payload bytes transmitted (first attempts).
    pub tx_bytes: u64,
    /// Data packets received (decoded copies; duplicates excluded).
    pub rx_packets: u64,
    /// Application payload bytes received.
    pub rx_bytes: u64,
    /// Data-fragment retransmissions performed by the ARQ layer.
    pub retx_packets: u64,
    /// Payload bytes retransmitted by the ARQ layer.
    pub retx_bytes: u64,
    /// ACK / summary control frames transmitted.
    pub ack_packets: u64,
    /// ACK / summary payload bytes transmitted.
    pub ack_bytes: u64,
    /// Data fragments addressed to this node that were permanently lost
    /// (never delivered within the retry budget).
    pub lost_packets: u64,
    /// Crash-stop deaths of this node (exogenous churn or battery
    /// exhaustion; a node that revives and dies again counts twice).
    pub deaths: u64,
    /// Energy spent (µJ), transmission + reception, including all
    /// reliability traffic.
    pub energy_uj: f64,
}

impl NodeStats {
    /// Reliability overhead bytes (retransmissions + control frames).
    pub fn overhead_bytes(&self) -> u64 {
        self.retx_bytes + self.ack_bytes
    }

    /// Total bytes put on the air: data + retransmissions + control.
    pub fn cost_bytes(&self) -> u64 {
        self.tx_bytes + self.overhead_bytes()
    }

    fn add(&mut self, other: &NodeStats) {
        self.tx_packets += other.tx_packets;
        self.tx_bytes += other.tx_bytes;
        self.rx_packets += other.rx_packets;
        self.rx_bytes += other.rx_bytes;
        self.retx_packets += other.retx_packets;
        self.retx_bytes += other.retx_bytes;
        self.ack_packets += other.ack_packets;
        self.ack_bytes += other.ack_bytes;
        self.lost_packets += other.lost_packets;
        self.deaths += other.deaths;
        self.energy_uj += other.energy_uj;
    }
}

/// Aggregated statistics of a protocol execution.
///
/// Phases are free-form labels (`"collection"`, `"filter"`, ...) so the cost
/// breakdown of Fig. 15 can be produced directly.
#[derive(Debug, Clone, Default)]
pub struct NetworkStats {
    per_node: Vec<NodeStats>,
    per_phase: BTreeMap<String, NodeStats>,
}

impl NetworkStats {
    /// Creates zeroed statistics for `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            per_node: vec![NodeStats::default(); n],
            per_phase: BTreeMap::new(),
        }
    }

    /// Rebuilds statistics from exported parts — the checkpoint/restore
    /// surface, pairing with [`NetworkStats::per_node`] and
    /// [`NetworkStats::phases`].
    pub fn from_parts(per_node: Vec<NodeStats>, per_phase: Vec<(String, NodeStats)>) -> Self {
        Self {
            per_node,
            per_phase: per_phase.into_iter().collect(),
        }
    }

    /// Records one transmitted packet at `node` with `payload` bytes and
    /// energy `uj`, under phase `phase`.
    pub fn record_tx(&mut self, node: NodeId, payload: usize, uj: f64, phase: &str) {
        let s = &mut self.per_node[node.0 as usize];
        s.tx_packets += 1;
        s.tx_bytes += payload as u64;
        s.energy_uj += uj;
        let p = self.per_phase.entry(phase.to_owned()).or_default();
        p.tx_packets += 1;
        p.tx_bytes += payload as u64;
        p.energy_uj += uj;
    }

    /// Records one received packet at `node`.
    pub fn record_rx(&mut self, node: NodeId, payload: usize, uj: f64, phase: &str) {
        let s = &mut self.per_node[node.0 as usize];
        s.rx_packets += 1;
        s.rx_bytes += payload as u64;
        s.energy_uj += uj;
        let p = self.per_phase.entry(phase.to_owned()).or_default();
        p.rx_packets += 1;
        p.rx_bytes += payload as u64;
        p.energy_uj += uj;
    }

    /// Records one retransmitted data fragment at `node`.
    pub fn record_retx(&mut self, node: NodeId, payload: usize, uj: f64, phase: &str) {
        let s = &mut self.per_node[node.0 as usize];
        s.retx_packets += 1;
        s.retx_bytes += payload as u64;
        s.energy_uj += uj;
        let p = self.per_phase.entry(phase.to_owned()).or_default();
        p.retx_packets += 1;
        p.retx_bytes += payload as u64;
        p.energy_uj += uj;
    }

    /// Records one transmitted ACK / summary control frame at `node`.
    pub fn record_ack(&mut self, node: NodeId, payload: usize, uj: f64, phase: &str) {
        let s = &mut self.per_node[node.0 as usize];
        s.ack_packets += 1;
        s.ack_bytes += payload as u64;
        s.energy_uj += uj;
        let p = self.per_phase.entry(phase.to_owned()).or_default();
        p.ack_packets += 1;
        p.ack_bytes += payload as u64;
        p.energy_uj += uj;
    }

    /// Records a permanently lost data fragment addressed to `node`.
    pub fn record_loss(&mut self, node: NodeId, phase: &str) {
        self.per_node[node.0 as usize].lost_packets += 1;
        self.per_phase
            .entry(phase.to_owned())
            .or_default()
            .lost_packets += 1;
    }

    /// Records one crash-stop death of `node` (exogenous churn or battery
    /// exhaustion).
    pub fn record_death(&mut self, node: NodeId, phase: &str) {
        self.per_node[node.0 as usize].deaths += 1;
        self.per_phase.entry(phase.to_owned()).or_default().deaths += 1;
    }

    /// Charges pure energy at `node` (e.g. receiving a control frame or a
    /// duplicate fragment) without touching any packet counter.
    pub fn record_energy(&mut self, node: NodeId, uj: f64, phase: &str) {
        self.per_node[node.0 as usize].energy_uj += uj;
        self.per_phase
            .entry(phase.to_owned())
            .or_default()
            .energy_uj += uj;
    }

    /// Counters of one node.
    pub fn node(&self, node: NodeId) -> &NodeStats {
        &self.per_node[node.0 as usize]
    }

    /// All per-node counters, indexed by node id.
    pub fn per_node(&self) -> &[NodeStats] {
        &self.per_node
    }

    /// Counters aggregated for a phase label (zeroes if unseen).
    pub fn phase(&self, phase: &str) -> NodeStats {
        self.per_phase.get(phase).copied().unwrap_or_default()
    }

    /// All phase labels seen.
    pub fn phases(&self) -> impl Iterator<Item = (&str, &NodeStats)> {
        self.per_phase.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total packets transmitted network-wide — the paper's primary metric.
    pub fn total_tx_packets(&self) -> u64 {
        self.per_node.iter().map(|s| s.tx_packets).sum()
    }

    /// Total payload bytes transmitted network-wide.
    pub fn total_tx_bytes(&self) -> u64 {
        self.per_node.iter().map(|s| s.tx_bytes).sum()
    }

    /// Total energy spent network-wide (µJ).
    pub fn total_energy_uj(&self) -> f64 {
        self.per_node.iter().map(|s| s.energy_uj).sum()
    }

    /// Total data-fragment retransmissions network-wide.
    pub fn total_retx_packets(&self) -> u64 {
        self.per_node.iter().map(|s| s.retx_packets).sum()
    }

    /// Total ACK / summary frames transmitted network-wide.
    pub fn total_ack_packets(&self) -> u64 {
        self.per_node.iter().map(|s| s.ack_packets).sum()
    }

    /// Total reliability overhead bytes (retransmissions + control frames).
    pub fn total_overhead_bytes(&self) -> u64 {
        self.per_node.iter().map(|s| s.overhead_bytes()).sum()
    }

    /// Total bytes put on the air network-wide: data + retransmissions +
    /// control frames. The honest cost metric when comparing reliability
    /// strategies.
    pub fn total_cost_bytes(&self) -> u64 {
        self.per_node.iter().map(|s| s.cost_bytes()).sum()
    }

    /// Total permanently lost data fragments network-wide.
    pub fn total_lost_packets(&self) -> u64 {
        self.per_node.iter().map(|s| s.lost_packets).sum()
    }

    /// Total crash-stop deaths network-wide (revive-and-die-again counts
    /// every time).
    pub fn total_deaths(&self) -> u64 {
        self.per_node.iter().map(|s| s.deaths).sum()
    }

    /// The highest per-node transmission count and the node attaining it
    /// (the "most loaded node" of Fig. 11). Returns `None` for empty nets.
    pub fn most_loaded(&self) -> Option<(NodeId, u64)> {
        self.per_node
            .iter()
            .enumerate()
            .max_by_key(|(i, s)| (s.tx_packets, std::cmp::Reverse(*i)))
            .map(|(i, s)| (NodeId(i as u32), s.tx_packets))
    }

    /// Sums another statistics object into this one (same node count).
    pub fn merge(&mut self, other: &NetworkStats) {
        assert_eq!(self.per_node.len(), other.per_node.len());
        for (a, b) in self.per_node.iter_mut().zip(&other.per_node) {
            a.add(b);
        }
        for (k, v) in &other.per_phase {
            self.per_phase.entry(k.clone()).or_default().add(v);
        }
    }
}

/// Accumulated accounting of streaming-ingestion delta batches: the
/// base-station CPU side of the continuous protocol, where each round's
/// tuple deltas update the cached join incrementally instead of recomputing
/// it. `candidates` is the steady-state work metric — it grows with the
/// deltas, not with the relation sizes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaBatchStats {
    /// Batches applied.
    pub batches: u64,
    /// Stream ops across all batches.
    pub ops: u64,
    /// Tuples inserted.
    pub inserted: u64,
    /// Tuples expired.
    pub expired: u64,
    /// Result rows added.
    pub rows_added: u64,
    /// Result rows removed.
    pub rows_removed: u64,
    /// Candidate bindings examined during anchored re-enumeration.
    pub candidates: u64,
    /// Band-index partitions promoted to their hot sub-bucket tier.
    pub promotions: u64,
}

impl DeltaBatchStats {
    /// Records one applied batch's counters.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        ops: u64,
        inserted: u64,
        expired: u64,
        rows_added: u64,
        rows_removed: u64,
        candidates: u64,
        promotions: u64,
    ) {
        self.batches += 1;
        self.ops += ops;
        self.inserted += inserted;
        self.expired += expired;
        self.rows_added += rows_added;
        self.rows_removed += rows_removed;
        self.candidates += candidates;
        self.promotions += promotions;
    }

    /// Sums another accumulator into this one.
    pub fn merge(&mut self, other: &DeltaBatchStats) {
        self.batches += other.batches;
        self.ops += other.ops;
        self.inserted += other.inserted;
        self.expired += other.expired;
        self.rows_added += other.rows_added;
        self.rows_removed += other.rows_removed;
        self.candidates += other.candidates;
        self.promotions += other.promotions;
    }

    /// Mean candidate bindings examined per stream op — the per-delta cost.
    pub fn candidates_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.candidates as f64 / self.ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_and_totals() {
        let mut s = NetworkStats::new(3);
        s.record_tx(NodeId(1), 30, 100.0, "collect");
        s.record_tx(NodeId(1), 18, 80.0, "final");
        s.record_rx(NodeId(2), 30, 60.0, "collect");
        assert_eq!(s.total_tx_packets(), 2);
        assert_eq!(s.total_tx_bytes(), 48);
        assert_eq!(s.node(NodeId(1)).tx_packets, 2);
        assert_eq!(s.node(NodeId(2)).rx_bytes, 30);
        assert_eq!(s.phase("collect").tx_packets, 1);
        assert_eq!(s.phase("collect").rx_packets, 1);
        assert_eq!(s.phase("nope"), NodeStats::default());
        assert!((s.total_energy_uj() - 240.0).abs() < 1e-9);
    }

    #[test]
    fn reliability_counters() {
        let mut s = NetworkStats::new(2);
        s.record_tx(NodeId(0), 48, 10.0, "p");
        s.record_retx(NodeId(0), 48, 10.0, "p");
        s.record_ack(NodeId(1), 2, 1.0, "p");
        s.record_loss(NodeId(1), "p");
        s.record_energy(NodeId(0), 0.5, "p");
        assert_eq!(s.total_tx_packets(), 1);
        assert_eq!(s.total_retx_packets(), 1);
        assert_eq!(s.total_ack_packets(), 1);
        assert_eq!(s.total_lost_packets(), 1);
        assert_eq!(s.total_overhead_bytes(), 50);
        assert_eq!(s.total_cost_bytes(), 98);
        assert_eq!(s.phase("p").retx_bytes, 48);
        assert_eq!(s.phase("p").ack_bytes, 2);
        assert_eq!(s.phase("p").lost_packets, 1);
        assert!((s.total_energy_uj() - 21.5).abs() < 1e-9);
        let mut other = NetworkStats::new(2);
        other.record_retx(NodeId(0), 10, 1.0, "p");
        s.merge(&other);
        assert_eq!(s.node(NodeId(0)).retx_packets, 2);
        assert_eq!(s.node(NodeId(0)).retx_bytes, 58);
    }

    #[test]
    fn most_loaded() {
        let mut s = NetworkStats::new(3);
        assert_eq!(s.most_loaded(), Some((NodeId(0), 0)));
        s.record_tx(NodeId(2), 10, 1.0, "p");
        s.record_tx(NodeId(2), 10, 1.0, "p");
        s.record_tx(NodeId(0), 10, 1.0, "p");
        assert_eq!(s.most_loaded(), Some((NodeId(2), 2)));
    }

    #[test]
    fn merge_sums() {
        let mut a = NetworkStats::new(2);
        a.record_tx(NodeId(0), 10, 5.0, "x");
        let mut b = NetworkStats::new(2);
        b.record_tx(NodeId(0), 20, 7.0, "x");
        b.record_rx(NodeId(1), 20, 3.0, "y");
        a.merge(&b);
        assert_eq!(a.node(NodeId(0)).tx_packets, 2);
        assert_eq!(a.node(NodeId(0)).tx_bytes, 30);
        assert_eq!(a.phase("y").rx_packets, 1);
    }
}
