//! Node positions and the neighbor graph.

use sensjoin_field::{Area, Position};
use sensjoin_relation::NodeId;

/// A static network topology: positions plus the bidirectional-link
/// adjacency induced by the communication range.
///
/// "Each node is aware of the nodes within its wireless range, which form
/// its neighborhood" (§III). Adjacency is computed with a uniform grid of
/// range-sized buckets, so construction is `O(n · expected neighbors)`, and
/// stored in CSR form — one offsets array plus one flat neighbor buffer —
/// so a million-node topology is two contiguous allocations instead of a
/// million small vectors.
#[derive(Debug, Clone)]
pub struct Topology {
    positions: Vec<Position>,
    /// CSR offsets: node `i`'s neighbors live at `nbr_buf[nbr_off[i]..nbr_off[i + 1]]`.
    nbr_off: Vec<u32>,
    /// Flat neighbor buffer, each node's slice sorted by id.
    nbr_buf: Vec<NodeId>,
    area: Area,
    range: f64,
}

impl Topology {
    /// Builds the topology for `positions` with communication `range`.
    pub fn new(positions: Vec<Position>, area: Area, range: f64) -> Self {
        assert!(range > 0.0, "range must be positive");
        let n = positions.len();
        let cols = (area.width / range).ceil().max(1.0) as usize;
        let rows = (area.height / range).ceil().max(1.0) as usize;
        let cell_of = |p: &Position| -> (usize, usize) {
            let cx = ((p.x / range) as usize).min(cols - 1);
            let cy = ((p.y / range) as usize).min(rows - 1);
            (cx, cy)
        };
        // Grid of range-sized buckets, itself in CSR form (counting sort by
        // cell): cell `c`'s members are `grid_buf[grid_off[c]..grid_off[c+1]]`,
        // ascending by id.
        let ncells = cols * rows;
        let cell: Vec<u32> = positions
            .iter()
            .map(|p| {
                let (cx, cy) = cell_of(p);
                (cy * cols + cx) as u32
            })
            .collect();
        let mut grid_off = vec![0u32; ncells + 1];
        for &c in &cell {
            grid_off[c as usize + 1] += 1;
        }
        for c in 0..ncells {
            grid_off[c + 1] += grid_off[c];
        }
        let mut grid_buf = vec![0u32; n];
        for (i, &c) in cell.iter().enumerate() {
            grid_buf[grid_off[c as usize] as usize] = i as u32;
            grid_off[c as usize] += 1;
        }
        // The fill advanced every offset to its cell's end; shift right to
        // recover the starts.
        grid_off.copy_within(0..ncells, 1);
        grid_off[0] = 0;

        // Two passes over the 3x3 cell neighborhoods: count, then fill.
        // Each node's slice is produced wholesale, so a running cursor
        // suffices; a final per-slice sort orders neighbors by id.
        let mut nbr_off = vec![0u32; n + 1];
        let scan = |i: usize, p: &Position, mut hit: Box<dyn FnMut(u32) + '_>| {
            let (cx, cy) = cell_of(p);
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    let nx = cx as isize + dx;
                    let ny = cy as isize + dy;
                    if nx < 0 || ny < 0 || nx >= cols as isize || ny >= rows as isize {
                        continue;
                    }
                    let c = ny as usize * cols + nx as usize;
                    for &j in &grid_buf[grid_off[c] as usize..grid_off[c + 1] as usize] {
                        if j as usize != i && positions[j as usize].distance(p) <= range {
                            hit(j);
                        }
                    }
                }
            }
        };
        for (i, p) in positions.iter().enumerate() {
            let mut count = 0u32;
            scan(i, p, Box::new(|_| count += 1));
            nbr_off[i + 1] = count;
        }
        for i in 0..n {
            nbr_off[i + 1] += nbr_off[i];
        }
        let total = nbr_off[n] as usize;
        let mut nbr_buf = vec![NodeId(0); total];
        for (i, p) in positions.iter().enumerate() {
            let mut k = nbr_off[i] as usize;
            scan(
                i,
                p,
                Box::new(|j| {
                    nbr_buf[k] = NodeId(j);
                    k += 1;
                }),
            );
            debug_assert_eq!(k, nbr_off[i + 1] as usize);
            nbr_buf[nbr_off[i] as usize..nbr_off[i + 1] as usize].sort_unstable();
        }
        Self {
            positions,
            nbr_off,
            nbr_buf,
            area,
            range,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of a node.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.0 as usize]
    }

    /// Neighbors of a node (nodes within range), sorted by id.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        let i = node.0 as usize;
        &self.nbr_buf[self.nbr_off[i] as usize..self.nbr_off[i + 1] as usize]
    }

    /// The deployment area.
    pub fn area(&self) -> Area {
        self.area
    }

    /// The communication range.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Nodes reachable from `start` via neighbor links (including `start`),
    /// as a boolean per node.
    pub fn reachable_from(&self, start: NodeId) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[start.0 as usize] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(u) {
                if !seen[v.0 as usize] {
                    seen[v.0 as usize] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// Like [`Topology::reachable_from`], but only traversing live nodes:
    /// a node is reachable if a path of `alive` nodes connects it to
    /// `start`. Dead nodes are never reachable. This is the ground truth the
    /// routing repair must span — the base-reachable live set.
    pub fn reachable_from_alive(&self, start: NodeId, alive: &[bool]) -> Vec<bool> {
        assert_eq!(alive.len(), self.len(), "one liveness flag per node");
        let mut seen = vec![false; self.len()];
        if !alive[start.0 as usize] {
            return seen;
        }
        let mut queue = std::collections::VecDeque::new();
        seen[start.0 as usize] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(u) {
                if alive[v.0 as usize] && !seen[v.0 as usize] {
                    seen[v.0 as usize] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// Iterates all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u32).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_topology(n: usize, spacing: f64, range: f64) -> Topology {
        let positions: Vec<Position> = (0..n)
            .map(|i| Position::new(i as f64 * spacing + 0.5, 0.5))
            .collect();
        Topology::new(positions, Area::new(n as f64 * spacing + 1.0, 1.0), range)
    }

    /// Brute-force O(n²) adjacency for cross-checking the CSR build.
    fn brute_neighbors(positions: &[Position], range: f64) -> Vec<Vec<NodeId>> {
        (0..positions.len())
            .map(|i| {
                (0..positions.len())
                    .filter(|&j| j != i && positions[i].distance(&positions[j]) <= range)
                    .map(|j| NodeId(j as u32))
                    .collect()
            })
            .collect()
    }

    fn assert_matches_brute_force(t: &Topology) {
        let positions: Vec<Position> = t.nodes().map(|v| t.position(v)).collect();
        let expect = brute_neighbors(&positions, t.range());
        for v in t.nodes() {
            assert_eq!(t.neighbors(v), &expect[v.0 as usize][..], "{v}");
        }
    }

    #[test]
    fn line_neighbors() {
        let t = line_topology(5, 10.0, 15.0);
        assert_eq!(t.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(t.neighbors(NodeId(2)), &[NodeId(1), NodeId(3)]);
        assert_eq!(t.neighbors(NodeId(4)), &[NodeId(3)]);
    }

    #[test]
    fn links_are_symmetric() {
        let positions = sensjoin_field::Placement::UniformRandom { n: 300 }
            .generate(Area::new(400.0, 400.0), 9);
        let t = Topology::new(positions, Area::new(400.0, 400.0), 50.0);
        for u in t.nodes() {
            for &v in t.neighbors(u) {
                assert!(t.neighbors(v).contains(&u), "{u} -> {v} not symmetric");
            }
        }
    }

    #[test]
    fn range_respected() {
        let positions = sensjoin_field::Placement::UniformRandom { n: 200 }
            .generate(Area::new(300.0, 300.0), 4);
        let t = Topology::new(positions, Area::new(300.0, 300.0), 50.0);
        for u in t.nodes() {
            for &v in t.neighbors(u) {
                assert!(t.position(u).distance(&t.position(v)) <= 50.0);
            }
            // And no in-range node is missed: brute-force check.
            for v in t.nodes() {
                if u != v && t.position(u).distance(&t.position(v)) <= 50.0 {
                    assert!(t.neighbors(u).contains(&v));
                }
            }
        }
    }

    #[test]
    fn reachability() {
        // Two far-apart pairs.
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(10.0, 0.0),
            Position::new(500.0, 0.0),
            Position::new(510.0, 0.0),
        ];
        let t = Topology::new(positions, Area::new(600.0, 1.0), 20.0);
        let r = t.reachable_from(NodeId(0));
        assert_eq!(r, vec![true, true, false, false]);
    }

    #[test]
    fn positions_on_the_area_boundary_are_bucketed() {
        // Positions exactly at x = width / y = height land past the last
        // grid column/row before clamping; the clamp must keep them inside
        // and adjacency must still match brute force.
        let area = Area::new(100.0, 100.0);
        let positions = vec![
            Position::new(100.0, 100.0), // far corner, exactly on boundary
            Position::new(100.0, 0.0),
            Position::new(0.0, 100.0),
            Position::new(95.0, 95.0),
            Position::new(0.0, 0.0),
            Position::new(50.0, 100.0), // boundary edge midpoints
            Position::new(100.0, 50.0),
        ];
        let t = Topology::new(positions, area, 30.0);
        assert_matches_brute_force(&t);
        assert!(t.neighbors(NodeId(0)).contains(&NodeId(3)));
    }

    #[test]
    fn range_larger_than_area_is_a_single_cell() {
        // range > max(width, height): the grid degenerates to one cell and
        // every pair within range must still be adjacent.
        let area = Area::new(40.0, 25.0);
        let positions = vec![
            Position::new(1.0, 1.0),
            Position::new(39.0, 24.0),
            Position::new(20.0, 12.0),
            Position::new(5.0, 20.0),
        ];
        let t = Topology::new(positions, area, 1000.0);
        assert_matches_brute_force(&t);
        // Everybody sees everybody: the range dwarfs the diagonal.
        for v in t.nodes() {
            assert_eq!(t.neighbors(v).len(), t.len() - 1, "{v}");
        }
    }

    #[test]
    fn single_cell_grid_close_range() {
        // width == height == range: a 1x1 grid where the 3x3 scan collapses
        // to the one cell, with genuinely out-of-range pairs.
        let area = Area::new(50.0, 50.0);
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(10.0, 0.0),
            Position::new(49.0, 49.0),
            Position::new(25.0, 25.0),
        ];
        let t = Topology::new(positions, area, 50.0);
        assert_matches_brute_force(&t);
        assert!(!t.neighbors(NodeId(0)).contains(&NodeId(2)));
    }

    mod csr_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Satellite proptest: the grid-bucketed CSR adjacency equals
            /// the brute-force O(n²) neighbor computation, including
            /// positions on cell and area boundaries.
            #[test]
            fn csr_adjacency_matches_brute_force(
                seed in 0u64..500,
                n in 2usize..40,
                range in 10.0f64..200.0,
                side in 20.0f64..300.0,
            ) {
                let area = Area::new(side, side);
                let mut positions = sensjoin_field::Placement::UniformRandom { n }
                    .generate(area, seed);
                // Pin some nodes onto exact cell/area boundaries.
                positions[0] = Position::new(side, side);
                if n > 2 {
                    positions[1] = Position::new(range.min(side), 0.0);
                }
                let t = Topology::new(positions.clone(), area, range);
                let expect = brute_neighbors(&positions, range);
                for v in t.nodes() {
                    prop_assert_eq!(t.neighbors(v), &expect[v.0 as usize][..]);
                }
            }
        }
    }
}
