//! Node positions and the neighbor graph.

use sensjoin_field::{Area, Position};
use sensjoin_relation::NodeId;

/// A static network topology: positions plus the bidirectional-link
/// adjacency induced by the communication range.
///
/// "Each node is aware of the nodes within its wireless range, which form
/// its neighborhood" (§III). Adjacency is computed with a uniform grid of
/// range-sized buckets, so construction is `O(n · expected neighbors)`.
#[derive(Debug, Clone)]
pub struct Topology {
    positions: Vec<Position>,
    neighbors: Vec<Vec<NodeId>>,
    area: Area,
    range: f64,
}

impl Topology {
    /// Builds the topology for `positions` with communication `range`.
    pub fn new(positions: Vec<Position>, area: Area, range: f64) -> Self {
        assert!(range > 0.0, "range must be positive");
        let n = positions.len();
        let cols = (area.width / range).ceil().max(1.0) as usize;
        let rows = (area.height / range).ceil().max(1.0) as usize;
        let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cols * rows];
        let cell_of = |p: &Position| -> (usize, usize) {
            let cx = ((p.x / range) as usize).min(cols - 1);
            let cy = ((p.y / range) as usize).min(rows - 1);
            (cx, cy)
        };
        for (i, p) in positions.iter().enumerate() {
            let (cx, cy) = cell_of(p);
            grid[cy * cols + cx].push(i as u32);
        }
        let mut neighbors = vec![Vec::new(); n];
        for (i, p) in positions.iter().enumerate() {
            let (cx, cy) = cell_of(p);
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    let nx = cx as isize + dx;
                    let ny = cy as isize + dy;
                    if nx < 0 || ny < 0 || nx >= cols as isize || ny >= rows as isize {
                        continue;
                    }
                    for &j in &grid[ny as usize * cols + nx as usize] {
                        let j = j as usize;
                        if j != i && positions[j].distance(p) <= range {
                            neighbors[i].push(NodeId(j as u32));
                        }
                    }
                }
            }
            neighbors[i].sort_unstable();
        }
        Self {
            positions,
            neighbors,
            area,
            range,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of a node.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.0 as usize]
    }

    /// Neighbors of a node (nodes within range), sorted by id.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.neighbors[node.0 as usize]
    }

    /// The deployment area.
    pub fn area(&self) -> Area {
        self.area
    }

    /// The communication range.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Nodes reachable from `start` via neighbor links (including `start`),
    /// as a boolean per node.
    pub fn reachable_from(&self, start: NodeId) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[start.0 as usize] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(u) {
                if !seen[v.0 as usize] {
                    seen[v.0 as usize] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// Like [`Topology::reachable_from`], but only traversing live nodes:
    /// a node is reachable if a path of `alive` nodes connects it to
    /// `start`. Dead nodes are never reachable. This is the ground truth the
    /// routing repair must span — the base-reachable live set.
    pub fn reachable_from_alive(&self, start: NodeId, alive: &[bool]) -> Vec<bool> {
        assert_eq!(alive.len(), self.len(), "one liveness flag per node");
        let mut seen = vec![false; self.len()];
        if !alive[start.0 as usize] {
            return seen;
        }
        let mut queue = std::collections::VecDeque::new();
        seen[start.0 as usize] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(u) {
                if alive[v.0 as usize] && !seen[v.0 as usize] {
                    seen[v.0 as usize] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// Iterates all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u32).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_topology(n: usize, spacing: f64, range: f64) -> Topology {
        let positions: Vec<Position> = (0..n)
            .map(|i| Position::new(i as f64 * spacing + 0.5, 0.5))
            .collect();
        Topology::new(positions, Area::new(n as f64 * spacing + 1.0, 1.0), range)
    }

    #[test]
    fn line_neighbors() {
        let t = line_topology(5, 10.0, 15.0);
        assert_eq!(t.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(t.neighbors(NodeId(2)), &[NodeId(1), NodeId(3)]);
        assert_eq!(t.neighbors(NodeId(4)), &[NodeId(3)]);
    }

    #[test]
    fn links_are_symmetric() {
        let positions = sensjoin_field::Placement::UniformRandom { n: 300 }
            .generate(Area::new(400.0, 400.0), 9);
        let t = Topology::new(positions, Area::new(400.0, 400.0), 50.0);
        for u in t.nodes() {
            for &v in t.neighbors(u) {
                assert!(t.neighbors(v).contains(&u), "{u} -> {v} not symmetric");
            }
        }
    }

    #[test]
    fn range_respected() {
        let positions = sensjoin_field::Placement::UniformRandom { n: 200 }
            .generate(Area::new(300.0, 300.0), 4);
        let t = Topology::new(positions, Area::new(300.0, 300.0), 50.0);
        for u in t.nodes() {
            for &v in t.neighbors(u) {
                assert!(t.position(u).distance(&t.position(v)) <= 50.0);
            }
            // And no in-range node is missed: brute-force check.
            for v in t.nodes() {
                if u != v && t.position(u).distance(&t.position(v)) <= 50.0 {
                    assert!(t.neighbors(u).contains(&v));
                }
            }
        }
    }

    #[test]
    fn reachability() {
        // Two far-apart pairs.
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(10.0, 0.0),
            Position::new(500.0, 0.0),
            Position::new(510.0, 0.0),
        ];
        let t = Topology::new(positions, Area::new(600.0, 1.0), 20.0);
        let r = t.reachable_from(NodeId(0));
        assert_eq!(r, vec![true, true, false, false]);
    }
}
