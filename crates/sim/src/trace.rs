//! Optional transmission tracing.
//!
//! When enabled on a [`crate::Network`], every message transfer is appended
//! to an in-memory trace: which node sent how many bytes/packets to which
//! receivers in which protocol phase, in transmission order. Traces are the
//! ground truth for debugging protocol behavior and can be exported as CSV
//! (the CLI's `--trace` flag).

use sensjoin_relation::NodeId;

/// One traced message transfer (possibly several packets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotone sequence number (transmission order).
    pub seq: u64,
    /// Protocol phase label.
    pub phase: String,
    /// Record kind: `data` for message transfers, or a churn event —
    /// `death`, `revival`, `repair` (a node re-selecting its routing
    /// parent).
    pub kind: String,
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving nodes (one for unicast, the children for a broadcast;
    /// empty for an untracked send).
    pub to: Vec<NodeId>,
    /// Application payload bytes.
    pub bytes: usize,
    /// Packets after fragmentation (first attempts).
    pub packets: usize,
    /// Data-fragment retransmissions the ARQ layer performed for this
    /// message (0 on a lossless network).
    pub retransmissions: u64,
    /// Whether the message was fully delivered to every addressed receiver
    /// (always `true` on a lossless network).
    pub acked: bool,
}

/// An in-memory transmission trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a trace from records previously exported with
    /// [`Trace::records`] — the checkpoint/restore surface. Sequence
    /// numbers keep counting from `records.len()`.
    pub fn from_records(records: Vec<TraceRecord>) -> Self {
        Self { records }
    }

    /// Appends a lossless record (no retransmissions, fully delivered),
    /// assigning the next sequence number.
    pub fn push(
        &mut self,
        phase: &str,
        from: NodeId,
        to: Vec<NodeId>,
        bytes: usize,
        packets: usize,
    ) {
        self.push_delivery(phase, from, to, bytes, packets, 0, true);
    }

    /// Appends a record with explicit delivery information: how many
    /// data-fragment retransmissions the message needed and whether it was
    /// completely delivered. One *logical* record per message — retries do
    /// not produce extra records.
    #[allow(clippy::too_many_arguments)]
    pub fn push_delivery(
        &mut self,
        phase: &str,
        from: NodeId,
        to: Vec<NodeId>,
        bytes: usize,
        packets: usize,
        retransmissions: u64,
        acked: bool,
    ) {
        let seq = self.records.len() as u64;
        self.records.push(TraceRecord {
            seq,
            phase: phase.to_owned(),
            kind: "data".to_owned(),
            from,
            to,
            bytes,
            packets,
            retransmissions,
            acked,
        });
    }

    /// Appends a churn event row: a node `death`, `revival`, or a `repair`
    /// (the node at `node` re-selected its routing parent, given in `to`).
    /// Event rows carry no payload (`bytes` = `packets` = 0) but keep their
    /// position in the sequence, so a trace shows exactly when — relative to
    /// the data traffic of each phase — the topology changed.
    pub fn push_event(&mut self, phase: &str, kind: &str, node: NodeId, to: Vec<NodeId>) {
        let seq = self.records.len() as u64;
        self.records.push(TraceRecord {
            seq,
            phase: phase.to_owned(),
            kind: kind.to_owned(),
            from: node,
            to,
            bytes: 0,
            packets: 0,
            retransmissions: 0,
            acked: true,
        });
    }

    /// All records in transmission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of traced transfers.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total packets across all records.
    pub fn total_packets(&self) -> u64 {
        self.records.iter().map(|r| r.packets as u64).sum()
    }

    /// Renders the trace as CSV
    /// (`seq,phase,kind,from,to,bytes,packets,retransmissions,acked`;
    /// multiple receivers separated by `;`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("seq,phase,kind,from,to,bytes,packets,retransmissions,acked\n");
        for r in &self.records {
            let to: Vec<String> = r.to.iter().map(|n| n.0.to_string()).collect();
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                r.seq,
                r.phase,
                r.kind,
                r.from.0,
                to.join(";"),
                r.bytes,
                r.packets,
                r.retransmissions,
                r.acked
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_csv() {
        let mut t = Trace::new();
        t.push("collect", NodeId(3), vec![NodeId(1)], 30, 1);
        t.push("filter", NodeId(1), vec![NodeId(3), NodeId(4)], 100, 3);
        t.push_delivery("final", NodeId(4), vec![NodeId(1)], 60, 2, 3, false);
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_packets(), 6);
        assert_eq!(t.records()[1].seq, 1);
        assert_eq!(t.records()[2].retransmissions, 3);
        assert!(!t.records()[2].acked);
        let csv = t.to_csv();
        assert!(csv.starts_with("seq,phase,kind,from,to,bytes,packets,retransmissions,acked\n"));
        assert!(csv.contains("0,collect,data,3,1,30,1,0,true\n"));
        assert!(csv.contains("1,filter,data,1,3;4,100,3,0,true\n"));
        assert!(csv.contains("2,final,data,4,1,60,2,3,false\n"));
    }

    #[test]
    fn churn_event_rows() {
        // Satellite: per-phase death/revival/repair events become CSV rows
        // interleaved with the data records, zero-cost, in sequence order.
        let mut t = Trace::new();
        t.push("repair", NodeId(2), vec![NodeId(1)], 30, 1);
        t.push_event("repair", "death", NodeId(5), vec![]);
        t.push_event("repair", "repair", NodeId(6), vec![NodeId(2)]);
        t.push_event("2-filter-dissemination", "revival", NodeId(5), vec![]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.total_packets(), 1, "event rows carry no packets");
        assert_eq!(t.records()[1].kind, "death");
        assert_eq!(t.records()[2].to, vec![NodeId(2)]);
        let csv = t.to_csv();
        assert!(csv.contains("1,repair,death,5,,0,0,0,true\n"));
        assert!(csv.contains("2,repair,repair,6,2,0,0,0,true\n"));
        assert!(csv.contains("3,2-filter-dissemination,revival,5,,0,0,0,true\n"));
    }
}
