#![warn(missing_docs)]

//! Vectorized hot kernels shared by the join engine, the Z-order codec and
//! the quadtree encoder — each with a scalar reference implementation that
//! is **bit-identical by construction**.
//!
//! The crate exposes three kernel families:
//!
//! * [`band_mask`] — the residual interval check of a band predicate
//!   (`key ⋈ probe`, `key − probe ⋈ c`, `|key − probe| ⋈ c`) evaluated over a
//!   whole candidate run at once, producing one survivor bit per key. The
//!   AVX2 path performs the *same* IEEE-754 subtraction, absolute value
//!   (sign-bit clear) and ordered comparison per lane as the scalar loop —
//!   no reassociation, no FMA — so the survivor set matches the scalar
//!   predicate exactly, including NaN (all ordered comparisons false),
//!   signed zeros and infinities.
//! * [`pdep_u64`] / [`pext_u64`] — parallel bit deposit/extract for Z-order
//!   interleaving (BMI2 when available, a mask-walking loop otherwise).
//! * [`and_mask_u64`] — a batched `key & mask` over `u64` runs feeding the
//!   quadtree point-list emitter.
//!
//! With the `simd` cargo feature disabled — or at runtime on CPUs without
//! AVX2/BMI2 — every entry point runs the scalar reference. Hardware
//! detection is cached in a relaxed atomic, so dispatch costs one load.

use std::sync::atomic::{AtomicU8, Ordering};

/// Comparison operator of a band-form residual check.
///
/// `Ne` is absent by design: the predicate classifier never produces
/// band-indexed `!=` predicates (their candidate set is a complement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpKind {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
}

/// The shape of a band residual check over a run of keys, mirroring the
/// query classifier's `BandForm` (operand order preserved via `key_is_lhs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaskForm {
    /// `key op probe` (`key_is_lhs`) or `probe op key`.
    Direct {
        /// The comparison operator.
        op: CmpKind,
        /// Whether the key run is the left comparison operand.
        key_is_lhs: bool,
    },
    /// `(key − probe) op c` (`key_is_lhs`) or `(probe − key) op c`.
    Diff {
        /// The comparison operator.
        op: CmpKind,
        /// The constant bound.
        c: f64,
        /// Whether the key run is the left subtraction operand.
        key_is_lhs: bool,
    },
    /// `|key − probe| op c` (`key_is_lhs`) or `|probe − key| op c`.
    AbsDiff {
        /// The comparison operator.
        op: CmpKind,
        /// The constant bound.
        c: f64,
        /// Whether the key run is the left subtraction operand.
        key_is_lhs: bool,
    },
}

#[inline]
fn cmp_scalar(op: CmpKind, l: f64, r: f64) -> bool {
    match op {
        CmpKind::Lt => l < r,
        CmpKind::Le => l <= r,
        CmpKind::Gt => l > r,
        CmpKind::Ge => l >= r,
        CmpKind::Eq => l == r,
    }
}

/// The scalar residual check for one key — the semantics both paths
/// implement.
#[inline]
pub fn band_accepts(form: MaskForm, probe: f64, key: f64) -> bool {
    match form {
        MaskForm::Direct { op, key_is_lhs } => {
            if key_is_lhs {
                cmp_scalar(op, key, probe)
            } else {
                cmp_scalar(op, probe, key)
            }
        }
        MaskForm::Diff { op, c, key_is_lhs } => {
            let d = if key_is_lhs { key - probe } else { probe - key };
            cmp_scalar(op, d, c)
        }
        MaskForm::AbsDiff { op, c, key_is_lhs } => {
            let d = if key_is_lhs { key - probe } else { probe - key };
            cmp_scalar(op, d.abs(), c)
        }
    }
}

/// Scalar reference: writes one survivor bit per key into `out`
/// (little-endian: key `i` is bit `i % 64` of word `i / 64`).
pub fn band_mask_scalar(keys: &[f64], probe: f64, form: MaskForm, out: &mut Vec<u64>) {
    out.clear();
    out.resize(keys.len().div_ceil(64), 0);
    for (i, &k) in keys.iter().enumerate() {
        if band_accepts(form, probe, k) {
            out[i >> 6] |= 1u64 << (i & 63);
        }
    }
}

/// Vectorized residual check over a candidate run: survivor bitmask of
/// `form` applied to every key against `probe`. Bit-identical to
/// [`band_mask_scalar`].
pub fn band_mask(keys: &[f64], probe: f64, form: MaskForm, out: &mut Vec<u64>) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if have_avx2() {
        // SAFETY: AVX2 presence was verified at runtime.
        unsafe { avx2::band_mask(keys, probe, form, out) };
        return;
    }
    band_mask_scalar(keys, probe, form, out);
}

/// Calls `f(i)` for every set bit `i` of a [`band_mask`] result.
#[inline]
pub fn for_each_set(mask: &[u64], mut f: impl FnMut(usize)) {
    for (w, &word) in mask.iter().enumerate() {
        let mut m = word;
        while m != 0 {
            f((w << 6) + m.trailing_zeros() as usize);
            m &= m - 1;
        }
    }
}

/// Scalar parallel bit deposit: distributes the low `mask.count_ones()`
/// bits of `src` (LSB first) to the set positions of `mask` (ascending).
pub fn pdep_u64_scalar(mut src: u64, mut mask: u64) -> u64 {
    let mut out = 0u64;
    while mask != 0 {
        let bit = mask & mask.wrapping_neg();
        if src & 1 != 0 {
            out |= bit;
        }
        src >>= 1;
        mask &= mask - 1;
    }
    out
}

/// Scalar parallel bit extract: gathers the bits of `src` at the set
/// positions of `mask` (ascending) into the low bits of the result.
pub fn pext_u64_scalar(src: u64, mut mask: u64) -> u64 {
    let mut out = 0u64;
    let mut i = 0u32;
    while mask != 0 {
        let bit = mask & mask.wrapping_neg();
        if src & bit != 0 {
            out |= 1u64 << i;
        }
        i += 1;
        mask &= mask - 1;
    }
    out
}

/// Parallel bit deposit (`PDEP`): BMI2 single instruction when available,
/// otherwise [`pdep_u64_scalar`].
#[inline]
pub fn pdep_u64(src: u64, mask: u64) -> u64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if have_bmi2() {
        // SAFETY: BMI2 presence was verified at runtime.
        return unsafe { pdep_hw(src, mask) };
    }
    pdep_u64_scalar(src, mask)
}

/// Parallel bit extract (`PEXT`): BMI2 single instruction when available,
/// otherwise [`pext_u64_scalar`].
#[inline]
pub fn pext_u64(src: u64, mask: u64) -> u64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if have_bmi2() {
        // SAFETY: BMI2 presence was verified at runtime.
        return unsafe { pext_hw(src, mask) };
    }
    pext_u64_scalar(src, mask)
}

/// Batched `key & mask` over a `u64` run (quadtree point-list emission).
pub fn and_mask_u64(keys: &[u64], mask: u64, out: &mut Vec<u64>) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if have_avx2() {
        // SAFETY: AVX2 presence was verified at runtime.
        unsafe { avx2::and_mask(keys, mask, out) };
        return;
    }
    out.clear();
    out.extend(keys.iter().map(|&k| k & mask));
}

/// Which hardware fast paths this process dispatches to:
/// `"avx2+bmi2"`, `"avx2"`, `"bmi2"` or `"scalar"`.
pub fn kernels_active() -> &'static str {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        match (have_avx2(), have_bmi2()) {
            (true, true) => "avx2+bmi2",
            (true, false) => "avx2",
            (false, true) => "bmi2",
            (false, false) => "scalar",
        }
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        "scalar"
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn cached_detect(cache: &AtomicU8, detect: impl FnOnce() -> bool) -> bool {
    match cache.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let v = detect();
            cache.store(if v { 1 } else { 2 }, Ordering::Relaxed);
            v
        }
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn have_avx2() -> bool {
    static CACHE: AtomicU8 = AtomicU8::new(0);
    cached_detect(&CACHE, || std::arch::is_x86_feature_detected!("avx2"))
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn have_bmi2() -> bool {
    static CACHE: AtomicU8 = AtomicU8::new(0);
    cached_detect(&CACHE, || std::arch::is_x86_feature_detected!("bmi2"))
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
#[allow(unused)]
fn silence_unused_import() {
    let _ = AtomicU8::new(0);
    let _ = Ordering::Relaxed;
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "bmi2")]
unsafe fn pdep_hw(src: u64, mask: u64) -> u64 {
    core::arch::x86_64::_pdep_u64(src, mask)
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "bmi2")]
unsafe fn pext_hw(src: u64, mask: u64) -> u64 {
    core::arch::x86_64::_pext_u64(src, mask)
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    //! AVX2 lane kernels. Lane layout of the residual check: 4 × f64 keys
    //! per 256-bit vector, probe and bound broadcast; `vsubpd` → optional
    //! sign-bit clear (`vandpd` with `0x7fff…`) → ordered-quiet `vcmppd` →
    //! `vmovmskpd` packs 4 survivor bits which are OR-ed into the output
    //! word at the key's bit offset. Ordered-quiet comparisons return false
    //! on NaN operands exactly like the scalar `<`/`<=`/`>`/`>=`/`==`.

    use super::{band_accepts, CmpKind, MaskForm};
    use core::arch::x86_64::*;

    const MODE_DIRECT: u8 = 0;
    const MODE_DIFF: u8 = 1;
    const MODE_ABS: u8 = 2;

    #[target_feature(enable = "avx2")]
    unsafe fn kernel<const MODE: u8, const OP: i32, const KEY_LHS: bool>(
        keys: &[f64],
        probe: f64,
        c: f64,
        out: &mut [u64],
    ) {
        let pv = _mm256_set1_pd(probe);
        let cv = _mm256_set1_pd(c);
        let abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(i64::MAX));
        // 4 survivor bits for the vector of keys starting at `i`.
        macro_rules! step {
            ($i:expr) => {{
                let kv = _mm256_loadu_pd(keys.as_ptr().add($i));
                let m = if MODE == MODE_DIRECT {
                    if KEY_LHS {
                        _mm256_cmp_pd::<OP>(kv, pv)
                    } else {
                        _mm256_cmp_pd::<OP>(pv, kv)
                    }
                } else {
                    let d = if KEY_LHS {
                        _mm256_sub_pd(kv, pv)
                    } else {
                        _mm256_sub_pd(pv, kv)
                    };
                    let d = if MODE == MODE_ABS {
                        _mm256_and_pd(d, abs_mask)
                    } else {
                        d
                    };
                    _mm256_cmp_pd::<OP>(d, cv)
                };
                _mm256_movemask_pd(m) as u64
            }};
        }
        // Whole 64-key output words accumulate in a register — one store
        // per word instead of a read-modify-write every 4 keys.
        let n64 = keys.len() & !63;
        let mut i = 0;
        while i < n64 {
            let mut word = 0u64;
            let mut lane = 0;
            while lane < 64 {
                word |= step!(i + lane) << lane;
                lane += 4;
            }
            *out.get_unchecked_mut(i >> 6) = word;
            i += 64;
        }
        let n4 = keys.len() & !3;
        while i < n4 {
            out[i >> 6] |= step!(i) << (i & 63);
            i += 4;
        }
    }

    pub(super) unsafe fn band_mask(keys: &[f64], probe: f64, form: MaskForm, out: &mut Vec<u64>) {
        out.clear();
        out.resize(keys.len().div_ceil(64), 0);
        macro_rules! with_op {
            ($mode:ident, $op:expr, $lhs:expr, $c:expr) => {
                match ($op, $lhs) {
                    (CmpKind::Lt, true) => kernel::<$mode, _CMP_LT_OQ, true>(keys, probe, $c, out),
                    (CmpKind::Lt, false) => {
                        kernel::<$mode, _CMP_LT_OQ, false>(keys, probe, $c, out)
                    }
                    (CmpKind::Le, true) => kernel::<$mode, _CMP_LE_OQ, true>(keys, probe, $c, out),
                    (CmpKind::Le, false) => {
                        kernel::<$mode, _CMP_LE_OQ, false>(keys, probe, $c, out)
                    }
                    (CmpKind::Gt, true) => kernel::<$mode, _CMP_GT_OQ, true>(keys, probe, $c, out),
                    (CmpKind::Gt, false) => {
                        kernel::<$mode, _CMP_GT_OQ, false>(keys, probe, $c, out)
                    }
                    (CmpKind::Ge, true) => kernel::<$mode, _CMP_GE_OQ, true>(keys, probe, $c, out),
                    (CmpKind::Ge, false) => {
                        kernel::<$mode, _CMP_GE_OQ, false>(keys, probe, $c, out)
                    }
                    (CmpKind::Eq, true) => kernel::<$mode, _CMP_EQ_OQ, true>(keys, probe, $c, out),
                    (CmpKind::Eq, false) => {
                        kernel::<$mode, _CMP_EQ_OQ, false>(keys, probe, $c, out)
                    }
                }
            };
        }
        match form {
            MaskForm::Direct { op, key_is_lhs } => with_op!(MODE_DIRECT, op, key_is_lhs, 0.0),
            MaskForm::Diff { op, c, key_is_lhs } => with_op!(MODE_DIFF, op, key_is_lhs, c),
            MaskForm::AbsDiff { op, c, key_is_lhs } => with_op!(MODE_ABS, op, key_is_lhs, c),
        }
        // Scalar tail: < 4 trailing keys, same IEEE ops as the lanes.
        for i in (keys.len() & !3)..keys.len() {
            if band_accepts(form, probe, keys[i]) {
                out[i >> 6] |= 1u64 << (i & 63);
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn and_mask(keys: &[u64], mask: u64, out: &mut Vec<u64>) {
        out.clear();
        out.resize(keys.len(), 0);
        let mv = _mm256_set1_epi64x(mask as i64);
        let n4 = keys.len() & !3;
        let mut i = 0;
        while i < n4 {
            let kv = _mm256_loadu_si256(keys.as_ptr().add(i).cast());
            let r = _mm256_and_si256(kv, mv);
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), r);
            i += 4;
        }
        for j in n4..keys.len() {
            out[j] = keys[j] & mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPECIALS: [f64; 12] = [
        0.0,
        -0.0,
        1.0,
        -1.0,
        1.5e-308,  // near the subnormal boundary
        -4.9e-324, // smallest subnormal
        f64::MAX,
        f64::MIN_POSITIVE,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        -f64::NAN,
    ];

    fn all_forms() -> Vec<MaskForm> {
        let ops = [
            CmpKind::Lt,
            CmpKind::Le,
            CmpKind::Gt,
            CmpKind::Ge,
            CmpKind::Eq,
        ];
        let mut forms = Vec::new();
        for &op in &ops {
            for key_is_lhs in [true, false] {
                forms.push(MaskForm::Direct { op, key_is_lhs });
                for c in [0.25, 0.0, -1.0, f64::INFINITY, f64::NAN] {
                    forms.push(MaskForm::Diff { op, c, key_is_lhs });
                    forms.push(MaskForm::AbsDiff { op, c, key_is_lhs });
                }
            }
        }
        forms
    }

    #[test]
    fn band_mask_matches_scalar_on_specials() {
        let mut keys: Vec<f64> = Vec::new();
        for _ in 0..12 {
            keys.extend_from_slice(&SPECIALS); // 144 keys: full lanes + tail
        }
        keys.truncate(141); // force a 1-key tail
        let (mut fast, mut slow) = (Vec::new(), Vec::new());
        for form in all_forms() {
            for &probe in &SPECIALS {
                band_mask(&keys, probe, form, &mut fast);
                band_mask_scalar(&keys, probe, form, &mut slow);
                assert_eq!(fast, slow, "form {form:?} probe {probe}");
            }
        }
    }

    #[test]
    fn band_mask_random_runs() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 * 40.0 - 20.0
        };
        for n in [0usize, 1, 3, 4, 63, 64, 65, 500] {
            let keys: Vec<f64> = (0..n).map(|_| next()).collect();
            let probe = next();
            for form in [
                MaskForm::AbsDiff {
                    op: CmpKind::Lt,
                    c: 3.0,
                    key_is_lhs: true,
                },
                MaskForm::Diff {
                    op: CmpKind::Ge,
                    c: -2.0,
                    key_is_lhs: false,
                },
                MaskForm::Direct {
                    op: CmpKind::Le,
                    key_is_lhs: true,
                },
            ] {
                let (mut fast, mut slow) = (Vec::new(), Vec::new());
                band_mask(&keys, probe, form, &mut fast);
                band_mask_scalar(&keys, probe, form, &mut slow);
                assert_eq!(fast, slow, "n={n} form {form:?}");
            }
        }
    }

    #[test]
    fn mask_bit_positions_and_iteration() {
        let keys = [1.0, 5.0, 2.0, 9.0, 3.0];
        let form = MaskForm::Direct {
            op: CmpKind::Lt,
            key_is_lhs: true,
        };
        let mut out = Vec::new();
        band_mask(&keys, 4.0, form, &mut out);
        assert_eq!(out, vec![0b10101]);
        let mut hit = Vec::new();
        for_each_set(&out, |i| hit.push(i));
        assert_eq!(hit, vec![0, 2, 4]);
    }

    #[test]
    fn pdep_pext_roundtrip() {
        let cases = [
            (0u64, 0u64),
            (u64::MAX, u64::MAX),
            (0b1011, 0b0110_1100),
            (0xdead_beef, 0x00ff_00ff_00ff_00ff),
            (42, 1 << 63),
        ];
        for (src, mask) in cases {
            let dep = pdep_u64(src, mask);
            assert_eq!(dep, pdep_u64_scalar(src, mask));
            assert_eq!(pext_u64(dep, mask), pext_u64_scalar(dep, mask));
            // deposit-then-extract recovers the low bits of src
            let low = if mask.count_ones() == 64 {
                src
            } else {
                src & ((1u64 << mask.count_ones()) - 1)
            };
            assert_eq!(pext_u64(dep, mask), low);
        }
    }

    #[test]
    fn pdep_pext_random_agree_with_scalar() {
        let mut state = 0x853c49e6748fea9bu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..2000 {
            let (src, mask) = (next(), next());
            assert_eq!(pdep_u64(src, mask), pdep_u64_scalar(src, mask));
            assert_eq!(pext_u64(src, mask), pext_u64_scalar(src, mask));
        }
    }

    #[test]
    fn and_mask_matches_scalar() {
        let keys: Vec<u64> = (0..37).map(|i| i * 0x0123_4567_89ab_cdef).collect();
        let mut out = Vec::new();
        and_mask_u64(&keys, 0x0f0f_0f0f_0f0f_0f0f, &mut out);
        let expect: Vec<u64> = keys.iter().map(|&k| k & 0x0f0f_0f0f_0f0f_0f0f).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn kernels_active_reports() {
        let s = kernels_active();
        assert!(["avx2+bmi2", "avx2", "bmi2", "scalar"].contains(&s));
    }
}
