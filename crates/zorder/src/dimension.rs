//! Per-dimension quantization (paper Fig. 7, lines 1–5).

/// The quantization of one join attribute: bounds plus a resolution.
///
/// Ranges and resolutions are environment-specific and fixed when the network
/// is set up (§V-B): moderate over-estimation of the range is harmless
/// because the domain grows in powers of two; an under-estimated range clamps
/// out-of-range values to the boundary cell (false positives only).
#[derive(Debug, Clone, PartialEq)]
pub struct Dimension {
    name: String,
    min: f64,
    max: f64,
    resolution: f64,
    /// Number of cells, rounded up to a power of two.
    cells: u64,
    /// log2(cells).
    bits: u32,
}

impl Dimension {
    /// Creates a quantized dimension over `[min, max]` with step
    /// `resolution`.
    ///
    /// The raw cell count is `floor((max - min) / resolution) + 1` (paper
    /// Fig. 7 line 3), rounded up to the next power of two (line 4).
    ///
    /// # Panics
    /// Panics if `min > max`, `resolution <= 0`, or any input is non-finite —
    /// these are configuration errors.
    pub fn new(name: impl Into<String>, min: f64, max: f64, resolution: f64) -> Self {
        assert!(min.is_finite() && max.is_finite() && resolution.is_finite());
        assert!(min <= max, "dimension min must not exceed max");
        assert!(resolution > 0.0, "resolution must be positive");
        let raw = ((max - min) / resolution).floor() as u64 + 1;
        let cells = raw.next_power_of_two();
        let bits = cells.trailing_zeros();
        Self {
            name: name.into(),
            min,
            max,
            resolution,
            cells,
            bits,
        }
    }

    /// The attribute name this dimension quantizes.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Lower bound of the configured range.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound of the configured range.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The step size.
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// Number of cells (a power of two).
    pub fn cells(&self) -> u64 {
        self.cells
    }

    /// Bits needed to address a cell: `log2(cells)`.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Maps a value to its cell coordinate, clamping to the boundary cells
    /// when the value falls outside the configured range (Fig. 7 lines
    /// 10–15). Clamping can only cause false positives in the pre-join.
    #[inline]
    pub fn coordinate(&self, value: f64) -> u64 {
        let p = ((value - self.min) / self.resolution).floor();
        if p < 0.0 {
            0
        } else if p as u64 >= self.cells {
            self.cells - 1
        } else {
            p as u64
        }
    }

    /// The half-open value interval `[lo, hi)` covered by cell `coord`.
    ///
    /// Boundary cells are *extended to infinity* because out-of-range values
    /// are clamped into them: a conservative pre-join must treat the first
    /// and last cell as unbounded or clamped values could be missed.
    #[inline]
    pub fn cell_interval(&self, coord: u64) -> (f64, f64) {
        debug_assert!(coord < self.cells);
        let lo = if coord == 0 {
            f64::NEG_INFINITY
        } else {
            self.min + coord as f64 * self.resolution
        };
        let hi = if coord == self.cells - 1 {
            f64::INFINITY
        } else {
            self.min + (coord + 1) as f64 * self.resolution
        };
        (lo, hi)
    }

    /// Like [`Dimension::cell_interval`] but without the boundary extension —
    /// the literal quantization cell. Useful for display and tests.
    #[inline]
    pub fn cell_interval_literal(&self, coord: u64) -> (f64, f64) {
        debug_assert!(coord < self.cells);
        let lo = self.min + coord as f64 * self.resolution;
        (lo, lo + self.resolution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_count_rounds_to_power_of_two() {
        // 600 values and 900 values both land in [512, 1024] => 10 bits
        // (paper §V-B's example).
        let d600 = Dimension::new("d", 0.0, 599.0, 1.0);
        let d900 = Dimension::new("d", 0.0, 899.0, 1.0);
        assert_eq!(d600.bits(), 10);
        assert_eq!(d900.bits(), 10);
        assert_eq!(d600.cells(), 1024);
    }

    #[test]
    fn single_cell_dimension() {
        let d = Dimension::new("d", 5.0, 5.0, 1.0);
        assert_eq!(d.cells(), 1);
        assert_eq!(d.bits(), 0);
        assert_eq!(d.coordinate(123.0), 0);
    }

    #[test]
    fn coordinates_and_clamping() {
        let d = Dimension::new("temp", 0.0, 40.0, 0.1);
        assert_eq!(d.coordinate(0.0), 0);
        assert_eq!(d.coordinate(0.05), 0);
        assert_eq!(d.coordinate(0.1), 1);
        assert_eq!(d.coordinate(-5.0), 0); // clamped low
        assert_eq!(d.coordinate(1e9), d.cells() - 1); // clamped high
    }

    #[test]
    fn interval_contains_value() {
        let d = Dimension::new("temp", -10.0, 40.0, 0.1);
        for &v in &[-10.0, -3.7, 0.0, 21.53, 39.99] {
            let c = d.coordinate(v);
            let (lo, hi) = d.cell_interval_literal(c);
            assert!(lo <= v + 1e-9 && v < hi + 1e-9, "{v} not in [{lo},{hi})");
        }
    }

    #[test]
    fn boundary_cells_are_unbounded() {
        let d = Dimension::new("temp", 0.0, 40.0, 0.1);
        assert_eq!(d.cell_interval(0).0, f64::NEG_INFINITY);
        assert_eq!(d.cell_interval(d.cells() - 1).1, f64::INFINITY);
        let (lo, hi) = d.cell_interval(1);
        assert!(lo.is_finite() && hi.is_finite());
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn zero_resolution_panics() {
        Dimension::new("d", 0.0, 1.0, 0.0);
    }
}
