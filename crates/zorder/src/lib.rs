#![warn(missing_docs)]

//! Quantization and Z-order encoding of join-attribute tuples.
//!
//! SENS-Join (§V-B) represents a join-attribute tuple as a point in a
//! restricted, discrete, n-dimensional space:
//!
//! 1. each dimension (join attribute) is **quantized** — bounded to
//!    `[min, max]` with a step size (`resolution`); the number of cells is
//!    rounded up to a power of two so that cell coordinates are plain bit
//!    strings (paper Fig. 7),
//! 2. the per-dimension cell coordinates are **bit-interleaved** into a
//!    single *Z-number*; nearby points receive similar numbers, which is what
//!    lets the quadtree representation exploit spatial correlation
//!    (paper Fig. 6).
//!
//! Dimensions may need different bit counts. Following the paper, "each
//! dimension contributes to the bit interleaving until its bits are
//! exhausted": interleaving proceeds MSB-first, level by level; at level `l`
//! every dimension with more than `l` bits contributes one bit. The sequence
//! of per-level contribution counts is the [`ZSpace::level_schedule`], which
//! the quadtree crate consumes as its branching structure.
//!
//! Quantization reduces accuracy, never correctness: the pre-computation may
//! produce false *positives* (tuples shipped although they do not join) but a
//! value is always mapped to the cell containing it (clamped to the boundary
//! cell when out of range), so no joining tuple is ever missed as long as the
//! pre-join evaluates conditions conservatively over cells (see
//! [`ZSpace::cell_box`]).
//!
//! # Example
//!
//! ```
//! use sensjoin_zorder::{Dimension, ZSpace};
//!
//! // temperature in [0, 40] at 0.1 degC, x in [0, 1050] at 1 m
//! let space = ZSpace::new(vec![
//!     Dimension::new("temp", 0.0, 40.0, 0.1),
//!     Dimension::new("x", 0.0, 1050.0, 1.0),
//! ]).unwrap();
//! let z = space.encode(&[21.53, 400.0]);
//! let cells = space.decode(z);
//! let cell_box = space.cell_box(z);
//! assert!(cell_box[0].0 <= 21.53 && 21.53 < cell_box[0].1 + 1e-9);
//! assert_eq!(space.encode_cells(&cells), z);
//! ```

mod dimension;
mod space;

pub use dimension::Dimension;
pub use space::{ZSpace, ZSpaceError};

/// A Z-number: the bit-interleaved, quantized image of a join-attribute
/// tuple. At most 64 bits (enforced by [`ZSpace::new`]).
pub type ZNumber = u64;
