//! The multi-dimensional quantized space and its Z-order linearization.

use crate::{Dimension, ZNumber};

/// Errors building a [`ZSpace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZSpaceError {
    /// The combined coordinates need more than 64 bits.
    TooManyBits {
        /// Bits the configuration would need.
        needed: u32,
    },
    /// A space needs at least one dimension.
    NoDimensions,
}

impl std::fmt::Display for ZSpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZSpaceError::TooManyBits { needed } => {
                write!(f, "z-space needs {needed} bits, more than the 64 supported")
            }
            ZSpaceError::NoDimensions => write!(f, "z-space needs at least one dimension"),
        }
    }
}

impl std::error::Error for ZSpaceError {}

/// A restricted, discrete, n-dimensional space with a Z-order linearization.
///
/// The Z-number of a point is computed by MSB-first bit interleaving of its
/// cell coordinates. Level `l` of the interleaving takes one bit from every
/// dimension that still has bits left (i.e. whose `bits() > l`); dimensions
/// with fewer bits stop contributing at deeper levels, matching the paper's
/// "each dimension contributes to the bit interleaving until its bits are
/// exhausted" (§V-B). Level 0 therefore halves *every* dimension — the
/// classic region-quadtree decomposition.
#[derive(Debug, Clone)]
pub struct ZSpace {
    dims: Vec<Dimension>,
    /// Number of contributing dimensions per interleave level (top first).
    schedule: Vec<u8>,
    total_bits: u32,
    /// Per-dimension deposit mask: the Z-number bit positions this
    /// dimension's coordinate bits land on. Coordinate bit 0 (LSB) maps to
    /// the lowest set mask bit, matching the MSB-first interleave schedule,
    /// so `encode_cells` is `OR_d pdep(coord_d, mask_d)` and `decode` is
    /// `pext(z, mask_d)`.
    dim_masks: Vec<u64>,
}

impl ZSpace {
    /// Builds a space from quantized dimensions.
    pub fn new(dims: Vec<Dimension>) -> Result<Self, ZSpaceError> {
        if dims.is_empty() {
            return Err(ZSpaceError::NoDimensions);
        }
        let total_bits: u32 = dims.iter().map(Dimension::bits).sum();
        if total_bits > 64 {
            return Err(ZSpaceError::TooManyBits { needed: total_bits });
        }
        let max_bits = dims.iter().map(Dimension::bits).max().unwrap_or(0);
        let schedule: Vec<u8> = (0..max_bits)
            .map(|l| dims.iter().filter(|d| d.bits() > l).count() as u8)
            .collect();
        // Walk the interleave in emission order (level-major, declaration
        // order within a level) and record where each dimension's bits land.
        let mut dim_masks = vec![0u64; dims.len()];
        let mut pos = total_bits;
        for l in 0..max_bits {
            for (i, d) in dims.iter().enumerate() {
                if d.bits() > l {
                    pos -= 1;
                    dim_masks[i] |= 1u64 << pos;
                }
            }
        }
        Ok(Self {
            dims,
            schedule,
            total_bits,
            dim_masks,
        })
    }

    /// The dimensions, in declaration order.
    pub fn dims(&self) -> &[Dimension] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.dims.len()
    }

    /// Total bits of a Z-number in this space.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Bits consumed at each interleave level, topmost level first. This is
    /// the branching structure of the region quadtree built over this space:
    /// a level consuming `k` bits has `2^k` children.
    pub fn level_schedule(&self) -> &[u8] {
        &self.schedule
    }

    /// Quantizes a point and interleaves its coordinates into a Z-number
    /// (paper Fig. 7, `EncodeTuple`). Values outside the configured ranges
    /// are clamped to the boundary cells.
    ///
    /// # Panics
    /// Panics if `values.len() != self.arity()`.
    pub fn encode(&self, values: &[f64]) -> ZNumber {
        assert_eq!(values.len(), self.dims.len(), "arity mismatch");
        let coords: Vec<u64> = self
            .dims
            .iter()
            .zip(values)
            .map(|(d, &v)| d.coordinate(v))
            .collect();
        self.encode_cells(&coords)
    }

    /// Interleaves already-quantized cell coordinates.
    ///
    /// Each dimension's bits are deposited onto its precomputed interleave
    /// mask in one `pdep` (BMI2 when the `simd` feature is active and the
    /// CPU supports it) — bit-identical to the level-schedule loop of
    /// [`ZSpace::encode_cells_reference`].
    ///
    /// # Panics
    /// Panics in debug builds if a coordinate is out of range.
    pub fn encode_cells(&self, coords: &[u64]) -> ZNumber {
        assert_eq!(coords.len(), self.dims.len(), "arity mismatch");
        let mut z: u64 = 0;
        for ((&c, &m), d) in coords.iter().zip(&self.dim_masks).zip(&self.dims) {
            debug_assert!(c < d.cells(), "coordinate {c} out of range");
            z |= sensjoin_simd::pdep_u64(c, m);
        }
        z
    }

    /// The paper's level-by-level interleave (Fig. 7, `EncodeTuple`): kept
    /// as the reference for equivalence tests and the scalar side of the
    /// interleave microbenchmark.
    pub fn encode_cells_reference(&self, coords: &[u64]) -> ZNumber {
        assert_eq!(coords.len(), self.dims.len(), "arity mismatch");
        let mut z: u64 = 0;
        for (l, _) in self.schedule.iter().enumerate() {
            let l = l as u32;
            for (d, &c) in self.dims.iter().zip(coords) {
                debug_assert!(c < d.cells(), "coordinate {c} out of range");
                if d.bits() > l {
                    let bit = (c >> (d.bits() - 1 - l)) & 1;
                    z = (z << 1) | bit;
                }
            }
        }
        z
    }

    /// Recovers the cell coordinates from a Z-number (inverse of
    /// [`ZSpace::encode_cells`]): one `pext` per dimension.
    pub fn decode(&self, z: ZNumber) -> Vec<u64> {
        self.dim_masks
            .iter()
            .map(|&m| sensjoin_simd::pext_u64(z, m))
            .collect()
    }

    /// The level-by-level deinterleave reference (inverse of
    /// [`ZSpace::encode_cells_reference`]).
    pub fn decode_reference(&self, z: ZNumber) -> Vec<u64> {
        let mut coords = vec![0u64; self.dims.len()];
        let mut pos = self.total_bits;
        for (l, _) in self.schedule.iter().enumerate() {
            let l = l as u32;
            for (i, d) in self.dims.iter().enumerate() {
                if d.bits() > l {
                    pos -= 1;
                    coords[i] = (coords[i] << 1) | ((z >> pos) & 1);
                }
            }
        }
        coords
    }

    /// The per-dimension interleave deposit masks (bit positions of each
    /// dimension's coordinate bits inside a Z-number).
    pub fn interleave_masks(&self) -> &[u64] {
        &self.dim_masks
    }

    /// The n-dimensional value box covered by the cell of `z`: one
    /// `(lo, hi)` interval per dimension. Boundary cells extend to infinity
    /// (see [`Dimension::cell_interval`]) so a conservative pre-join never
    /// misses clamped values.
    pub fn cell_box(&self, z: ZNumber) -> Vec<(f64, f64)> {
        self.decode(z)
            .iter()
            .zip(&self.dims)
            .map(|(&c, d)| d.cell_interval(c))
            .collect()
    }

    /// Convenience: quantize a point and return the *representative* value of
    /// its cell per dimension (the cell's midpoint, which re-encodes to the
    /// same cell regardless of floating-point rounding). Two points encode to
    /// the same Z-number iff they share all representatives.
    pub fn representative(&self, values: &[f64]) -> Vec<f64> {
        assert_eq!(values.len(), self.dims.len(), "arity mismatch");
        self.dims
            .iter()
            .zip(values)
            .map(|(d, &v)| d.min() + (d.coordinate(v) as f64 + 0.5) * d.resolution())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_2x2() -> ZSpace {
        // Two dimensions with 4 cells each (2 bits): classic quadtree.
        ZSpace::new(vec![
            Dimension::new("x", 0.0, 3.0, 1.0),
            Dimension::new("y", 0.0, 3.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn paper_fig6c_bit_interleaving() {
        // Fig. 6c: 4x4 grid, cell (x=1, y=2) -> interleave x=01, y=10.
        // MSB-first interleave, x first: 0,1,1,0 = 6... The figure numbers
        // cells row-major in z-order; what we verify here is the defining
        // property instead of a picture: z of (x,y) is the standard Morton
        // code.
        let s = space_2x2();
        // Exhaustively check Morton order for 4x4.
        let mut seen = std::collections::BTreeSet::new();
        for x in 0..4u64 {
            for y in 0..4u64 {
                let z = s.encode_cells(&[x, y]);
                assert!(z < 16);
                assert!(seen.insert(z), "z collision at ({x},{y})");
                assert_eq!(s.decode(z), vec![x, y]);
            }
        }
    }

    #[test]
    fn morton_locality_quadrants() {
        let s = space_2x2();
        // All cells with x<2 and y<2 (first quadrant) share the top 2 bits.
        let prefixes: std::collections::BTreeSet<u64> = (0..2u64)
            .flat_map(|x| (0..2u64).map(move |y| (x, y)))
            .map(|(x, y)| s.encode_cells(&[x, y]) >> 2)
            .collect();
        assert_eq!(prefixes.len(), 1);
    }

    #[test]
    fn unequal_dims_schedule() {
        let s = ZSpace::new(vec![
            Dimension::new("a", 0.0, 7.0, 1.0), // 3 bits
            Dimension::new("b", 0.0, 1.0, 1.0), // 1 bit
        ])
        .unwrap();
        assert_eq!(s.total_bits(), 4);
        // Level 0: both dims contribute; levels 1 and 2: only dim a.
        assert_eq!(s.level_schedule(), &[2, 1, 1]);
        for a in 0..8u64 {
            for b in 0..2u64 {
                let z = s.encode_cells(&[a, b]);
                assert_eq!(s.decode(z), vec![a, b]);
            }
        }
    }

    #[test]
    fn encode_clamps_out_of_range() {
        let s = space_2x2();
        assert_eq!(s.encode(&[-100.0, 0.0]), s.encode(&[0.0, 0.0]));
        assert_eq!(s.encode(&[100.0, 3.9]), s.encode(&[3.0, 3.0]));
    }

    #[test]
    fn cell_box_covers_value() {
        let s = ZSpace::new(vec![
            Dimension::new("temp", -5.0, 45.0, 0.1),
            Dimension::new("x", 0.0, 1050.0, 1.0),
        ])
        .unwrap();
        let v = [21.57, 433.2];
        let b = s.cell_box(s.encode(&v));
        for (i, (lo, hi)) in b.iter().enumerate() {
            assert!(*lo <= v[i] && v[i] < *hi);
        }
    }

    #[test]
    fn representative_identifies_cells() {
        let s = space_2x2();
        assert_eq!(s.representative(&[1.2, 2.7]), vec![1.5, 2.5]);
    }

    #[test]
    fn too_many_bits_rejected() {
        let err = ZSpace::new(vec![
            Dimension::new("a", 0.0, 1e12, 0.001), // way past 64 bits alone? 2^50 cells
            Dimension::new("b", 0.0, 1e12, 0.001),
        ])
        .unwrap_err();
        matches!(err, ZSpaceError::TooManyBits { .. });
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(ZSpace::new(vec![]).unwrap_err(), ZSpaceError::NoDimensions);
    }

    #[test]
    fn pdep_interleave_matches_reference() {
        // Unequal bit widths exercise the mask layout hardest: 3+1+2 bits.
        let s = ZSpace::new(vec![
            Dimension::new("a", 0.0, 7.0, 1.0), // 3 bits
            Dimension::new("b", 0.0, 1.0, 1.0), // 1 bit
            Dimension::new("c", 0.0, 3.0, 1.0), // 2 bits
        ])
        .unwrap();
        for a in 0..8u64 {
            for b in 0..2u64 {
                for c in 0..4u64 {
                    let coords = [a, b, c];
                    let z = s.encode_cells(&coords);
                    assert_eq!(z, s.encode_cells_reference(&coords));
                    assert_eq!(s.decode(z), coords.to_vec());
                    assert_eq!(s.decode_reference(z), coords.to_vec());
                }
            }
        }
    }

    #[test]
    fn interleave_masks_partition_the_key() {
        let s = ZSpace::new(vec![
            Dimension::new("a", 0.0, 7.0, 1.0),
            Dimension::new("b", 0.0, 1.0, 1.0),
        ])
        .unwrap();
        let masks = s.interleave_masks();
        assert_eq!(masks.iter().map(|m| m.count_ones()).sum::<u32>(), 4);
        assert_eq!(masks.iter().fold(0, |acc, m| acc | m), 0b1111);
        assert_eq!(masks[0] & masks[1], 0);
        // Level 0 takes one bit from each dim, a first: a gets bit 3, b bit 2.
        assert_eq!(masks[1], 0b0100);
    }

    #[test]
    fn z_order_is_monotone_in_prefix() {
        // The DFS order of a quadtree equals ascending z-number order: check
        // that encode_cells is a bijection onto 0..2^total_bits for a full
        // grid (already implied by fig6c test) and that sorting by z groups
        // quadrants contiguously.
        let s = space_2x2();
        let mut zs: Vec<(u64, (u64, u64))> = (0..4u64)
            .flat_map(|x| (0..4u64).map(move |y| (x, y)))
            .map(|(x, y)| (s.encode_cells(&[x, y]), (x, y)))
            .collect();
        zs.sort();
        // First four entries must be the first quadrant.
        for (_, (x, y)) in &zs[..4] {
            assert!(*x < 2 && *y < 2);
        }
    }
}
