//! Property-based tests for quantization and Z-order encoding.

use proptest::prelude::*;
use sensjoin_zorder::{Dimension, ZSpace};

/// Strategy for a plausible sensor dimension.
fn dim_strategy(name: &'static str) -> impl Strategy<Value = Dimension> {
    (
        -1000.0f64..1000.0,
        1.0f64..2000.0,
        prop_oneof![Just(0.1), Just(0.5), Just(1.0), Just(5.0)],
    )
        .prop_map(move |(min, span, res)| Dimension::new(name, min, min + span, res))
}

fn space_strategy() -> impl Strategy<Value = ZSpace> {
    prop_oneof![
        dim_strategy("a").prop_map(|a| ZSpace::new(vec![a]).unwrap()),
        (dim_strategy("a"), dim_strategy("b")).prop_map(|(a, b)| ZSpace::new(vec![a, b]).unwrap()),
        (dim_strategy("a"), dim_strategy("b"), dim_strategy("c"))
            .prop_map(|(a, b, c)| ZSpace::new(vec![a, b, c]).unwrap()),
    ]
}

proptest! {
    /// encode_cells and decode are mutual inverses on valid coordinates.
    #[test]
    fn encode_decode_roundtrip(space in space_strategy(), seed in any::<u64>()) {
        let coords: Vec<u64> = space
            .dims()
            .iter()
            .enumerate()
            .map(|(i, d)| {
                // Pseudo-random in-range coordinate derived from the seed.
                let h = seed.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(i as u32 * 7);
                h % d.cells()
            })
            .collect();
        let z = space.encode_cells(&coords);
        prop_assert_eq!(space.decode(z), coords);
        prop_assert!(z < (1u128 << space.total_bits()) as u64 || space.total_bits() == 64);
    }

    /// Every encoded value lies inside (or on the boundary of) its cell box.
    #[test]
    fn value_inside_cell_box(
        space in space_strategy(),
        raw in prop::collection::vec(-2000.0f64..4000.0, 3),
    ) {
        let vals: Vec<f64> = raw.iter().take(space.arity()).copied().collect();
        prop_assume!(vals.len() == space.arity());
        let z = space.encode(&vals);
        let cbox = space.cell_box(z);
        for (i, (lo, hi)) in cbox.iter().enumerate() {
            // Clamped values are covered by the infinite boundary cells.
            prop_assert!(*lo <= vals[i] && vals[i] < *hi + 1e-9,
                "dim {i}: {} not in [{lo}, {hi})", vals[i]);
        }
    }

    /// Quantization is idempotent: encoding a cell representative returns the
    /// same Z-number.
    #[test]
    fn representative_fixed_point(
        space in space_strategy(),
        raw in prop::collection::vec(-500.0f64..2500.0, 3),
    ) {
        let vals: Vec<f64> = raw.iter().take(space.arity()).copied().collect();
        prop_assume!(vals.len() == space.arity());
        let z = space.encode(&vals);
        let rep = space.representative(&vals);
        prop_assert_eq!(space.encode(&rep), z);
    }

    /// Z-order preserves prefix containment: halving every dimension's
    /// coordinate (level-0 quadrant) equals dropping the top schedule bits.
    #[test]
    fn quadrant_prefix_property(seed in any::<u64>()) {
        let space = ZSpace::new(vec![
            Dimension::new("x", 0.0, 255.0, 1.0),
            Dimension::new("y", 0.0, 255.0, 1.0),
        ]).unwrap();
        let x = seed % 256;
        let y = (seed >> 8) % 256;
        let z = space.encode_cells(&[x, y]);
        let zq = space.encode_cells(&[x / 2, y / 2]);
        // Dropping the bottom interleave level (2 bits) of z and of the
        // half-resolution grid must agree: both describe the parent quadrant.
        prop_assert_eq!(z >> 2, zq & ((1 << 14) - 1));
    }
}
