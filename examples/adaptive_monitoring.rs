//! Long-running monitoring with adaptive method selection and temporal
//! filter reuse — combining the cost model ([20]-style analysis) and the
//! §VIII continuous-query extension.
//!
//! A monitoring query runs every period while the environment drifts. The
//! adaptive executor re-plans each round from the fraction it observed last
//! round; the continuous executor ships only deltas. This example races
//! them against naive per-round re-execution.
//!
//! ```sh
//! cargo run --release --example adaptive_monitoring
//! ```

use sensjoin::core::workload::RangeQueryFamily;
use sensjoin::core::{AdaptiveJoin, ContinuousSensJoin};
use sensjoin::prelude::*;

fn main() {
    let mut snet = SensorNetworkBuilder::new()
        .area(Area::new(700.0, 700.0))
        .placement(Placement::UniformRandom { n: 700 })
        .base(BaseChoice::NearestCorner)
        .seed(11)
        .build()
        .expect("deployment");

    // A Q1-style monitoring query calibrated to ~5 % of the nodes.
    let family = RangeQueryFamily::ratio_33();
    let cal = family.calibrate(&snet, 0.05);
    let sql = cal.sql.replace(" ONCE", " SAMPLE PERIOD 60");
    println!("query: {sql}\n");
    let cq = snet.compile(&parse(&sql).expect("parse")).expect("compile");

    // The environment: the same physical field, re-measured each round with
    // fresh noise (slow drift).
    let fields = |round: u64| {
        let mut f = presets::indoor_climate();
        for s in &mut f {
            s.noise = 0.002 * (round + 1) as f64;
        }
        f
    };

    let mut naive_total = 0u64;
    let mut adaptive_total = 0u64;
    let mut delta_total = 0u64;
    let mut adaptive = AdaptiveJoin::new();
    let mut continuous = ContinuousSensJoin::with_epsilon(0.1);
    println!(
        "{:>5} {:>14} {:>14} {:>16}  adaptive chose",
        "round", "naive [pkts]", "adaptive", "continuous-delta"
    );
    for round in 0..6u64 {
        snet.resample(&fields(round), 42);
        let naive = SensJoin::default().execute(&mut snet, &cq).expect("naive");
        let adapt = adaptive.execute_round(&mut snet, &cq).expect("adaptive");
        let delta = continuous
            .execute_round(&mut snet, &cq)
            .expect("continuous");
        assert!(naive.result.same_result(&adapt.result));
        naive_total += naive.stats.total_tx_packets();
        adaptive_total += adapt.stats.total_tx_packets();
        delta_total += delta.stats.total_tx_packets();
        println!(
            "{round:>5} {:>14} {:>14} {:>16}  {:?}",
            naive.stats.total_tx_packets(),
            adapt.stats.total_tx_packets(),
            delta.stats.total_tx_packets(),
            adaptive.last_choice().expect("ran")
        );
    }
    println!(
        "\ntotals over 6 rounds: naive {naive_total}, adaptive {adaptive_total}, \
         continuous-delta {delta_total}"
    );
    println!(
        "the delta executor cuts warm rounds by {:.0} % (ε = 0.1: results are \
         exact up to 0.1-unit attribute staleness)",
        100.0 * (1.0 - delta_total as f64 / naive_total as f64)
    );
}
