//! The paper's Q1 (§I, Example 1): a climate researcher asks for the
//! minimal distance between two points with a temperature difference of
//! more than ten degrees — an aggregate join query.
//!
//! ```sh
//! cargo run --release --example climate_min_distance
//! ```

use sensjoin::core::{PHASE_COLLECTION, PHASE_FILTER, PHASE_FINAL};
use sensjoin::prelude::*;

fn main() {
    // Outdoor deployment with moderate microclimate swings: a 10-degree
    // difference occurs between a handful of node pairs (~5 % of the nodes
    // contribute — the paper's default selectivity regime).
    let mut fields = presets::outdoor_environment();
    fields[0] = FieldSpec::simple("temp", 15.0, 2.4, 180.0, 0.1);
    let mut snet = SensorNetworkBuilder::new()
        .area(Area::new(800.0, 800.0))
        .placement(Placement::UniformRandom { n: 800 })
        .fields(fields)
        .base(BaseChoice::NearestCorner)
        .seed(7)
        .build()
        .expect("deployment");

    let q1 = parse(
        "SELECT MIN(distance(A.x, A.y, B.x, B.y)) \
         FROM Sensors A, Sensors B \
         WHERE A.temp - B.temp > 10.0 \
         ONCE",
    )
    .expect("Q1 parses verbatim");
    let cq = snet.compile(&q1).expect("compile");
    println!(
        "Q1 join attributes: {:?} of {:?} referenced ({}% ratio)",
        cq.join_attrs(0).len(),
        cq.referenced_attrs(0).len(),
        100 * cq.join_attrs(0).len() / cq.referenced_attrs(0).len()
    );

    let external = ExternalJoin.execute(&mut snet, &cq).expect("external");
    let sens = SensJoin::default()
        .execute(&mut snet, &cq)
        .expect("SENS-Join");
    assert!(external.result.same_result(&sens.result));

    match &sens.result {
        JoinResult::Aggregate(vals) => match vals[0] {
            Some(d) => println!(
                "minimal distance between points differing by >10 degC: {d:.1} m \
                 ({} node pairs qualify)",
                sens.contributors.len()
            ),
            None => println!("no pair of nodes differs by more than 10 degC"),
        },
        _ => unreachable!("Q1 is an aggregate query"),
    }

    println!("\nSENS-Join cost breakdown (the Fig. 15 view):");
    for phase in [PHASE_COLLECTION, PHASE_FILTER, PHASE_FINAL] {
        let st = sens.stats.phase(phase);
        println!(
            "  {phase:<32} {:>6} packets {:>8} bytes",
            st.tx_packets, st.tx_bytes
        );
    }
    println!(
        "  {:<32} {:>6} packets {:>8} bytes",
        "external join (total)",
        external.stats.total_tx_packets(),
        external.stats.total_tx_bytes()
    );

    // The per-node view (Fig. 11): how the most loaded nodes fare.
    let (ext_node, ext_max) = external.stats.most_loaded().unwrap();
    let (sj_node, sj_max) = sens.stats.most_loaded().unwrap();
    println!(
        "\nmost loaded node: external {ext_max} packets (at {ext_node}), \
         SENS-Join {sj_max} packets (at {sj_node}) -> {:.1}x relief",
        ext_max as f64 / sj_max.max(1) as f64
    );
}
