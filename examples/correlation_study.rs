//! The paper's Q2 (§I, Example 2) and the break-even phenomenon.
//!
//! Q2 joins node pairs with *similar* temperatures at least 100 m apart.
//! Under SQL semantics a symmetric band like `|A.temp - B.temp| < 0.3`
//! matches enormously many pairs on smooth physical fields — nearly every
//! node contributes, and the paper's own analysis (§VI-A) predicts that the
//! external join wins once more than roughly 60–80 % of the nodes join.
//! This example demonstrates both regimes honestly: the verbatim Q2 beyond
//! the break-even point, and a selective variant where the filtering pays.
//!
//! ```sh
//! cargo run --release --example correlation_study
//! ```

use sensjoin::prelude::*;

fn deploy() -> SensorNetwork {
    SensorNetworkBuilder::new()
        .area(Area::new(700.0, 700.0))
        .placement(Placement::UniformRandom { n: 600 })
        .fields(presets::indoor_climate())
        .base(BaseChoice::NearestCorner)
        .seed(31)
        .build()
        .expect("deployment")
}

fn run(snet: &mut SensorNetwork, sql: &str) -> (f64, u64, u64, usize) {
    let q = parse(sql).expect("parse");
    let cq = snet.compile(&q).expect("compile");
    let ext = ExternalJoin.execute(snet, &cq).expect("external");
    let sens = SensJoin::default().execute(snet, &cq).expect("SENS-Join");
    assert!(ext.result.same_result(&sens.result));
    (
        ext.contributor_fraction(snet.len()),
        ext.stats.total_tx_packets(),
        sens.stats.total_tx_packets(),
        sens.result.len(),
    )
}

fn main() {
    let mut snet = deploy();

    println!("== the verbatim Q2: a low-selectivity regime ==");
    let q2 = "SELECT |A.hum - B.hum|, |A.pres - B.pres| \
              FROM Sensors A, Sensors B \
              WHERE |A.temp - B.temp| < 0.3 \
              AND distance(A.x, A.y, B.x, B.y) > 100 ONCE";
    let (frac, ext, sens, rows) = run(&mut snet, q2);
    println!(
        "  {rows} result rows, {:.0} % of nodes contribute",
        100.0 * frac
    );
    println!("  external {ext} packets vs SENS-Join {sens} packets");
    println!(
        "  -> past the paper's 60-80 % break-even: the external join is \
         optimal here, exactly as §VI-A predicts.\n"
    );

    println!("== a selective correlation query: SENS-Join's regime ==");
    // The researcher narrows the question: pairs where the *humidity*
    // contradicts the temperature similarity — a strong anomaly, rare by
    // construction.
    let selective = "SELECT |A.hum - B.hum|, |A.pres - B.pres| \
                     FROM Sensors A, Sensors B \
                     WHERE |A.temp - B.temp| < 0.3 \
                     AND A.hum - B.hum > 8.0 \
                     AND distance(A.x, A.y, B.x, B.y) > 100 ONCE";
    let (frac, ext, sens, rows) = run(&mut snet, selective);
    println!(
        "  {rows} result rows, {:.1} % of nodes contribute",
        100.0 * frac
    );
    println!("  external {ext} packets vs SENS-Join {sens} packets");
    println!(
        "  -> {:.0} % of the transmissions saved by the pre-computation.",
        100.0 * (1.0 - sens as f64 / ext as f64)
    );

    println!("\n== sweeping the band width: where is the crossover? ==");
    println!(
        "  {:<44} {:>7} {:>9} {:>9}",
        "extra condition", "frac", "external", "SENS-Join"
    );
    for hum_delta in [14.0, 12.0, 10.0, 8.0, 6.0, 0.0] {
        let sql = if hum_delta > 0.0 {
            format!(
                "SELECT A.pres, B.pres FROM Sensors A, Sensors B \
                 WHERE |A.temp - B.temp| < 0.3 AND A.hum - B.hum > {hum_delta} \
                 AND distance(A.x, A.y, B.x, B.y) > 100 ONCE"
            )
        } else {
            "SELECT A.pres, B.pres FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.3 \
             AND distance(A.x, A.y, B.x, B.y) > 100 ONCE"
                .to_owned()
        };
        let (frac, ext, sens, _) = run(&mut snet, &sql);
        let label = if hum_delta > 0.0 {
            format!("A.hum - B.hum > {hum_delta}")
        } else {
            "(none)".to_owned()
        };
        println!(
            "  {label:<44} {:>6.1}% {:>9} {:>9}{}",
            100.0 * frac,
            ext,
            sens,
            if sens < ext { "  << wins" } else { "" }
        );
    }
    println!(
        "\nThe crossover sits where the paper's Fig. 10 places it: once most \
         nodes contribute, shipping everything once is cheaper than \
         pre-computing."
    );
}
