//! Error tolerance (§IV-F): links fail mid-query, the collection tree
//! repairs itself, the query re-executes — and the answer stays exact.
//!
//! ```sh
//! cargo run --release --example failure_recovery
//! ```

use sensjoin::core::execute_with_recovery;
use sensjoin::prelude::*;

fn main() {
    let mut snet = SensorNetworkBuilder::new()
        .area(Area::new(500.0, 500.0))
        .placement(Placement::UniformRandom { n: 400 })
        .seed(13)
        .build()
        .expect("deployment");
    let query = parse(
        "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
         WHERE A.temp - B.temp > 5.0 ONCE",
    )
    .expect("parse");
    let cq = snet.compile(&query).expect("compile");

    // Reference run on the intact network.
    let reference = SensJoin::default()
        .execute(&mut snet, &cq)
        .expect("reference");
    println!(
        "intact network: {} rows, {} packets",
        reference.result.len(),
        reference.stats.total_tx_packets()
    );

    for pct in [1u32, 3, 5] {
        // Fresh deployment (same seed -> same topology and data).
        let mut snet = SensorNetworkBuilder::new()
            .area(Area::new(500.0, 500.0))
            .placement(Placement::UniformRandom { n: 400 })
            .seed(13)
            .build()
            .expect("deployment");
        let failures =
            LinkFailures::sample(snet.net().topology(), pct as f64 / 100.0, 1000 + pct as u64);
        let rec = execute_with_recovery(&SensJoin::default(), &mut snet, &cq, &failures)
            .expect("recovered execution");
        let partitioned = snet.net().routing().unreachable().len();
        let exact = partitioned == 0 && rec.outcome.result.same_result(&reference.result);
        println!(
            "{pct} % links down: {} failed links, {} tree links hit, {} attempt(s), \
             {} packets total{}{}",
            failures.len(),
            rec.affected_links,
            rec.attempts,
            rec.outcome.stats.total_tx_packets(),
            if partitioned > 0 {
                format!(", {partitioned} nodes partitioned away")
            } else {
                String::new()
            },
            if exact { ", result exact" } else { "" },
        );
    }
}
