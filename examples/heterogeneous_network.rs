//! A heterogeneous network (§III): two node groups form different relations
//! with different schemas, joined across groups.
//!
//! ```sh
//! cargo run --release --example heterogeneous_network
//! ```

use sensjoin::prelude::*;
use sensjoin::relation::{AttrType, Attribute, Schema, SensorRelation};

fn main() {
    let n = 400usize;
    // Machine-mounted vibration sensors (even ids) and ambient climate
    // sensors (odd ids) — an industrial-maintenance deployment.
    let machines = Schema::new(
        "Machines",
        vec![
            Attribute::new("x", AttrType::Meters),
            Attribute::new("y", AttrType::Meters),
            Attribute::new("temp", AttrType::Celsius),
            Attribute::new("volt", AttrType::Volts),
        ],
    );
    let ambient = Schema::new(
        "Ambient",
        vec![
            Attribute::new("x", AttrType::Meters),
            Attribute::new("y", AttrType::Meters),
            Attribute::new("temp", AttrType::Celsius),
            Attribute::new("hum", AttrType::Percent),
        ],
    );
    let mut fields = presets::indoor_climate();
    fields.push(FieldSpec::simple("volt", 3.1, 0.2, 50.0, 0.02));
    let mut snet = SensorNetworkBuilder::new()
        .area(Area::new(500.0, 500.0))
        .placement(Placement::UniformRandom { n })
        .fields(fields)
        .base(BaseChoice::NearestCorner)
        .seed(77)
        .relations(vec![
            SensorRelation::over_nodes(machines, (0..n as u32).step_by(2).map(NodeId)),
            SensorRelation::over_nodes(ambient, (1..n as u32).step_by(2).map(NodeId)),
        ])
        .build()
        .expect("deployment");

    // Which machines run hotter than the ambient air nearby would suggest?
    // Join machines against ambient sensors within 60 m that read much
    // cooler temperatures. (Spatial correlation makes nearby readings
    // similar, so a 1-degree local anomaly is already rare.)
    let query = parse(
        "SELECT M.volt, A.hum \
         FROM Machines M, Ambient A \
         WHERE M.temp - A.temp > 1.0 \
         AND distance(M.x, M.y, A.x, A.y) < 60 \
         ONCE",
    )
    .expect("parse");
    let cq = snet.compile(&query).expect("compile");

    let ext = ExternalJoin.execute(&mut snet, &cq).expect("external");
    let sens = SensJoin::default()
        .execute(&mut snet, &cq)
        .expect("SENS-Join");
    assert!(ext.result.same_result(&sens.result));

    println!(
        "{} machine/ambient pairs flagged out of {} machines and {} ambient sensors",
        sens.result.len(),
        n / 2,
        n / 2
    );
    if let JoinResult::Rows(rows) = &sens.result {
        for row in rows.iter().take(5) {
            println!(
                "  machine at {:.2} V, ambient humidity {:.1} %",
                row[0], row[1]
            );
        }
        if rows.len() > 5 {
            println!("  ... and {} more", rows.len() - 5);
        }
    }
    println!(
        "\ncost: SENS-Join {} packets vs external {} packets",
        sens.stats.total_tx_packets(),
        ext.stats.total_tx_packets()
    );
}
