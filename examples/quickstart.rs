//! Quickstart: deploy a network, calibrate a query to the paper's default
//! selectivity, run it with both join methods, compare the costs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sensjoin::core::workload::RangeQueryFamily;
use sensjoin::prelude::*;

fn main() {
    // 1. Deploy 500 sensor nodes over 600 m x 600 m with Intel-Lab-like
    //    climate data. Everything is seeded and exactly reproducible.
    let mut snet = SensorNetworkBuilder::new()
        .area(Area::new(600.0, 600.0))
        .placement(Placement::UniformRandom { n: 500 })
        .fields(presets::indoor_climate())
        .base(BaseChoice::NearestCorner)
        .seed(2026)
        .build()
        .expect("deployment");
    println!(
        "deployed {} nodes, routing tree depth {}",
        snet.len(),
        snet.net().routing().max_depth()
    );

    // 2. The paper's experiment family: one join attribute (temp) out of
    //    three referenced, with the threshold calibrated so that ~5 % of the
    //    nodes contribute to the result (the paper's default setting).
    let family = RangeQueryFamily::ratio_33();
    let calibrated = family.calibrate(&snet, 0.05);
    println!(
        "query ({:.1} % of nodes contribute):\n  {}",
        100.0 * calibrated.achieved_fraction,
        calibrated.sql
    );
    let query = parse(&calibrated.sql).expect("parse");
    let cq = snet.compile(&query).expect("compile");

    // 3. Run the state-of-the-art baseline and SENS-Join.
    let external = ExternalJoin.execute(&mut snet, &cq).expect("external join");
    let sens = SensJoin::default()
        .execute(&mut snet, &cq)
        .expect("SENS-Join");

    // 4. Same answer...
    assert!(external.result.same_result(&sens.result));
    println!(
        "\nresult rows: {}   contributing nodes: {}",
        sens.result.len(),
        sens.contributors.len(),
    );

    // 5. ...at a fraction of the cost.
    println!(
        "\n               {:>12} {:>12} {:>14}",
        "packets", "bytes", "energy (mJ)"
    );
    for (name, out) in [("external", &external), ("SENS-Join", &sens)] {
        println!(
            "{name:>12}:  {:>12} {:>12} {:>14.2}",
            out.stats.total_tx_packets(),
            out.stats.total_tx_bytes(),
            out.stats.total_energy_uj() / 1000.0
        );
    }
    let saving =
        1.0 - sens.stats.total_tx_packets() as f64 / external.stats.total_tx_packets() as f64;
    println!(
        "\nSENS-Join saves {:.1} % of the transmissions.",
        100.0 * saving
    );
    println!(
        "response time: external {:.0} ms, SENS-Join {:.0} ms \
         (the pre-computation trades latency for energy, bounded by 2x)",
        external.latency_us as f64 / 1000.0,
        sens.latency_us as f64 / 1000.0
    );
}
