#![warn(missing_docs)]

//! # SENS-Join
//!
//! A full reproduction of *"Towards Efficient Processing of General-Purpose
//! Joins in Sensor Networks"* (Stern, Buchmann, Böhm — ICDE 2009): an
//! energy-efficient, general-purpose join operator for wireless sensor
//! networks, together with the entire evaluation substrate the paper used —
//! a discrete-event WSN simulator with a CTP-style routing tree and a
//! calibrated energy model, spatially correlated sensor-data generation, a
//! TinyDB-flavored SQL dialect, Z-order quantization, the pointerless
//! quadtree wire format, and from-scratch zlib/bzip2-like compression
//! baselines.
//!
//! The umbrella crate re-exports every sub-crate:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | the protocols: [`core::SensJoin`], [`core::ExternalJoin`], outcomes, workloads |
//! | [`serve`] | multi-tenant serving layer: admission, epoch batching, plan caching, metrics |
//! | [`query`] | SQL parser, compiled queries, interval arithmetic |
//! | [`sim`] | topology, routing tree, scheduler, energy model, failures |
//! | [`field`] | placements and correlated field generation |
//! | [`relation`] | schemas, tuples, sensor relations |
//! | [`zorder`] | quantization and Z-order encoding |
//! | [`quadtree`] | the compact join-attribute-set representation |
//! | [`compress`] | LZ77+Huffman and BWT compression baselines |
//!
//! ## Example
//!
//! ```
//! use sensjoin::prelude::*;
//!
//! // Deploy 300 nodes with Intel-Lab-like climate data.
//! let mut snet = SensorNetworkBuilder::new()
//!     .area(Area::new(500.0, 500.0))
//!     .placement(Placement::UniformRandom { n: 300 })
//!     .seed(7)
//!     .build()
//!     .unwrap();
//!
//! // The paper's Q1: minimal distance between points differing by > 10 °C.
//! let q = parse(
//!     "SELECT MIN(distance(A.x, A.y, B.x, B.y)) \
//!      FROM Sensors A, Sensors B WHERE A.temp - B.temp > 10.0 ONCE",
//! ).unwrap();
//! let cq = snet.compile(&q).unwrap();
//!
//! let outcome = SensJoin::default().execute(&mut snet, &cq).unwrap();
//! println!("result: {:?}", outcome.result);
//! println!("packets: {}", outcome.stats.total_tx_packets());
//! ```

pub use sensjoin_compress as compress;
pub use sensjoin_core as core;
pub use sensjoin_field as field;
pub use sensjoin_quadtree as quadtree;
pub use sensjoin_query as query;
pub use sensjoin_relation as relation;
pub use sensjoin_serve as serve;
pub use sensjoin_sim as sim;
pub use sensjoin_zorder as zorder;

/// The most common imports in one place.
pub mod prelude {
    pub use sensjoin_core::{
        execute_with_recovery, ExternalJoin, JoinMethod, JoinOutcome, JoinResult,
        QuantizationConfig, Representation, SensJoin, SensJoinConfig, SensorNetwork,
        SensorNetworkBuilder,
    };
    pub use sensjoin_field::{presets, Area, FieldSpec, Placement};
    pub use sensjoin_query::parse;
    pub use sensjoin_relation::NodeId;
    pub use sensjoin_sim::{BaseChoice, EnergyModel, LinkFailures, RadioConfig};
}
