//! End-to-end properties of the continuous-query extension (§VIII follow-on
//! work): exact per-round results at ε = 0 across random data evolutions,
//! and monotonically bounded staleness for ε > 0.

use proptest::prelude::*;
use sensjoin::core::ContinuousSensJoin;
use sensjoin::prelude::*;

fn build(seed: u64, n: usize) -> SensorNetwork {
    SensorNetworkBuilder::new()
        .area(Area::new(400.0, 400.0))
        .placement(Placement::UniformRandom { n })
        .seed(seed)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every round of the exact continuous executor returns precisely what a
    /// fresh execution would, across arbitrary snapshot evolutions.
    #[test]
    fn exact_continuous_equals_fresh(
        seed in 0u64..500,
        n in 70usize..130,
        resample_seeds in prop::collection::vec(0u64..10_000, 2..5),
        threshold in 2.0f64..6.0,
    ) {
        let mut snet = build(seed, n);
        let sql = format!(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > {threshold} SAMPLE PERIOD 30"
        );
        let cq = snet.compile(&parse(&sql).unwrap()).unwrap();
        let mut cont = ContinuousSensJoin::new();
        for (round, rs) in resample_seeds.iter().enumerate() {
            snet.resample(&presets::indoor_climate(), *rs);
            let fresh = ExternalJoin.execute(&mut snet, &cq).unwrap();
            let out = cont.execute_round(&mut snet, &cq).unwrap();
            prop_assert!(
                fresh.result.same_result(&out.result),
                "round {round}: fresh {} rows vs continuous {} rows",
                fresh.result.len(),
                out.result.len()
            );
            prop_assert_eq!(&fresh.contributors, &out.contributors);
        }
    }
}

/// Steady state is free; a cold start is not.
#[test]
fn steady_state_costs_nothing() {
    let mut snet = build(3, 120);
    let cq = snet
        .compile(
            &parse(
                "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                 WHERE A.temp - B.temp > 3.0 SAMPLE PERIOD 10",
            )
            .unwrap(),
        )
        .unwrap();
    let mut cont = ContinuousSensJoin::new();
    let cold = cont.execute_round(&mut snet, &cq).unwrap();
    assert!(cold.stats.total_tx_packets() > 0);
    for _ in 0..3 {
        let warm = cont.execute_round(&mut snet, &cq).unwrap();
        assert_eq!(warm.stats.total_tx_packets(), 0);
        assert!(warm.result.same_result(&cold.result));
    }
}

/// Per-round continuous execution is never more expensive than a fresh
/// SENS-Join execution plus the retraction overhead — and far cheaper when
/// data evolves slowly.
#[test]
fn delta_rounds_beat_fresh_reexecution_on_slow_drift() {
    let mut snet = build(9, 150);
    let cq = snet
        .compile(
            &parse(
                "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                 WHERE A.temp - B.temp > 4.0 SAMPLE PERIOD 10",
            )
            .unwrap(),
        )
        .unwrap();
    // Slow drift: same field seed, tiny noise differences.
    let fields = |noise: f64| {
        let mut f = presets::indoor_climate();
        for s in &mut f {
            s.noise = noise;
        }
        f
    };
    let mut cont = ContinuousSensJoin::with_epsilon(0.2);
    snet.resample(&fields(0.0), 42);
    cont.execute_round(&mut snet, &cq).unwrap();
    let mut warm_packets = 0u64;
    let mut fresh_packets = 0u64;
    for round in 1..=4u64 {
        snet.resample(&fields(0.001 * round as f64), 42);
        let fresh = SensJoin::default().execute(&mut snet, &cq).unwrap();
        fresh_packets += fresh.stats.total_tx_packets();
        let warm = cont.execute_round(&mut snet, &cq).unwrap();
        warm_packets += warm.stats.total_tx_packets();
    }
    assert!(
        warm_packets * 4 < fresh_packets,
        "continuous rounds ({warm_packets} pkts) should be <25 % of fresh \
         re-execution ({fresh_packets} pkts) under slow drift"
    );
}
