//! Intra-repo markdown link checker — the docs CI job.
//!
//! Walks every tracked `*.md` file, extracts `[text](target)` links,
//! and fails on any relative target that does not resolve to a file or
//! directory in the repo. For `#L<n>` / `#L<n>-L<m>` line anchors on
//! source files (the `file.rs#L123` style ARCHITECTURE.md uses), the
//! referenced line must actually exist, so anchors go stale loudly
//! instead of silently.

use std::fs;
use std::path::{Path, PathBuf};

/// Markdown files to check: the repo root and everything under
/// `crates/`, `docs/`-like trees — skipping build output and VCS state.
fn markdown_files(root: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == ".git" || name == "target" || name == "node_modules" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".md") {
                found.push(path);
            }
        }
    }
    found.sort();
    found
}

/// Extracts `(target)` of every inline `[text](target)` link. Good
/// enough for this repo's markdown: no reference-style links, no
/// targets containing unescaped parentheses.
fn link_targets(text: &str) -> Vec<(usize, String)> {
    let bytes = text.as_bytes();
    let mut targets = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(end) = text[i + 2..].find(')') {
                let target = &text[i + 2..i + 2 + end];
                let line = text[..i].matches('\n').count() + 1;
                targets.push((line, target.to_string()));
                i += 2 + end;
                continue;
            }
        }
        i += 1;
    }
    targets
}

/// Checks one link target relative to the file containing it. Returns a
/// problem description, or None if the link is fine.
fn check_target(md_file: &Path, root: &Path, target: &str) -> Option<String> {
    // External and intra-document links are out of scope.
    if target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
        || target.is_empty()
    {
        return None;
    }
    let (path_part, anchor) = match target.split_once('#') {
        Some((p, a)) => (p, Some(a)),
        None => (target, None),
    };
    let base = md_file.parent().unwrap_or(root);
    let resolved = base.join(path_part);
    if !resolved.exists() {
        return Some(format!("target `{path_part}` does not exist"));
    }
    // Validate `#L<n>` / `#L<n>-L<m>` line anchors against the file.
    if let Some(anchor) = anchor {
        if let Some(rest) = anchor.strip_prefix('L') {
            let first = rest.split(['-', 'C']).next().unwrap_or(rest);
            if let Ok(line) = first.parse::<usize>() {
                let contents = match fs::read_to_string(&resolved) {
                    Ok(c) => c,
                    Err(_) => return Some(format!("`{path_part}` is not readable text")),
                };
                let count = contents.lines().count();
                if line == 0 || line > count {
                    return Some(format!(
                        "anchor #L{line} is out of range: `{path_part}` has {count} lines"
                    ));
                }
            }
        }
        // Markdown `#section` anchors are not validated — headers move
        // freely; only existence of the file matters.
    }
    None
}

#[test]
fn intra_repo_markdown_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = markdown_files(root);
    assert!(
        files.iter().any(|f| f.ends_with("README.md")),
        "walker must find the root README"
    );
    let mut problems = Vec::new();
    let mut checked = 0usize;
    for md in &files {
        let text = fs::read_to_string(md).unwrap();
        for (line, target) in link_targets(&text) {
            checked += 1;
            if let Some(problem) = check_target(md, root, &target) {
                problems.push(format!(
                    "{}:{line}: [{target}] — {problem}",
                    md.strip_prefix(root).unwrap_or(md).display()
                ));
            }
        }
    }
    assert!(
        checked > 50,
        "expected to check many links, found only {checked} — extractor broken?"
    );
    assert!(
        problems.is_empty(),
        "{} broken intra-repo markdown link(s):\n  {}",
        problems.len(),
        problems.join("\n  ")
    );
}

#[test]
fn extractor_sees_links_and_anchors() {
    let text = "intro [a](foo.md) then [b](crates/x/src/y.rs#L12) and\n[c](https://example.com) *(not a link)*";
    let targets = link_targets(text);
    assert_eq!(
        targets,
        vec![
            (1, "foo.md".to_string()),
            (1, "crates/x/src/y.rs#L12".to_string()),
            (2, "https://example.com".to_string()),
        ]
    );
}
