//! Deterministic edge cases: degenerate networks, empty relations,
//! base-station-only contributions, wide n-way joins.

use sensjoin::prelude::*;
use sensjoin::relation::{AttrType, Attribute, Schema, SensorRelation};

fn tiny(n: usize) -> SensorNetwork {
    SensorNetworkBuilder::new()
        .area(Area::new(120.0, 120.0))
        .placement(Placement::UniformRandom { n })
        .seed(2)
        .build()
        .unwrap()
}

const SQL: &str = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                   WHERE A.temp - B.temp > 0.5 ONCE";

#[test]
fn single_node_network() {
    // The base station is the only node: everything happens locally, no
    // transmissions at all.
    let mut snet = tiny(1);
    let cq = snet.compile(&parse(SQL).unwrap()).unwrap();
    for method in [&ExternalJoin as &dyn JoinMethod, &SensJoin::default()] {
        let out = method.execute(&mut snet, &cq).unwrap();
        assert_eq!(out.stats.total_tx_packets(), 0, "{}", method.name());
        // A lone node can still self-join (SQL semantics) if the predicate
        // allowed it; with a strict inequality on itself it cannot.
        assert!(out.result.is_empty());
    }
}

#[test]
fn two_node_network() {
    let mut snet = tiny(2);
    let cq = snet.compile(&parse(SQL).unwrap()).unwrap();
    let ext = ExternalJoin.execute(&mut snet, &cq).unwrap();
    let sj = SensJoin::default().execute(&mut snet, &cq).unwrap();
    assert!(ext.result.same_result(&sj.result));
    // The non-base node ships at most a couple of packets per method.
    assert!(ext.stats.total_tx_packets() <= 2);
    assert!(sj.stats.total_tx_packets() <= 4);
}

#[test]
fn four_way_join() {
    let mut snet = tiny(40);
    let q = parse(
        "SELECT A.temp, B.temp, C.temp, D.temp \
         FROM Sensors A, Sensors B, Sensors C, Sensors D \
         WHERE A.temp - B.temp > 1.0 AND B.temp - C.temp > 1.0 \
         AND C.temp - D.temp > 1.0 ONCE",
    )
    .unwrap();
    let cq = snet.compile(&q).unwrap();
    assert_eq!(cq.num_relations(), 4);
    let ext = ExternalJoin.execute(&mut snet, &cq).unwrap();
    let sj = SensJoin::default().execute(&mut snet, &cq).unwrap();
    assert!(ext.result.same_result(&sj.result));
    // Chained strict inequalities: every row is strictly descending.
    if let JoinResult::Rows(rows) = &sj.result {
        for row in rows {
            assert!(row[0] > row[1] && row[1] > row[2] && row[2] > row[3]);
        }
    }
}

#[test]
fn base_station_only_relation() {
    // Relation B contains just the base station: its tuple never travels,
    // and relation A's side still matches against it.
    let schema = |name: &str| {
        Schema::new(
            name,
            vec![
                Attribute::new("temp", AttrType::Celsius),
                Attribute::new("hum", AttrType::Percent),
            ],
        )
    };
    let probe = tiny(30);
    let base = probe.base();
    let mut snet = SensorNetworkBuilder::new()
        .area(Area::new(120.0, 120.0))
        .placement(Placement::UniformRandom { n: 30 })
        .seed(2)
        .relations(vec![
            SensorRelation::homogeneous(schema("Field")),
            SensorRelation::over_nodes(schema("Gateway"), [base]),
        ])
        .build()
        .unwrap();
    assert_eq!(snet.base(), base);
    let q = parse(
        "SELECT F.hum, G.hum FROM Field F, Gateway G \
         WHERE F.temp - G.temp > 0.2 ONCE",
    )
    .unwrap();
    let cq = snet.compile(&q).unwrap();
    let ext = ExternalJoin.execute(&mut snet, &cq).unwrap();
    let sj = SensJoin::default().execute(&mut snet, &cq).unwrap();
    assert!(ext.result.same_result(&sj.result));
    // Oracle: count field nodes warmer than the base by > 0.2.
    let ti = snet.master_index("temp").unwrap();
    let base_t = snet.readings(base)[ti];
    let expect = (0..snet.len() as u32)
        .map(NodeId)
        .filter(|&v| snet.net().routing().depth(v).is_some())
        .filter(|&v| snet.readings(v)[ti] - base_t > 0.2)
        .count();
    assert_eq!(sj.result.len(), expect);
}

#[test]
fn local_predicates_filter_everyone() {
    // A local predicate nobody satisfies: empty result, and SENS-Join's
    // collection degenerates to (nearly) empty traffic.
    let mut snet = tiny(30);
    let q = parse(
        "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
         WHERE A.temp > 10000 AND B.temp > 10000 \
         AND A.temp - B.temp > 0.5 ONCE",
    )
    .unwrap();
    let cq = snet.compile(&q).unwrap();
    let ext = ExternalJoin.execute(&mut snet, &cq).unwrap();
    let sj = SensJoin::default().execute(&mut snet, &cq).unwrap();
    assert!(ext.result.is_empty() && sj.result.is_empty());
    assert_eq!(
        ext.stats.total_tx_bytes(),
        0,
        "early selection drops everything"
    );
    assert_eq!(sj.stats.total_tx_bytes(), 0);
}

#[test]
fn constant_false_predicate() {
    let mut snet = tiny(25);
    let q = parse(
        "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
         WHERE 1 > 2 AND A.temp - B.temp > 0.5 ONCE",
    )
    .unwrap();
    let cq = snet.compile(&q).unwrap();
    assert!(cq.is_const_false());
    let sj = SensJoin::default().execute(&mut snet, &cq).unwrap();
    assert!(sj.result.is_empty());
    // The filter is empty, so no final-phase traffic.
    assert_eq!(sj.stats.phase(sensjoin::core::PHASE_FINAL).tx_bytes, 0);
}

#[test]
fn or_predicate_across_relations() {
    // Disjunctive join predicates exercise the Kleene-OR path of the
    // conservative pre-join.
    let mut snet = tiny(35);
    let q = parse(
        "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
         WHERE A.temp - B.temp > 2.0 OR B.hum - A.hum > 8.0 ONCE",
    )
    .unwrap();
    let cq = snet.compile(&q).unwrap();
    // The whole disjunction is one join predicate (not splittable).
    assert_eq!(cq.join_preds().len(), 1);
    assert_eq!(cq.join_attrs(0).len(), 2); // temp and hum
    let ext = ExternalJoin.execute(&mut snet, &cq).unwrap();
    let sj = SensJoin::default().execute(&mut snet, &cq).unwrap();
    assert!(ext.result.same_result(&sj.result));
}
