//! The central correctness property, end to end: every SENS-Join
//! configuration computes exactly the external join's result, on random
//! topologies, random data and a wide family of queries.

use proptest::prelude::*;
use sensjoin::prelude::*;

fn build(seed: u64, n: usize, corr: f64) -> SensorNetwork {
    let mut fields = presets::indoor_climate();
    for f in &mut fields {
        f.correlation_length = (f.correlation_length * corr).max(1.0);
    }
    SensorNetworkBuilder::new()
        .area(Area::new(420.0, 420.0))
        .placement(Placement::UniformRandom { n })
        .fields(fields)
        .seed(seed)
        .build()
        .unwrap()
}

/// Query templates covering operators, aggregates and join shapes.
fn query_strategy() -> impl Strategy<Value = String> {
    let c = -8.0f64..8.0;
    prop_oneof![
        c.clone().prop_map(|c| format!(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B WHERE A.temp - B.temp > {c} ONCE"
        )),
        c.clone().prop_map(|c| format!(
            "SELECT A.pres, B.pres FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < {} AND distance(A.x, A.y, B.x, B.y) > 150 ONCE",
            c.abs() / 8.0
        )),
        c.clone().prop_map(|c| format!(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| > {} ONCE",
            c.abs() / 4.0
        )),
        c.clone().prop_map(|c| format!(
            "SELECT MIN(distance(A.x, A.y, B.x, B.y)), COUNT(A.temp) \
             FROM Sensors A, Sensors B WHERE A.temp - B.temp > {c} ONCE"
        )),
        c.clone().prop_map(|c| format!(
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > {c} AND A.hum - B.hum > 1.0 ONCE"
        )),
        c.clone().prop_map(|c| format!(
            "SELECT A.light, B.light FROM Sensors A, Sensors B \
             WHERE A.temp * 2 - B.temp * 2 > {} OR A.hum - B.hum > 12 ONCE",
            2.0 * c
        )),
        Just(
            "SELECT A.temp, B.temp, C.temp FROM Sensors A, Sensors B, Sensors C \
             WHERE A.temp - B.temp > 2 AND B.temp - C.temp > 2 ONCE"
                .to_owned()
        ),
    ]
}

fn config_strategy() -> impl Strategy<Value = SensJoinConfig> {
    (
        prop_oneof![Just(0usize), Just(12), Just(30), Just(48)],
        prop_oneof![Just(0usize), Just(100), Just(500), Just(100_000)],
        any::<bool>(),
        prop_oneof![
            Just(Representation::Quadtree),
            Just(Representation::Raw),
            Just(Representation::Zlib),
        ],
        prop_oneof![Just(0.5f64), Just(1.0), Just(4.0), Just(20.0)],
    )
        .prop_map(|(dmax, mem, sel, representation, scale)| SensJoinConfig {
            dmax,
            filter_memory_limit: mem,
            selective_forwarding: sel,
            representation,
            quantization: QuantizationConfig::new(),
            resolution_scale: scale,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SENS-Join under arbitrary protocol parameters == external join.
    #[test]
    fn sensjoin_equals_external(
        seed in 0u64..1000,
        sql in query_strategy(),
        config in config_strategy(),
        n in 60usize..140,
        corr in prop_oneof![Just(0.02f64), Just(0.3), Just(1.0)],
    ) {
        let mut snet = build(seed, n, corr);
        let q = parse(&sql).unwrap();
        let cq = snet.compile(&q).unwrap();
        let reference = ExternalJoin.execute(&mut snet, &cq).unwrap();
        let out = SensJoin::with_config(config.clone())
            .execute(&mut snet, &cq)
            .unwrap();
        prop_assert!(
            out.result.same_result(&reference.result),
            "divergence: sql={sql} config={config:?} ext_rows={} sens_rows={}",
            reference.result.len(),
            out.result.len()
        );
        prop_assert_eq!(reference.contributors, out.contributors);
    }
}

mod engine_equivalence {
    //! The partitioned base-station engine against the nested-loop
    //! reference it replaced: bit-identical rows (including order),
    //! aggregates and contributor sets on randomized tuples and queries.

    use proptest::prelude::*;
    use sensjoin::core::{exact_join, exact_join_nested};
    use sensjoin::prelude::*;
    use sensjoin::query::CompiledQuery;
    use sensjoin::relation::{AttrType, Attribute, Schema};

    fn schema() -> Schema {
        Schema::new(
            "Sensors",
            vec![
                Attribute::new("x", AttrType::Meters),
                Attribute::new("y", AttrType::Meters),
                Attribute::new("temp", AttrType::Celsius),
                Attribute::new("hum", AttrType::Percent),
            ],
        )
    }

    /// Templates covering every predicate class the engine partitions on —
    /// equi (plain and compound sides), band (difference, absolute,
    /// direct), general residuals, three-way joins and aggregates.
    fn query_strategy() -> impl Strategy<Value = String> {
        let c = -6.0f64..6.0;
        prop_oneof![
            Just(
                "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                 WHERE A.temp = B.temp ONCE"
                    .to_owned()
            ),
            Just(
                "SELECT A.x, B.x FROM Sensors A, Sensors B \
                 WHERE A.temp + A.hum = B.temp + B.hum ONCE"
                    .to_owned()
            ),
            c.clone().prop_map(|c| format!(
                "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                 WHERE A.temp - B.temp > {c} ONCE"
            )),
            c.clone().prop_map(|c| format!(
                "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
                 WHERE |A.temp - B.temp| < {} ONCE",
                c.abs()
            )),
            c.clone().prop_map(|c| format!(
                "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
                 WHERE |A.temp - B.temp| > {} ONCE",
                c.abs()
            )),
            c.clone().prop_map(|c| format!(
                "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
                 WHERE |A.temp - B.temp| >= {} ONCE",
                c.abs()
            )),
            // The value pool quantizes to a 0.5 grid, so small grid-aligned
            // constants give |a − b| = c real matches to lose.
            c.clone().prop_map(|c| format!(
                "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
                 WHERE |A.temp - B.temp| = {} ONCE",
                (c.abs() * 2.0).floor() * 0.5
            )),
            c.clone().prop_map(|c| format!(
                "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
                 WHERE A.temp < B.temp AND A.hum - B.hum > {c} ONCE"
            )),
            c.clone().prop_map(|c| format!(
                "SELECT A.x, B.y FROM Sensors A, Sensors B \
                 WHERE distance(A.x, A.y, B.x, B.y) < {} ONCE",
                20.0 * c.abs()
            )),
            c.clone().prop_map(|c| format!(
                "SELECT MIN(A.temp), COUNT(B.hum) FROM Sensors A, Sensors B \
                 WHERE A.temp - B.temp >= {c} ONCE"
            )),
            c.prop_map(|c| format!(
                "SELECT A.temp, B.temp, C.temp FROM Sensors A, Sensors B, Sensors C \
                 WHERE A.temp = B.temp AND |B.hum - C.hum| < {} ONCE",
                c.abs()
            )),
        ]
    }

    /// Attribute values with heavy collisions (to exercise the hash index),
    /// a continuous range, and the occasional NaN / infinity (to exercise
    /// the index guards — the nested reference defines their semantics).
    fn value_strategy() -> impl Strategy<Value = f64> {
        (0u64..12, -12.0f64..12.0, -300.0f64..300.0).prop_map(|(sel, grid, cont)| match sel {
            0..=5 => (grid * 2.0).floor() * 0.5,
            6..=9 => cont,
            10 => f64::NAN,
            _ => f64::INFINITY,
        })
    }

    fn rows_bits(rows: &[Vec<f64>]) -> Vec<Vec<u64>> {
        rows.iter()
            .map(|r| r.iter().map(|v| v.to_bits()).collect())
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn partitioned_exact_join_equals_nested_descent(
            sql in query_strategy(),
            pool in proptest::collection::vec(
                proptest::collection::vec(value_strategy(), 4),
                0..90,
            ),
        ) {
            let q = parse(&sql).unwrap();
            let schemas: Vec<Schema> = q.from.iter().map(|_| schema()).collect();
            let cq = CompiledQuery::compile(&q, &schemas).unwrap();
            // Distribute the generated pool round-robin over the relations,
            // with distinct origin ids per relation.
            let mut tuples: Vec<Vec<(NodeId, Vec<f64>)>> =
                vec![Vec::new(); cq.num_relations()];
            for (i, values) in pool.into_iter().enumerate() {
                let rel = i % cq.num_relations();
                let id = NodeId((rel * 1000 + i) as u32);
                tuples[rel].push((id, values));
            }
            let new = exact_join(&cq, &tuples);
            let old = exact_join_nested(&cq, &tuples);
            prop_assert_eq!(new.contributors, old.contributors, "contributors: {}", sql);
            match (&new.result, &old.result) {
                (JoinResult::Rows(a), JoinResult::Rows(b)) => {
                    // Bitwise AND order-exact: the partitioned engine must
                    // emit the very sequence of the nested loop.
                    prop_assert_eq!(rows_bits(a), rows_bits(b), "rows: {}", sql);
                }
                (JoinResult::Aggregate(a), JoinResult::Aggregate(b)) => {
                    let bits = |v: &[Option<f64>]| -> Vec<Option<u64>> {
                        v.iter().map(|o| o.map(|v| v.to_bits())).collect()
                    };
                    prop_assert_eq!(bits(a), bits(b), "aggregates: {}", sql);
                }
                (a, b) => prop_assert!(false, "kind mismatch for {}: {:?} vs {:?}", sql, a, b),
            }
        }
    }
}

/// A deterministic sweep across coarse resolutions: correctness must be
/// resolution-independent (§V-B: quantization affects cost, never the
/// result).
#[test]
fn resolution_never_affects_result() {
    let mut snet = build(5, 120, 1.0);
    let q = parse(
        "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
         WHERE A.temp - B.temp > 4.0 ONCE",
    )
    .unwrap();
    let cq = snet.compile(&q).unwrap();
    let reference = ExternalJoin.execute(&mut snet, &cq).unwrap();
    for scale in [0.1, 1.0, 10.0, 100.0, 1000.0] {
        let out = SensJoin::with_config(SensJoinConfig {
            resolution_scale: scale,
            ..SensJoinConfig::default()
        })
        .execute(&mut snet, &cq)
        .unwrap();
        assert!(
            out.result.same_result(&reference.result),
            "result changed at resolution scale {scale}"
        );
    }
}

/// Coarser resolutions may only *increase* the final-phase traffic
/// (more false positives), never decrease it below the exact need.
#[test]
fn coarser_resolution_is_monotone_in_false_positives() {
    let mut snet = build(9, 150, 1.0);
    let q = parse(
        "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
         WHERE A.temp - B.temp > 5.0 ONCE",
    )
    .unwrap();
    let cq = snet.compile(&q).unwrap();
    let mut last = 0u64;
    for scale in [1.0, 8.0, 64.0] {
        let out = SensJoin::with_config(SensJoinConfig {
            resolution_scale: scale,
            ..SensJoinConfig::default()
        })
        .execute(&mut snet, &cq)
        .unwrap();
        let final_bytes = out.stats.phase(sensjoin::core::PHASE_FINAL).tx_bytes;
        assert!(
            final_bytes >= last,
            "final phase shrank from {last} to {final_bytes} at scale {scale}"
        );
        last = final_bytes;
    }
}
