//! The central correctness property, end to end: every SENS-Join
//! configuration computes exactly the external join's result, on random
//! topologies, random data and a wide family of queries.

use proptest::prelude::*;
use sensjoin::prelude::*;

fn build(seed: u64, n: usize, corr: f64) -> SensorNetwork {
    let mut fields = presets::indoor_climate();
    for f in &mut fields {
        f.correlation_length = (f.correlation_length * corr).max(1.0);
    }
    SensorNetworkBuilder::new()
        .area(Area::new(420.0, 420.0))
        .placement(Placement::UniformRandom { n })
        .fields(fields)
        .seed(seed)
        .build()
        .unwrap()
}

/// Query templates covering operators, aggregates and join shapes.
fn query_strategy() -> impl Strategy<Value = String> {
    let c = -8.0f64..8.0;
    prop_oneof![
        c.clone().prop_map(|c| format!(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B WHERE A.temp - B.temp > {c} ONCE"
        )),
        c.clone().prop_map(|c| format!(
            "SELECT A.pres, B.pres FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < {} AND distance(A.x, A.y, B.x, B.y) > 150 ONCE",
            c.abs() / 8.0
        )),
        c.clone().prop_map(|c| format!(
            "SELECT MIN(distance(A.x, A.y, B.x, B.y)), COUNT(A.temp) \
             FROM Sensors A, Sensors B WHERE A.temp - B.temp > {c} ONCE"
        )),
        c.clone().prop_map(|c| format!(
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > {c} AND A.hum - B.hum > 1.0 ONCE"
        )),
        c.clone().prop_map(|c| format!(
            "SELECT A.light, B.light FROM Sensors A, Sensors B \
             WHERE A.temp * 2 - B.temp * 2 > {} OR A.hum - B.hum > 12 ONCE",
            2.0 * c
        )),
        Just(
            "SELECT A.temp, B.temp, C.temp FROM Sensors A, Sensors B, Sensors C \
             WHERE A.temp - B.temp > 2 AND B.temp - C.temp > 2 ONCE"
                .to_owned()
        ),
    ]
}

fn config_strategy() -> impl Strategy<Value = SensJoinConfig> {
    (
        prop_oneof![Just(0usize), Just(12), Just(30), Just(48)],
        prop_oneof![Just(0usize), Just(100), Just(500), Just(100_000)],
        any::<bool>(),
        prop_oneof![
            Just(Representation::Quadtree),
            Just(Representation::Raw),
            Just(Representation::Zlib),
        ],
        prop_oneof![Just(0.5f64), Just(1.0), Just(4.0), Just(20.0)],
    )
        .prop_map(|(dmax, mem, sel, representation, scale)| SensJoinConfig {
            dmax,
            filter_memory_limit: mem,
            selective_forwarding: sel,
            representation,
            quantization: QuantizationConfig::new(),
            resolution_scale: scale,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SENS-Join under arbitrary protocol parameters == external join.
    #[test]
    fn sensjoin_equals_external(
        seed in 0u64..1000,
        sql in query_strategy(),
        config in config_strategy(),
        n in 60usize..140,
        corr in prop_oneof![Just(0.02f64), Just(0.3), Just(1.0)],
    ) {
        let mut snet = build(seed, n, corr);
        let q = parse(&sql).unwrap();
        let cq = snet.compile(&q).unwrap();
        let reference = ExternalJoin.execute(&mut snet, &cq).unwrap();
        let out = SensJoin::with_config(config.clone())
            .execute(&mut snet, &cq)
            .unwrap();
        prop_assert!(
            out.result.same_result(&reference.result),
            "divergence: sql={sql} config={config:?} ext_rows={} sens_rows={}",
            reference.result.len(),
            out.result.len()
        );
        prop_assert_eq!(reference.contributors, out.contributors);
    }
}

/// A deterministic sweep across coarse resolutions: correctness must be
/// resolution-independent (§V-B: quantization affects cost, never the
/// result).
#[test]
fn resolution_never_affects_result() {
    let mut snet = build(5, 120, 1.0);
    let q = parse(
        "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
         WHERE A.temp - B.temp > 4.0 ONCE",
    )
    .unwrap();
    let cq = snet.compile(&q).unwrap();
    let reference = ExternalJoin.execute(&mut snet, &cq).unwrap();
    for scale in [0.1, 1.0, 10.0, 100.0, 1000.0] {
        let out = SensJoin::with_config(SensJoinConfig {
            resolution_scale: scale,
            ..SensJoinConfig::default()
        })
        .execute(&mut snet, &cq)
        .unwrap();
        assert!(
            out.result.same_result(&reference.result),
            "result changed at resolution scale {scale}"
        );
    }
}

/// Coarser resolutions may only *increase* the final-phase traffic
/// (more false positives), never decrease it below the exact need.
#[test]
fn coarser_resolution_is_monotone_in_false_positives() {
    let mut snet = build(9, 150, 1.0);
    let q = parse(
        "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
         WHERE A.temp - B.temp > 5.0 ONCE",
    )
    .unwrap();
    let cq = snet.compile(&q).unwrap();
    let mut last = 0u64;
    for scale in [1.0, 8.0, 64.0] {
        let out = SensJoin::with_config(SensJoinConfig {
            resolution_scale: scale,
            ..SensJoinConfig::default()
        })
        .execute(&mut snet, &cq)
        .unwrap();
        let final_bytes = out.stats.phase(sensjoin::core::PHASE_FINAL).tx_bytes;
        assert!(
            final_bytes >= last,
            "final phase shrank from {last} to {final_bytes} at scale {scale}"
        );
        last = final_bytes;
    }
}
