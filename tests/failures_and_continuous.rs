//! Failure injection (§IV-F) and continuous queries (`SAMPLE PERIOD`).

use sensjoin::core::execute_with_recovery;
use sensjoin::prelude::*;
use sensjoin::query::Temporal;

fn network(seed: u64) -> SensorNetwork {
    SensorNetworkBuilder::new()
        .area(Area::new(400.0, 400.0))
        .placement(Placement::UniformRandom { n: 180 })
        .seed(seed)
        .build()
        .unwrap()
}

const SQL: &str = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                   WHERE A.temp - B.temp > 3.0 ONCE";

#[test]
fn link_failures_recovered_exactly() {
    let mut failures_seen = 0;
    for seed in 0..8u64 {
        let mut snet = network(seed);
        let cq = snet.compile(&parse(SQL).unwrap()).unwrap();
        let reference = ExternalJoin.execute(&mut snet, &cq).unwrap();
        let failures = LinkFailures::sample(snet.net().topology(), 0.03, seed * 31 + 7);
        let rec = execute_with_recovery(&SensJoin::default(), &mut snet, &cq, &failures).unwrap();
        if rec.attempts > 1 {
            failures_seen += 1;
        }
        // Comparable only when the repaired network is not partitioned.
        if snet.net().routing().unreachable().is_empty() {
            assert!(
                rec.outcome.result.same_result(&reference.result),
                "seed {seed}: result diverged after recovery"
            );
        }
    }
    assert!(failures_seen > 0, "failure injection never hit a tree link");
}

#[test]
fn both_methods_recover_identically() {
    let mut snet = network(99);
    let cq = snet.compile(&parse(SQL).unwrap()).unwrap();
    let failures = LinkFailures::sample(snet.net().topology(), 0.05, 123);
    let ext = execute_with_recovery(&ExternalJoin, &mut snet, &cq, &failures).unwrap();
    // Note: the first recovery already rebuilt the tree; sample fresh net to
    // give SENS-Join the same starting conditions.
    let mut snet2 = network(99);
    let sj = execute_with_recovery(&SensJoin::default(), &mut snet2, &cq, &failures).unwrap();
    assert!(ext.outcome.result.same_result(&sj.outcome.result));
}

#[test]
fn continuous_query_multiple_rounds() {
    let mut snet = network(17);
    let q = parse(
        "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
         WHERE A.temp - B.temp > 3.0 SAMPLE PERIOD 30",
    )
    .unwrap();
    assert_eq!(q.temporal, Temporal::SamplePeriod(30.0));
    let cq = snet.compile(&q).unwrap();
    let mut total_sens = 0u64;
    let mut total_ext = 0u64;
    for round in 0..5u64 {
        // Each period reads a fresh snapshot (§III).
        snet.resample(&presets::indoor_climate(), 1000 + round);
        let ext = ExternalJoin.execute(&mut snet, &cq).unwrap();
        let sj = SensJoin::default().execute(&mut snet, &cq).unwrap();
        assert!(ext.result.same_result(&sj.result), "round {round} diverged");
        total_ext += ext.stats.total_tx_packets();
        total_sens += sj.stats.total_tx_packets();
    }
    assert!(total_ext > 0 && total_sens > 0);
}

#[test]
fn node_failure_as_all_links_down() {
    // A dead node = all its links down. The network reroutes around it and
    // the result excludes (only) that node's tuple.
    let mut snet = network(55);
    let cq = snet.compile(&parse(SQL).unwrap()).unwrap();
    // Pick a mid-tree node (a child of the base with children of its own).
    let base = snet.base();
    let victim = snet
        .net()
        .routing()
        .children(base)
        .iter()
        .copied()
        .find(|&c| !snet.net().routing().children(c).is_empty())
        .expect("base has a non-leaf child");
    let links: Vec<_> = snet
        .net()
        .topology()
        .neighbors(victim)
        .iter()
        .map(|&nb| (victim, nb))
        .collect();
    let failures = LinkFailures::of_links(links);
    let rec = execute_with_recovery(&SensJoin::default(), &mut snet, &cq, &failures).unwrap();
    assert_eq!(rec.attempts, 2);
    // The victim is now unreachable and absent from the contributors.
    assert!(snet.net().routing().depth(victim).is_none());
    assert!(!rec.outcome.contributors.contains(&victim));
}
