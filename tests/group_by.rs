//! GROUP BY over join results, end to end across join methods.

use sensjoin::prelude::*;
use sensjoin::query::CompileError;

fn network(seed: u64) -> SensorNetwork {
    SensorNetworkBuilder::new()
        .area(Area::new(400.0, 400.0))
        .placement(Placement::UniformRandom { n: 160 })
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn grouped_aggregation_parses_and_runs() {
    let mut snet = network(3);
    // How many hot-pair partners does each humidity band have, and how big
    // is the largest temperature gap per band?
    let q = parse(
        "SELECT A.hum / 10, COUNT(B.temp), MAX(A.temp - B.temp) \
         FROM Sensors A, Sensors B \
         WHERE A.temp - B.temp > 3.0 \
         GROUP BY A.hum / 10 \
         ONCE",
    )
    .unwrap();
    assert_eq!(q.group_by.len(), 1);
    let cq = snet.compile(&q).unwrap();
    assert!(cq.has_group_by());
    assert!(!cq.is_aggregate()); // grouped queries emit one row per group
    let ext = ExternalJoin.execute(&mut snet, &cq).unwrap();
    let sj = SensJoin::default().execute(&mut snet, &cq).unwrap();
    assert!(ext.result.same_result(&sj.result));
    if let JoinResult::Rows(rows) = &sj.result {
        assert!(!rows.is_empty(), "calibrate the threshold if this is empty");
        for row in rows {
            assert_eq!(row.len(), 3);
            assert!(row[1] >= 1.0, "COUNT per group is at least 1");
            assert!(row[2] > 3.0, "MAX gap exceeds the predicate bound");
        }
        // Group keys are distinct.
        let mut keys: Vec<u64> = rows.iter().map(|r| r[0].to_bits()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), rows.len());
    } else {
        panic!("grouped query returns rows");
    }
}

#[test]
fn grouped_counts_match_ungrouped_total() {
    let mut snet = network(5);
    let grouped = snet
        .compile(
            &parse(
                "SELECT A.hum / 5, COUNT(A.temp) FROM Sensors A, Sensors B \
                 WHERE A.temp - B.temp > 4.0 GROUP BY A.hum / 5 ONCE",
            )
            .unwrap(),
        )
        .unwrap();
    let total = snet
        .compile(
            &parse(
                "SELECT COUNT(A.temp) FROM Sensors A, Sensors B \
                 WHERE A.temp - B.temp > 4.0 ONCE",
            )
            .unwrap(),
        )
        .unwrap();
    let g = ExternalJoin.execute(&mut snet, &grouped).unwrap();
    let t = ExternalJoin.execute(&mut snet, &total).unwrap();
    let group_sum: f64 = match &g.result {
        JoinResult::Rows(rows) => rows.iter().map(|r| r[1]).sum(),
        other => panic!("unexpected {other:?}"),
    };
    let total_count = match &t.result {
        JoinResult::Aggregate(vals) => vals[0].unwrap_or(0.0),
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(group_sum, total_count, "partition property of GROUP BY");
}

#[test]
fn grouping_validation() {
    let snet = network(1);
    // Bare select item not in GROUP BY.
    let q = parse(
        "SELECT A.hum, COUNT(B.temp) FROM Sensors A, Sensors B \
         WHERE A.temp - B.temp > 1 GROUP BY A.pres ONCE",
    )
    .unwrap();
    assert!(matches!(
        snet.compile(&q),
        Err(sensjoin::core::SensorNetworkError::Compile(
            CompileError::TypeError(_)
        ))
    ));
    // Mixed aggregate / bare select without GROUP BY.
    let q2 = parse(
        "SELECT A.hum, COUNT(B.temp) FROM Sensors A, Sensors B \
         WHERE A.temp - B.temp > 1 ONCE",
    )
    .unwrap();
    assert!(matches!(
        snet.compile(&q2),
        Err(sensjoin::core::SensorNetworkError::Compile(
            CompileError::TypeError(_)
        ))
    ));
    // Matching bare item is fine.
    let q3 = parse(
        "SELECT A.hum, COUNT(B.temp) FROM Sensors A, Sensors B \
         WHERE A.temp - B.temp > 1 GROUP BY A.hum ONCE",
    )
    .unwrap();
    assert!(snet.compile(&q3).is_ok());
}

#[test]
fn continuous_rounds_respect_grouping() {
    let mut snet = network(9);
    let q = parse(
        "SELECT A.hum / 10, COUNT(B.temp) FROM Sensors A, Sensors B \
         WHERE A.temp - B.temp > 3.5 GROUP BY A.hum / 10 SAMPLE PERIOD 30",
    )
    .unwrap();
    let cq = snet.compile(&q).unwrap();
    let mut cont = sensjoin::core::ContinuousSensJoin::new();
    for round in 0..3u64 {
        snet.resample(&presets::indoor_climate(), 70 + round);
        let fresh = ExternalJoin.execute(&mut snet, &cq).unwrap();
        let delta = cont.execute_round(&mut snet, &cq).unwrap();
        assert!(fresh.result.same_result(&delta.result), "round {round}");
    }
}
