//! Heterogeneous networks: groups of nodes forming different relations
//! (§III), including join attributes with different names per relation.

use sensjoin::prelude::*;
use sensjoin::relation::{AttrType, Attribute, Schema, SensorRelation};

/// Builds a network where even nodes are "Indoor" sensors and odd nodes are
/// "Outdoor" sensors, with differently-shaped schemas.
fn heterogeneous(seed: u64, n: usize) -> SensorNetwork {
    let indoor_schema = Schema::new(
        "Indoor",
        vec![
            Attribute::new("x", AttrType::Meters),
            Attribute::new("y", AttrType::Meters),
            Attribute::new("temp", AttrType::Celsius),
            Attribute::new("hum", AttrType::Percent),
        ],
    );
    let outdoor_schema = Schema::new(
        "Outdoor",
        vec![
            Attribute::new("x", AttrType::Meters),
            Attribute::new("y", AttrType::Meters),
            Attribute::new("temp", AttrType::Celsius),
            Attribute::new("pres", AttrType::Hectopascal),
        ],
    );
    let evens = (0..n as u32).step_by(2).map(NodeId);
    let odds = (1..n as u32).step_by(2).map(NodeId);
    SensorNetworkBuilder::new()
        .area(Area::new(400.0, 400.0))
        .placement(Placement::UniformRandom { n })
        .seed(seed)
        .relations(vec![
            SensorRelation::over_nodes(indoor_schema, evens),
            SensorRelation::over_nodes(outdoor_schema, odds),
        ])
        .build()
        .unwrap()
}

#[test]
fn heterogeneous_join_methods_agree() {
    for seed in [1, 2, 3] {
        let mut snet = heterogeneous(seed, 160);
        let q = parse(
            "SELECT I.hum, O.pres FROM Indoor I, Outdoor O \
             WHERE I.temp - O.temp > 1.0 ONCE",
        )
        .unwrap();
        let cq = snet.compile(&q).unwrap();
        let ext = ExternalJoin.execute(&mut snet, &cq).unwrap();
        let sj = SensJoin::default().execute(&mut snet, &cq).unwrap();
        assert!(ext.result.same_result(&sj.result), "seed {seed}");
        assert_eq!(ext.contributors, sj.contributors);
    }
}

#[test]
fn heterogeneous_oracle_check() {
    let mut snet = heterogeneous(7, 120);
    let q = parse(
        "SELECT I.hum, O.pres FROM Indoor I, Outdoor O \
         WHERE I.temp - O.temp > 2.0 ONCE",
    )
    .unwrap();
    let cq = snet.compile(&q).unwrap();
    let out = ExternalJoin.execute(&mut snet, &cq).unwrap();
    // Independent oracle over raw readings.
    let ti = snet.master_index("temp").unwrap();
    let reachable = |v: u32| snet.net().routing().depth(NodeId(v)).is_some();
    let mut expect = 0;
    for i in (0..120u32).step_by(2).filter(|&v| reachable(v)) {
        for j in (1..120u32).step_by(2).filter(|&v| reachable(v)) {
            if snet.readings(NodeId(i))[ti] - snet.readings(NodeId(j))[ti] > 2.0 {
                expect += 1;
            }
        }
    }
    assert_eq!(out.result.len(), expect);
}

#[test]
fn disjoint_join_attribute_names() {
    // Join on differently named attributes: Indoor humidity vs Outdoor
    // pressure offset — exercises the multi-dimension layout where each
    // relation covers only part of the space.
    let mut snet = heterogeneous(11, 140);
    // Derive the threshold from the generated data — just below the best
    // reachable Indoor.hum − Outdoor.pres pair — so the non-empty assertion
    // below holds on any RNG stream instead of a stream-tuned constant.
    let hi = snet.master_index("hum").unwrap();
    let pi = snet.master_index("pres").unwrap();
    let reachable = |v: u32| snet.net().routing().depth(NodeId(v)).is_some();
    let hum_max = (0..140u32)
        .step_by(2)
        .filter(|&v| reachable(v))
        .map(|v| snet.readings(NodeId(v))[hi])
        .fold(f64::NEG_INFINITY, f64::max);
    let pres_min = (1..140u32)
        .step_by(2)
        .filter(|&v| reachable(v))
        .map(|v| snet.readings(NodeId(v))[pi])
        .fold(f64::INFINITY, f64::min);
    let q = parse(&format!(
        "SELECT I.temp, O.temp FROM Indoor I, Outdoor O \
         WHERE I.hum - O.pres > {} ONCE",
        hum_max - pres_min - 1.0
    ))
    .unwrap();
    let cq = snet.compile(&q).unwrap();
    // hum and pres are distinct dimensions.
    assert_eq!(cq.join_attrs(0), &[3]); // hum in Indoor schema
    assert_eq!(cq.join_attrs(1), &[3]); // pres in Outdoor schema
    let ext = ExternalJoin.execute(&mut snet, &cq).unwrap();
    let sj = SensJoin::default().execute(&mut snet, &cq).unwrap();
    assert!(ext.result.same_result(&sj.result));
    assert!(
        !ext.result.is_empty(),
        "threshold chosen to produce matches"
    );
}

#[test]
fn empty_relation_side_yields_empty_result() {
    // All nodes indoor; outdoor relation matches no node.
    let schema_i = Schema::new(
        "Indoor",
        vec![
            Attribute::new("temp", AttrType::Celsius),
            Attribute::new("hum", AttrType::Percent),
        ],
    );
    let schema_o = Schema::new(
        "Outdoor",
        vec![
            Attribute::new("temp", AttrType::Celsius),
            Attribute::new("pres", AttrType::Hectopascal),
        ],
    );
    let mut snet = SensorNetworkBuilder::new()
        .area(Area::new(300.0, 300.0))
        .placement(Placement::UniformRandom { n: 80 })
        .seed(3)
        .relations(vec![
            SensorRelation::homogeneous(schema_i),
            SensorRelation::over_nodes(schema_o, std::iter::empty()),
        ])
        .build()
        .unwrap();
    let q = parse(
        "SELECT I.hum, O.pres FROM Indoor I, Outdoor O \
         WHERE I.temp - O.temp > 0.0 ONCE",
    )
    .unwrap();
    let cq = snet.compile(&q).unwrap();
    let ext = ExternalJoin.execute(&mut snet, &cq).unwrap();
    let sj = SensJoin::default().execute(&mut snet, &cq).unwrap();
    assert!(ext.result.is_empty());
    assert!(sj.result.is_empty());
    // SENS-Join's filter is empty, so the final phase ships nothing.
    assert_eq!(sj.stats.phase(sensjoin::core::PHASE_FINAL).tx_bytes, 0);
}
