//! Round-equivalence of the incremental filter engine, end to end: an exact
//! (ε = 0) continuous query driven through N drifting snapshots must return,
//! every round, exactly what a fresh execution computes on that round's
//! data — the network-level counterpart of the engine-level bit-identity
//! tests in `sensjoin-core::incremental`. The continuous path exercises the
//! persistent [`sensjoin::core::FilterEngine`]: per-round deltas mutate its
//! indexes in place and only affected cells' filter bits are recomputed, so
//! any divergence from the rebuild-per-round semantics shows up here as a
//! wrong result or contributor set.

use proptest::prelude::*;
use sensjoin::core::ContinuousSensJoin;
use sensjoin::prelude::*;

fn build(seed: u64, n: usize) -> SensorNetwork {
    SensorNetworkBuilder::new()
        .area(Area::new(400.0, 400.0))
        .placement(Placement::UniformRandom { n })
        .seed(seed)
        .build()
        .unwrap()
}

/// Query templates across predicate classes: band, abs-band (window and
/// two-run shapes), equi-on-quantized, general, and a 3-way join whose last
/// level intersects two indexes.
fn sql(template: usize, c: f64) -> String {
    match template % 6 {
        0 => format!(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > {c} SAMPLE PERIOD 30"
        ),
        1 => format!(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < {} SAMPLE PERIOD 30",
            c * 0.1
        ),
        2 => format!(
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| >= {c} SAMPLE PERIOD 30"
        ),
        3 => format!(
            "SELECT A.x, B.x FROM Sensors A, Sensors B \
             WHERE distance(A.x, A.y, B.x, B.y) < {} SAMPLE PERIOD 30",
            c * 15.0
        ),
        4 => format!(
            "SELECT A.temp, B.temp, C.temp FROM Sensors A, Sensors B, Sensors C \
             WHERE |A.temp - C.temp| < {} AND B.hum = C.hum SAMPLE PERIOD 30",
            c * 0.2
        ),
        _ => format!(
            "SELECT A.temp, B.temp, C.temp FROM Sensors A, Sensors B, Sensors C \
             WHERE |A.temp - B.temp| < {} AND B.temp - C.temp > {c} \
             SAMPLE PERIOD 30",
            c * 0.2
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N drifting rounds at ε = 0: the delta-maintained filter and cached
    /// join state reproduce the fresh per-round execution bit for bit
    /// (same rows, same contributors), for every predicate class.
    #[test]
    fn incremental_rounds_equal_fresh_execution(
        seed in 0u64..1000,
        n in 60usize..110,
        template in 0usize..6,
        c in 2.0f64..5.0,
        resample_seeds in prop::collection::vec(0u64..10_000, 3..6),
    ) {
        let mut snet = build(seed, n);
        let cq = snet.compile(&parse(&sql(template, c)).unwrap()).unwrap();
        let mut cont = ContinuousSensJoin::new();
        for (round, rs) in resample_seeds.iter().enumerate() {
            snet.resample(&presets::indoor_climate(), *rs);
            let fresh = ExternalJoin.execute(&mut snet, &cq).unwrap();
            let out = cont.execute_round(&mut snet, &cq).unwrap();
            prop_assert!(
                fresh.result.same_result(&out.result),
                "template {template} round {round}: fresh {} rows vs incremental {}",
                fresh.result.len(),
                out.result.len()
            );
            prop_assert_eq!(
                &fresh.contributors,
                &out.contributors,
                "template {} round {}",
                template,
                round
            );
        }
    }
}

/// Alternating growth and shrinkage — population cells appear, move and
/// vanish across rounds (uncorrelated snapshots), stressing index removal
/// paths and the component-satisfiability flag rather than slow drift.
#[test]
fn churning_population_stays_exact() {
    let mut snet = build(21, 90);
    let cq = snet
        .compile(
            &parse(
                "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                 WHERE |A.temp - B.temp| < 0.5 SAMPLE PERIOD 10",
            )
            .unwrap(),
        )
        .unwrap();
    let mut cont = ContinuousSensJoin::new();
    for round in 0..6u64 {
        let fields = if round % 2 == 0 {
            presets::indoor_climate()
        } else {
            presets::uncorrelated()
        };
        snet.resample(&fields, 300 + round);
        let fresh = ExternalJoin.execute(&mut snet, &cq).unwrap();
        let out = cont.execute_round(&mut snet, &cq).unwrap();
        assert!(
            fresh.result.same_result(&out.result),
            "round {round}: {} vs {} rows",
            fresh.result.len(),
            out.result.len()
        );
        assert_eq!(fresh.contributors, out.contributors, "round {round}");
    }
}
