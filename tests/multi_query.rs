//! Multi-query scheduler equivalence and amortization, end to end: a
//! [`QueryGroup`] running N concurrent queries over drifting snapshots must
//! return, for every due query in every epoch, exactly what a solo
//! `SensJoin` execution computes on that epoch's data — while its single
//! shared Join-Attribute-Collection wave never costs more than the sum of
//! the unshared uploads it replaces, and costs far less when the queries
//! quantize over the same attributes.

use proptest::prelude::*;
use sensjoin::core::{QueryGroup, QueryId};
use sensjoin::prelude::*;
use sensjoin_query::CompiledQuery;

fn build(seed: u64, n: usize) -> SensorNetwork {
    SensorNetworkBuilder::new()
        .area(Area::new(400.0, 400.0))
        .placement(Placement::UniformRandom { n })
        .seed(seed)
        .build()
        .unwrap()
}

/// Query templates across predicate classes and join-attribute sets: band
/// and abs-band over temperature, band over humidity, a spatial join, and a
/// 3-way join — so random groups mix queries with identical, overlapping
/// and disjoint quantization spaces.
fn sql(template: usize, c: f64) -> String {
    match template % 5 {
        0 => format!(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > {c} SAMPLE PERIOD 30"
        ),
        1 => format!(
            "SELECT A.pres, B.pres FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < {} SAMPLE PERIOD 30",
            c * 0.1
        ),
        2 => format!(
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE A.hum - B.hum > {} SAMPLE PERIOD 30",
            c * 2.0
        ),
        3 => format!(
            "SELECT A.x, B.x FROM Sensors A, Sensors B \
             WHERE distance(A.x, A.y, B.x, B.y) < {} SAMPLE PERIOD 30",
            c * 15.0
        ),
        _ => format!(
            "SELECT A.temp, B.temp, C.temp FROM Sensors A, Sensors B, Sensors C \
             WHERE |A.temp - B.temp| < {} AND B.temp - C.temp > {c} \
             SAMPLE PERIOD 30",
            c * 0.2
        ),
    }
}

fn compile(snet: &SensorNetwork, s: &str) -> CompiledQuery {
    snet.compile(&parse(s).unwrap()).unwrap()
}

/// Group-executes one epoch and checks every due query against a fresh solo
/// run on the same snapshot (rows as multisets, and contributor sets).
/// Returns (shared collection bytes, solo-equivalent collection bytes).
fn assert_epoch_matches_solo(
    group: &mut QueryGroup,
    snet: &mut SensorNetwork,
    queries: &[(QueryId, &CompiledQuery)],
) -> (u64, u64) {
    let report = group.execute_epoch(snet).unwrap();
    let shared = report.shared_collection_bytes();
    let unshared: u64 = report
        .solo_equivalent
        .iter()
        .map(|c| c.collection_bytes)
        .sum();
    let due: Vec<QueryId> = report.outcomes.iter().map(|o| o.id).collect();
    let expected: Vec<QueryId> = queries.iter().map(|(id, _)| *id).collect();
    assert_eq!(due, expected, "due set mismatch");
    for out in &report.outcomes {
        let (_, cq) = queries.iter().find(|(id, _)| *id == out.id).unwrap();
        let solo = SensJoin::default().execute(snet, cq).unwrap();
        assert!(
            solo.result.same_result(&out.result),
            "query {:?}: solo {} rows vs group {} rows",
            out.id,
            solo.result.len(),
            out.result.len()
        );
        assert_eq!(solo.contributors, out.contributors, "query {:?}", out.id);
    }
    (shared, unshared)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random pairs/triples over drifting networks: every epoch, every due
    /// query is bit-identical to its solo run, and the shared collection
    /// never exceeds the unshared uploads it replaces.
    #[test]
    fn group_epochs_equal_solo_runs(
        seed in 0u64..1000,
        n in 60usize..100,
        specs in prop::collection::vec((0usize..5, 2.0f64..5.0), 2..=3),
        resample_seeds in prop::collection::vec(0u64..10_000, 2..4),
    ) {
        let mut snet = build(seed, n);
        let queries: Vec<CompiledQuery> = specs
            .iter()
            .map(|&(t, c)| compile(&snet, &sql(t, c)))
            .collect();
        let mut group = QueryGroup::new(SensJoinConfig::default());
        let ids: Vec<QueryId> = queries
            .iter()
            .map(|q| group.register(&snet, q.clone(), 1))
            .collect();
        let expected: Vec<(QueryId, &CompiledQuery)> =
            ids.iter().copied().zip(queries.iter()).collect();
        for rs in resample_seeds {
            snet.resample(&presets::indoor_climate(), rs);
            let (shared, unshared) =
                assert_epoch_matches_solo(&mut group, &mut snet, &expected);
            prop_assert!(
                shared <= unshared,
                "shared collection {shared} exceeds unshared {unshared}"
            );
        }
    }
}

/// Same-template queries quantize over the same space, so the shared
/// collection approaches the cost of ONE solo collection: growing the group
/// keeps shrinking the per-query share, and at N = 4 the shared wave costs
/// at most half of what the four solo collections transmit.
#[test]
fn shared_collection_savings_grow_with_group_size() {
    let mut snet = build(23, 130);
    let queries: Vec<CompiledQuery> = (0..4)
        .map(|i| compile(&snet, &sql(0, 2.0 + 0.4 * i as f64)))
        .collect();
    let mut shared_at = Vec::new();
    for n in [1usize, 2, 4] {
        let mut group = QueryGroup::new(SensJoinConfig::default());
        for q in &queries[..n] {
            group.register(&snet, q.clone(), 1);
        }
        let report = group.execute_epoch(&mut snet).unwrap();
        shared_at.push((n, report.shared_collection_bytes()));
    }
    let solo_sum: u64 = queries
        .iter()
        .map(|q| {
            SensJoin::default()
                .execute(&mut snet, q)
                .unwrap()
                .stats
                .phase(sensjoin::core::PHASE_COLLECTION)
                .tx_bytes
        })
        .sum();
    // Per-query share shrinks monotonically as the group grows...
    for w in shared_at.windows(2) {
        let (n0, b0) = w[0];
        let (n1, b1) = w[1];
        assert!(
            b1 * n0 as u64 <= b0 * n1 as u64,
            "per-query share grew: {b0}B/{n0}q vs {b1}B/{n1}q"
        );
    }
    // ...and at N = 4 the shared wave undercuts half the solo total.
    let (_, shared4) = shared_at[2];
    assert!(
        2 * shared4 <= solo_sum,
        "shared at N=4 ({shared4} B) > 0.5 x solo sum ({solo_sum} B)"
    );
}

/// Staggered EVERY intervals: queries share collection only on coinciding
/// epochs, and each due subset still matches its solo runs under drift.
#[test]
fn staggered_intervals_stay_exact_under_drift() {
    let mut snet = build(31, 90);
    let q1 = compile(&snet, &sql(0, 2.5));
    let q2 = compile(&snet, &sql(2, 1.5));
    let mut group = QueryGroup::new(SensJoinConfig::default());
    let a = group.register(&snet, q1.clone(), 1);
    let b = group.register(&snet, q2.clone(), 2);
    for epoch in 0..4u64 {
        snet.resample(&presets::indoor_climate(), 500 + epoch);
        let both: Vec<(QueryId, &CompiledQuery)> = vec![(a, &q1), (b, &q2)];
        let only_a: Vec<(QueryId, &CompiledQuery)> = vec![(a, &q1)];
        let expected = if epoch % 2 == 0 { &both } else { &only_a };
        assert_epoch_matches_solo(&mut group, &mut snet, expected);
    }
}

/// With a single due query nothing is amortized: the shared statistics and
/// the solo-equivalent accounting must agree byte-for-byte on every phase,
/// in every epoch, even as the snapshot drifts. This pins the accounting
/// basis — every phase's solo-equivalent is charged per *link* (a payload
/// is paid again on each hop), exactly like the network statistics.
#[test]
fn single_query_solo_equivalent_is_byte_exact() {
    let mut snet = build(41, 110);
    let q = compile(&snet, &sql(0, 2.2));
    let mut group = QueryGroup::new(SensJoinConfig::default());
    group.register(&snet, q.clone(), 1);
    for epoch in 0..3u64 {
        snet.resample(&presets::indoor_climate(), 900 + epoch);
        let r = group.execute_epoch(&mut snet).unwrap();
        let eq = &r.solo_equivalent[0];
        assert_eq!(
            r.shared_collection_bytes(),
            eq.collection_bytes,
            "epoch {epoch} collection"
        );
        assert_eq!(
            r.shared_filter_bytes(),
            eq.filter_bytes,
            "epoch {epoch} filter"
        );
        assert_eq!(
            r.shared_final_bytes(),
            eq.final_bytes,
            "epoch {epoch} final"
        );
    }
}

/// Mid-run removal (and a late registration): the surviving queries'
/// persistent filter engines keep producing solo-identical results.
#[test]
fn removal_mid_run_keeps_survivors_exact() {
    let mut snet = build(37, 100);
    let q1 = compile(&snet, &sql(0, 3.0));
    let q2 = compile(&snet, &sql(1, 3.0));
    let q3 = compile(&snet, &sql(2, 2.0));
    let mut group = QueryGroup::new(SensJoinConfig::default());
    let a = group.register(&snet, q1.clone(), 1);
    let b = group.register(&snet, q2.clone(), 1);
    snet.resample(&presets::indoor_climate(), 700);
    assert_epoch_matches_solo(&mut group, &mut snet, &[(a, &q1), (b, &q2)]);
    // Remove q1, add q3; drift; survivors and newcomers both stay exact.
    assert!(group.remove(a));
    let c = group.register(&snet, q3.clone(), 1);
    for epoch in 0..2u64 {
        snet.resample(&presets::indoor_climate(), 710 + epoch);
        assert_epoch_matches_solo(&mut group, &mut snet, &[(b, &q2), (c, &q3)]);
    }
}
