//! End-to-end runs of the paper's example queries Q1 and Q2 (§I), verbatim.

use sensjoin::prelude::*;

fn network(seed: u64) -> SensorNetwork {
    SensorNetworkBuilder::new()
        .area(Area::new(500.0, 500.0))
        .placement(Placement::UniformRandom { n: 250 })
        .fields(presets::outdoor_environment())
        .base(BaseChoice::NearestCorner)
        .seed(seed)
        .build()
        .unwrap()
}

/// Q1: "the minimal distance between two points with a temperature
/// difference of more than ten degrees".
#[test]
fn q1_runs_and_methods_agree() {
    let mut snet = network(42);
    let q = parse(
        "SELECT MIN(distance(A.x, A.y, B.x, B.y)) \
         FROM Sensors A, Sensors B \
         WHERE A.temp - B.temp > 10.0 \
         ONCE",
    )
    .unwrap();
    let cq = snet.compile(&q).unwrap();
    let ext = ExternalJoin.execute(&mut snet, &cq).unwrap();
    let sj = SensJoin::default().execute(&mut snet, &cq).unwrap();
    assert!(ext.result.same_result(&sj.result));
    match &sj.result {
        JoinResult::Aggregate(vals) => {
            assert_eq!(vals.len(), 1);
            if let Some(d) = vals[0] {
                assert!(d >= 0.0 && d <= 500.0 * 2f64.sqrt() + 1.0);
            }
        }
        other => panic!("Q1 is an aggregate query, got {other:?}"),
    }
}

/// Q2: humidity/pressure deltas of node pairs with similar temperature but
/// at least 100 m apart.
#[test]
fn q2_runs_and_methods_agree() {
    let mut snet = network(43);
    let q = parse(
        "SELECT |A.hum - B.hum|, |A.pres - B.pres| \
         FROM Sensors A, Sensors B \
         WHERE |A.temp - B.temp| < 0.3 \
         AND distance(A.x, A.y, B.x, B.y) > 100 \
         ONCE",
    )
    .unwrap();
    let cq = snet.compile(&q).unwrap();
    // Q2's join attributes are x, y and temp — 3 of the 5 referenced
    // attributes, the paper's "60 %" shape.
    assert_eq!(cq.join_attrs(0).len(), 3);
    assert_eq!(cq.referenced_attrs(0).len(), 5);
    let ext = ExternalJoin.execute(&mut snet, &cq).unwrap();
    let sj = SensJoin::default().execute(&mut snet, &cq).unwrap();
    assert!(ext.result.same_result(&sj.result));
    // The distance predicate excludes self-pairs, so rows are genuine pairs.
    if let JoinResult::Rows(rows) = &sj.result {
        for row in rows {
            assert_eq!(row.len(), 2);
            assert!(row[0] >= 0.0 && row[1] >= 0.0);
        }
    } else {
        panic!("Q2 is not an aggregate query");
    }
}

/// Q2 under every wire representation: identical results, ordered costs.
#[test]
fn q2_representation_variants_agree() {
    let mut snet = network(44);
    let q = parse(
        "SELECT |A.hum - B.hum|, |A.pres - B.pres| \
         FROM Sensors A, Sensors B \
         WHERE |A.temp - B.temp| < 0.3 \
         AND distance(A.x, A.y, B.x, B.y) > 100 \
         ONCE",
    )
    .unwrap();
    let cq = snet.compile(&q).unwrap();
    let reference = ExternalJoin.execute(&mut snet, &cq).unwrap();
    let mut bytes_by_repr = Vec::new();
    for repr in [
        Representation::Quadtree,
        Representation::Raw,
        Representation::Zlib,
        Representation::Bzip2,
    ] {
        let method = SensJoin::with_config(SensJoinConfig {
            representation: repr,
            ..SensJoinConfig::default()
        });
        let out = method.execute(&mut snet, &cq).unwrap();
        assert!(
            out.result.same_result(&reference.result),
            "{repr:?} result differs"
        );
        bytes_by_repr.push((repr, out.stats.total_tx_bytes()));
    }
    // Quadtree beats the raw representation (Fig. 16's point).
    let quad = bytes_by_repr[0].1;
    let raw = bytes_by_repr[1].1;
    assert!(quad < raw, "quadtree {quad} !< raw {raw}");
}
