//! Structural protocol invariants, verified against the transmission trace:
//! phase ordering, tree-consistent addressing, and trace/statistics
//! agreement.

use sensjoin::core::{PHASE_COLLECTION, PHASE_FILTER, PHASE_FINAL};
use sensjoin::prelude::*;

fn traced_run(seed: u64) -> (SensorNetwork, sensjoin::sim::Trace) {
    let mut snet = SensorNetworkBuilder::new()
        .area(Area::new(450.0, 450.0))
        .placement(Placement::UniformRandom { n: 250 })
        .base(BaseChoice::NearestCorner)
        .seed(seed)
        .build()
        .unwrap();
    // Derive the band threshold from the generated data itself — half the
    // temperature spread over reachable non-base nodes — so the query is
    // guaranteed to produce matches (the extreme pair differs by the full
    // spread) on any RNG stream, instead of a constant tuned to one stream.
    let ti = snet.master_index("temp").unwrap();
    let temps: Vec<f64> = (0..snet.len() as u32)
        .map(NodeId)
        .filter(|&v| v != snet.base() && snet.net().routing().depth(v).is_some())
        .map(|v| snet.readings(v)[ti])
        .collect();
    let spread = temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - temps.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread > 0.0, "degenerate temperature field");
    let cq = snet
        .compile(
            &parse(&format!(
                "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                 WHERE A.temp - B.temp > {} ONCE",
                spread / 2.0
            ))
            .unwrap(),
        )
        .unwrap();
    snet.net_mut().set_tracing(true);
    let out = SensJoin::default().execute(&mut snet, &cq).unwrap();
    let trace = snet.net().trace().unwrap().clone();
    // Trace agrees with the statistics.
    assert_eq!(trace.total_packets(), out.stats.total_tx_packets());
    (snet, trace)
}

#[test]
fn phases_are_strictly_ordered() {
    let (_, trace) = traced_run(1);
    let phase_rank = |p: &str| match p {
        PHASE_COLLECTION => 0,
        PHASE_FILTER => 1,
        PHASE_FINAL => 2,
        other => panic!("unexpected phase {other}"),
    };
    let ranks: Vec<u8> = trace
        .records()
        .iter()
        .map(|r| phase_rank(&r.phase))
        .collect();
    assert!(ranks.windows(2).all(|w| w[0] <= w[1]), "phases interleaved");
    assert!(ranks.contains(&0) && ranks.contains(&2));
}

#[test]
fn addressing_follows_the_tree() {
    let (snet, trace) = traced_run(2);
    let routing = snet.net().routing();
    for r in trace.records() {
        match r.phase.as_str() {
            PHASE_COLLECTION | PHASE_FINAL => {
                // Up phases: exactly one receiver — the sender's parent.
                assert_eq!(r.to.len(), 1, "up-phase broadcast at {}", r.from);
                assert_eq!(routing.parent(r.from), Some(r.to[0]));
            }
            PHASE_FILTER => {
                // Down phase: receivers are children of the sender.
                assert!(!r.to.is_empty());
                for &c in &r.to {
                    assert_eq!(routing.parent(c), Some(r.from));
                }
            }
            other => panic!("unexpected phase {other}"),
        }
    }
}

#[test]
fn collection_includes_every_reachable_node_but_the_base() {
    let (snet, trace) = traced_run(3);
    let routing = snet.net().routing();
    let senders: std::collections::BTreeSet<NodeId> = trace
        .records()
        .iter()
        .filter(|r| r.phase == PHASE_COLLECTION)
        .map(|r| r.from)
        .collect();
    for v in (0..snet.len() as u32).map(NodeId) {
        if v != snet.base() && routing.depth(v).is_some() {
            assert!(senders.contains(&v), "{v} silent in collection");
        }
    }
    assert!(!senders.contains(&snet.base()));
}

#[test]
fn final_phase_senders_form_root_closed_paths() {
    // Every final-phase sender's parent chain up to the base must also
    // appear as final-phase senders (or be the base): filtered tuples reach
    // the base along unbroken tree paths.
    let (snet, trace) = traced_run(4);
    let routing = snet.net().routing();
    let senders: std::collections::BTreeSet<NodeId> = trace
        .records()
        .iter()
        .filter(|r| r.phase == PHASE_FINAL && r.bytes > 0)
        .map(|r| r.from)
        .collect();
    for &v in &senders {
        let mut cur = v;
        while let Some(p) = routing.parent(cur) {
            if p == snet.base() {
                break;
            }
            assert!(
                senders.contains(&p),
                "path of {v} broken at {p}: filtered data could not reach the base"
            );
            cur = p;
        }
    }
    assert!(!senders.is_empty(), "query was chosen to produce matches");
}

#[test]
fn external_trace_matches_stats_too() {
    let mut snet = SensorNetworkBuilder::new()
        .area(Area::new(400.0, 400.0))
        .placement(Placement::UniformRandom { n: 200 })
        .seed(9)
        .build()
        .unwrap();
    let cq = snet
        .compile(
            &parse(
                "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
                 WHERE A.temp - B.temp > 5.0 ONCE",
            )
            .unwrap(),
        )
        .unwrap();
    snet.net_mut().set_tracing(true);
    let out = ExternalJoin.execute(&mut snet, &cq).unwrap();
    let trace = snet.net().trace().unwrap();
    assert_eq!(trace.total_packets(), out.stats.total_tx_packets());
    // External join is single-phase.
    assert!(trace.records().iter().all(|r| r.phase == "collection"));
}
