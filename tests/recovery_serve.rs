//! Serving-layer crash recovery: for every registered [`CrashPoint`], a
//! multi-tenant serve run that crashes there and resumes from its
//! checkpoint directory is bit-identical to the uninterrupted run — same
//! per-tick admission/epoch digests, same final server state (registry,
//! tenants, plan cache, metrics histograms) byte for byte.
//!
//! The serve snapshot does not serialize the deployment networks: a
//! deployment's field state is a pure function of its spec and snapshot
//! version, so [`Server::restore_state`] rebuilds from the
//! [`DeploymentSpec`]s and resamples to the live version, replaying plan
//! registrations to rebuild the cache on each key's registration snapshot.

use sensjoin::core::persist::{self, CheckpointStore, CrashPoint, RecoveryError, Writer};
use sensjoin::serve::{DeploymentSpec, ServeConfig, Server, Submission, TenantId};
use std::collections::BTreeMap;

const NODES: usize = 40;
const DEPLOYMENTS: usize = 2;
const TENANTS: u64 = 24;
const PER_TICK: u64 = 4;
const TICKS: u64 = 6;
const EVERY: u64 = 2;
const SEED: u64 = 1;
const SKEW: f64 = 0.5;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sensjoin-recovery-serve-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn specs() -> Vec<DeploymentSpec> {
    (0..DEPLOYMENTS)
        .map(|d| DeploymentSpec::new(format!("dep{d}"), NODES, SEED.wrapping_add(d as u64)))
        .collect()
}

fn config() -> ServeConfig {
    ServeConfig {
        period_us: 30_000_000,
        ..ServeConfig::default()
    }
}

/// The tenant workload of the CLI serve driver: skew-interleaved shared
/// and unique templates, multiplicative-hash deployment choice.
fn submission(i: u64) -> Submission {
    let shares = ((i + 1) as f64 * SKEW).floor() > (i as f64 * SKEW).floor();
    let sql = if shares {
        "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
         WHERE A.temp - B.temp > 4.0 SAMPLE PERIOD 30"
            .to_string()
    } else {
        format!(
            "SELECT A.pres, B.pres FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > {:.2} SAMPLE PERIOD 30",
            3.0 + 0.01 * (i % 200) as f64
        )
    };
    let dep = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % DEPLOYMENTS;
    Submission {
        tenant: TenantId(i),
        deployment: format!("dep{dep}"),
        sql,
        every: 1 + i % 3,
    }
}

/// One serve tick: submit the next slice of tenants, run the epoch, and
/// digest what the operator observes (admissions, shedding, queue depth,
/// per-epoch result sizes).
fn run_tick(server: &mut Server, next_tenant: &mut u64, t: u64) -> u64 {
    let _ = t;
    let mut submitted = 0u64;
    let mut shed = 0u64;
    while submitted < PER_TICK && *next_tenant < TENANTS {
        let i = *next_tenant;
        *next_tenant += 1;
        submitted += 1;
        let decision = server.submit(submission(i));
        if decision.is_some_and(|d| !d.admitted()) {
            shed += 1;
        }
    }
    let report = server.tick().expect("tick");
    let admitted = report.decisions.iter().filter(|d| d.admitted()).count();
    let rejected = report.decisions.len() - admitted;
    let mut w = Writer::new();
    w.put_u64(submitted);
    w.put_u64(shed);
    w.put_usize(admitted);
    w.put_usize(rejected);
    w.put_usize(server.queue_len());
    w.put_usize(report.epochs.len());
    for e in &report.epochs {
        w.put_u64(e.tenant.0);
        w.put_usize(e.outcome.result.len());
    }
    persist::fnv1a(&w.into_bytes())
}

/// Ticks `start..TICKS` with checkpointing, verifying replayed ticks
/// against the WAL. Propagates injected crashes.
fn drive(
    server: &mut Server,
    next_tenant: &mut u64,
    store: &mut CheckpointStore,
    wal: &BTreeMap<u64, u64>,
    start: u64,
    digests: &mut Vec<u64>,
) -> Result<(), RecoveryError> {
    for t in start..TICKS {
        let digest = run_tick(server, next_tenant, t);
        digests.push(digest);
        store.crash_check(CrashPoint::PostRound)?;
        match wal.get(&t) {
            Some(&logged) => assert_eq!(logged, digest, "serve replay diverged at tick {t}"),
            None => {
                let mut w = Writer::new();
                w.put_u64(t);
                w.put_u64(digest);
                store.append_wal(&w.into_bytes())?;
            }
        }
        if (t + 1) % EVERY == 0 {
            let mut w = Writer::new();
            w.put_u64(*next_tenant);
            w.put_bytes(&server.export_state());
            store.save_snapshot(t + 1, &w.into_bytes())?;
        }
    }
    Ok(())
}

fn wal_digests(wal: &[Vec<u8>], start: u64) -> BTreeMap<u64, u64> {
    let mut digests = BTreeMap::new();
    for payload in wal {
        let mut r = persist::Reader::new(payload);
        let t = r.get_u64().unwrap();
        let d = r.get_u64().unwrap();
        r.expect_end().unwrap();
        if t >= start {
            digests.insert(t, d);
        }
    }
    digests
}

fn fresh_server() -> Server {
    let mut server = Server::new(config());
    for spec in &specs() {
        server.add_deployment(spec).expect("add deployment");
    }
    server
}

#[test]
fn serve_crash_anywhere_sweep_is_bit_identical() {
    // Reference: uninterrupted run with checkpointing at the same cadence.
    let ref_dir = tmpdir("ref");
    let mut server = fresh_server();
    let mut next_tenant = 0u64;
    let mut store = CheckpointStore::open(&ref_dir).unwrap();
    let mut ref_digests = Vec::new();
    drive(
        &mut server,
        &mut next_tenant,
        &mut store,
        &BTreeMap::new(),
        0,
        &mut ref_digests,
    )
    .unwrap();
    let ref_state = server.export_state();
    let _ = std::fs::remove_dir_all(&ref_dir);
    assert!(
        ref_digests.iter().any(|&d| d != ref_digests[0]),
        "workload too static to discriminate"
    );

    for point in CrashPoint::ALL {
        let dir = tmpdir("sweep");
        let mut server = fresh_server();
        let mut next_tenant = 0u64;
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.arm_crash(point, 2);
        let mut pre_crash = Vec::new();
        let err = drive(
            &mut server,
            &mut next_tenant,
            &mut store,
            &BTreeMap::new(),
            0,
            &mut pre_crash,
        )
        .expect_err("armed crash must fire");
        assert!(
            matches!(err, RecoveryError::Crash(p) if p == point),
            "unexpected error for {point}: {err}"
        );
        drop(store);

        // Restarted process: recover, restore, replay.
        let mut store = CheckpointStore::open(&dir).unwrap();
        // Mid-write crash points leave a torn artifact behind; recovery
        // reports that honestly via `degraded` while still restoring the
        // last consistent state, so no assertion on the flag here.
        let rec = store.recover().unwrap();
        let (mut server, mut next_tenant, start) = match &rec.snapshot {
            Some((seq, payload)) => {
                let mut r = persist::Reader::new(payload);
                let nt = r.get_u64().unwrap();
                let bytes = r.get_bytes().unwrap();
                let server = Server::restore_state(config(), &specs(), &bytes).unwrap();
                r.expect_end().unwrap();
                (server, nt, *seq)
            }
            None => (fresh_server(), 0, 0),
        };
        let wal = wal_digests(&rec.wal, start);
        let mut replayed = Vec::new();
        drive(
            &mut server,
            &mut next_tenant,
            &mut store,
            &wal,
            start,
            &mut replayed,
        )
        .unwrap();

        let mut trail: Vec<u64> = pre_crash[..start as usize].to_vec();
        trail.extend(&replayed);
        assert_eq!(trail, ref_digests, "digest trail diverged at {point}");
        assert_eq!(
            server.export_state(),
            ref_state,
            "final server state diverged at {point}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Recovery with NO checkpoint directory contents (first tick crash before
/// any snapshot): cold start replays the whole run from the WAL prefix.
#[test]
fn serve_recovers_from_wal_only() {
    let dir = tmpdir("wal-only");
    let mut server = fresh_server();
    let mut next_tenant = 0u64;
    let mut store = CheckpointStore::open(&dir).unwrap();
    // Crash on the very first PostRound: only tick 0 ran, nothing durable
    // beyond (possibly) zero WAL records.
    store.arm_crash(CrashPoint::PostSnapshotRename, 1);
    let mut pre = Vec::new();
    let err = drive(
        &mut server,
        &mut next_tenant,
        &mut store,
        &BTreeMap::new(),
        0,
        &mut pre,
    )
    .expect_err("armed crash fires");
    assert!(matches!(err, RecoveryError::Crash(_)));
    drop(store);

    let mut store = CheckpointStore::open(&dir).unwrap();
    let rec = store.recover().unwrap();
    // The crash hit after the snapshot rename but before pruning: the
    // snapshot is durable and usable.
    assert!(rec.snapshot.is_some());
    let (seq, payload) = rec.snapshot.as_ref().unwrap();
    let mut r = persist::Reader::new(payload);
    let nt = r.get_u64().unwrap();
    let bytes = r.get_bytes().unwrap();
    let mut server = Server::restore_state(config(), &specs(), &bytes).unwrap();
    let mut next_tenant = nt;
    let wal = wal_digests(&rec.wal, *seq);
    let mut replayed = Vec::new();
    drive(
        &mut server,
        &mut next_tenant,
        &mut store,
        &wal,
        *seq,
        &mut replayed,
    )
    .unwrap();
    assert_eq!(next_tenant, TENANTS.min(PER_TICK * TICKS));
    let _ = std::fs::remove_dir_all(&dir);
}
