//! The bundled sample trace stays loadable and query-able.

use sensjoin::core::{attr_type_for, ExternalData};
use sensjoin::prelude::*;
use sensjoin::relation::AttrType;

fn load_lab_54() -> ExternalData {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/data/lab_54.csv"))
        .expect("bundled sample data exists");
    let mut lines = text.lines();
    let header: Vec<&str> = lines.next().expect("header").split(',').collect();
    assert_eq!(&header[..2], &["x", "y"]);
    let attrs: Vec<(String, AttrType)> = header[2..]
        .iter()
        .map(|n| ((*n).to_owned(), attr_type_for(n)))
        .collect();
    let mut positions = Vec::new();
    let mut rows = Vec::new();
    for line in lines.filter(|l| !l.trim().is_empty()) {
        let cells: Vec<f64> = line
            .split(',')
            .map(|c| c.parse().expect("number"))
            .collect();
        assert_eq!(cells.len(), header.len());
        positions.push(sensjoin::field::Position::new(cells[0], cells[1]));
        rows.push(cells[2..].to_vec());
    }
    ExternalData {
        positions,
        attrs,
        rows,
    }
}

#[test]
fn bundled_trace_loads_and_joins() {
    let data = load_lab_54();
    assert_eq!(data.positions.len(), 54);
    assert_eq!(data.attrs.len(), 4);
    assert_eq!(data.attrs[0], ("temp".to_owned(), AttrType::Celsius));
    let mut snet = SensorNetworkBuilder::new()
        .area(Area::new(45.0, 45.0))
        .data(data)
        .build()
        .expect("builds from external data");
    assert_eq!(snet.len(), 54);
    // Readings come from the file, not the generator.
    let i = snet.master_index("temp").unwrap();
    let t0 = snet.readings(NodeId(0))[i];
    assert!((18.0..25.0).contains(&t0), "lab temperature, got {t0}");
    let cq = snet
        .compile(
            &parse(
                "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                 WHERE A.temp - B.temp > 3.0 \
                 AND distance(A.x, A.y, B.x, B.y) > 20 ONCE",
            )
            .unwrap(),
        )
        .unwrap();
    let ext = ExternalJoin.execute(&mut snet, &cq).unwrap();
    let sj = SensJoin::default().execute(&mut snet, &cq).unwrap();
    assert!(ext.result.same_result(&sj.result));
    assert!(
        !ext.result.is_empty(),
        "the sample data contains hot/cold pairs"
    );
}

#[test]
fn bad_shapes_rejected() {
    let mut data = load_lab_54();
    data.rows.pop();
    let err = SensorNetworkBuilder::new()
        .area(Area::new(45.0, 45.0))
        .data(data)
        .build();
    assert!(matches!(
        err,
        Err(sensjoin::core::SensorNetworkError::DataShape(_))
    ));
    let mut data2 = load_lab_54();
    data2.rows[3].push(1.0);
    let err2 = SensorNetworkBuilder::new()
        .area(Area::new(45.0, 45.0))
        .data(data2)
        .build();
    assert!(matches!(
        err2,
        Err(sensjoin::core::SensorNetworkError::DataShape(_))
    ));
}
