//! Serving-layer equivalence and admission invariants, end to end.
//!
//! The tentpole property: a [`sensjoin::serve::Server`] batching many
//! tenants' continuous queries — bin-packed into shared groups, admitted
//! at staggered ticks, running staggered `EVERY` intervals, some
//! cancelled mid-run — answers every tenant-epoch **bit-identically** to
//! driving that tenant's query alone in a fresh [`GroupRunner`] on its
//! registration snapshot. Sharing (grouped collection waves, plan
//! caching) is an optimization, never a semantic.
//!
//! The replay recipe mirrors the server's documented determinism
//! contract: a tenant admitted at tick `t` is planned on the network
//! state after tick `t − 1`'s resample (deployments resample with
//! `seed + tick + 1`), so the solo run rebuilds the network from the
//! [`DeploymentSpec`], fast-forwards with one resample at `seed + t`
//! (resampling fully overwrites the readings, so history does not
//! matter), registers, and then resamples `seed + t + 1 + e` before solo
//! epoch `e`.
//!
//! Also covered: the k = 64 per-group admission bound (65th concurrent
//! query on a one-group deployment draws a structured `DeploymentFull`)
//! and bounded-queue shedding under overload.

use proptest::prelude::*;
use sensjoin::core::{GroupOutcome, GroupRunner, JoinResult, QueryId};
use sensjoin::query::parse;
use sensjoin::serve::{
    Decision, DeploymentSpec, RejectReason, ServeConfig, Server, Submission, TenantId,
};
use std::collections::BTreeMap;

const PERIOD_US: u64 = 30_000_000;
const TICKS: u64 = 4;

/// Query templates over the indoor-climate preset, spanning band,
/// absolute-band, general, and aggregate predicates.
fn sql(template: usize, c: f64) -> String {
    match template % 5 {
        0 => format!(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > {c} SAMPLE PERIOD 30"
        ),
        1 => format!(
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < {} SAMPLE PERIOD 30",
            c * 0.2
        ),
        2 => format!(
            "SELECT A.hum, B.pres FROM Sensors A, Sensors B \
             WHERE A.pres / B.pres > {} SAMPLE PERIOD 30",
            1.0 + c * 1e-4
        ),
        3 => format!(
            "SELECT MIN(|A.temp - B.temp|) FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > {} SAMPLE PERIOD 30",
            c * 0.5
        ),
        _ => format!(
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| >= {c} SAMPLE PERIOD 30"
        ),
    }
}

/// Bitwise result equality: same rows (as f64 bit patterns, order-free via
/// sort), same aggregates, same contributor set.
fn assert_bit_identical(served: &GroupOutcome, solo: &GroupOutcome, ctx: &str) {
    assert_eq!(
        served.contributors, solo.contributors,
        "{ctx}: contributors"
    );
    match (&served.result, &solo.result) {
        (JoinResult::Rows(a), JoinResult::Rows(b)) => {
            let bits = |rows: &Vec<Vec<f64>>| {
                let mut v: Vec<Vec<u64>> = rows
                    .iter()
                    .map(|r| r.iter().map(|x| x.to_bits()).collect())
                    .collect();
                v.sort();
                v
            };
            assert_eq!(bits(a), bits(b), "{ctx}: row payloads");
        }
        (JoinResult::Aggregate(a), JoinResult::Aggregate(b)) => {
            let ab: Vec<Option<u64>> = a.iter().map(|v| v.map(f64::to_bits)).collect();
            let bb: Vec<Option<u64>> = b.iter().map(|v| v.map(f64::to_bits)).collect();
            assert_eq!(ab, bb, "{ctx}: aggregates");
        }
        _ => panic!("{ctx}: result kinds differ"),
    }
}

#[derive(Debug, Clone)]
struct Tenant {
    dep: usize,
    template: usize,
    c: f64,
    every: u64,
    admit_tick: u64,
    cancel_tick: Option<u64>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random tenant mixes against two deployments: every tenant-epoch the
    /// server emits matches a solo `GroupRunner` replay bit for bit, and
    /// the two timelines are due at exactly the same ticks.
    #[test]
    fn serving_matches_solo_group_runner(
        seed in 0u64..1000,
        n0 in 30usize..48,
        n1 in 30usize..48,
        raw in prop::collection::vec(
            (0usize..2, 0usize..5, 2.0f64..5.0, 1u64..4, 0u64..3, 0u64..4),
            1..6,
        ),
    ) {
        let tenants: Vec<Tenant> = raw
            .into_iter()
            .map(|(dep, template, c, every, admit_tick, cancel_raw)| Tenant {
                dep,
                template,
                c,
                every,
                admit_tick,
                // Cancellation, when it happens, lands strictly after
                // admission and inside the run.
                cancel_tick: (cancel_raw > 0)
                    .then(|| admit_tick + cancel_raw)
                    .filter(|&t| t < TICKS),
            })
            .collect();

        let specs = [
            DeploymentSpec::new("d0", n0, seed),
            DeploymentSpec::new("d1", n1, seed.wrapping_add(7919)),
        ];
        let mut server = Server::new(ServeConfig {
            period_us: PERIOD_US,
            ..ServeConfig::default()
        });
        for spec in &specs {
            server.add_deployment(spec).unwrap();
        }

        // Drive the server; collect each tenant's (tick, outcome) stream.
        let mut served: BTreeMap<u64, Vec<(u64, GroupOutcome)>> = BTreeMap::new();
        for tick in 0..TICKS {
            for (i, t) in tenants.iter().enumerate() {
                if t.admit_tick == tick {
                    let immediate = server.submit(Submission {
                        tenant: TenantId(i as u64),
                        deployment: format!("d{}", t.dep),
                        sql: sql(t.template, t.c),
                        every: t.every,
                    });
                    prop_assert!(immediate.is_none(), "no immediate rejection expected");
                }
                if t.cancel_tick == Some(tick) {
                    prop_assert!(server.cancel(TenantId(i as u64)), "tenant was live");
                }
            }
            let report = server.tick().unwrap();
            for d in &report.decisions {
                prop_assert!(d.admitted(), "all submissions fit: {d:?}");
            }
            for te in report.epochs {
                prop_assert!(te.complete);
                served.entry(te.tenant.0).or_default().push((tick, te.outcome));
            }
        }

        // Replay every tenant solo on its registration snapshot.
        for (i, t) in tenants.iter().enumerate() {
            let spec = &specs[t.dep];
            let mut snet = spec.build().unwrap();
            if t.admit_tick > 0 {
                snet.resample(&spec.fields, spec.seed.wrapping_add(t.admit_tick));
            }
            let cq = snet.compile(&parse(&sql(t.template, t.c)).unwrap()).unwrap();
            let mut runner = GroupRunner::new(server.config().protocol.clone(), PERIOD_US);
            runner.group_mut().register(&snet, cq, t.every);
            if let Some(cancel) = t.cancel_tick {
                runner.remove_at(cancel - t.admit_tick, QueryId(0));
            }
            let reports = runner
                .run(
                    &mut snet,
                    TICKS - t.admit_tick,
                    &spec.fields,
                    spec.seed.wrapping_add(t.admit_tick + 1),
                )
                .unwrap();

            let solo: Vec<(u64, GroupOutcome)> = reports
                .iter()
                .enumerate()
                .flat_map(|(e, (_, r))| {
                    r.outcomes
                        .iter()
                        .map(move |o| (t.admit_tick + e as u64, o.clone()))
                })
                .collect();
            let stream = served.remove(&(i as u64)).unwrap_or_default();
            prop_assert_eq!(
                stream.len(),
                solo.len(),
                "tenant {}: due-epoch count (server {:?} vs solo {:?})",
                i,
                stream.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
                solo.iter().map(|(t, _)| *t).collect::<Vec<_>>()
            );
            for ((served_tick, served_out), (solo_tick, solo_out)) in
                stream.iter().zip(&solo)
            {
                prop_assert_eq!(served_tick, solo_tick, "tenant {}: due tick", i);
                assert_bit_identical(
                    served_out,
                    solo_out,
                    &format!("tenant {i} tick {served_tick}"),
                );
            }
        }
        // No tenant got results it never asked for.
        prop_assert!(served.is_empty(), "unexpected tenants: {:?}", served.keys());
    }
}

/// The 65th concurrent query on a one-group deployment draws a structured
/// `DeploymentFull`, and a slot freed by cancellation is admittable again.
#[test]
fn k64_deployment_full_rejection() {
    let mut server = Server::new(ServeConfig {
        max_groups: 1,
        ..ServeConfig::default()
    });
    server
        .add_deployment(&DeploymentSpec::new("d0", 30, 5))
        .unwrap();
    for i in 0..65u64 {
        server.submit(Submission {
            tenant: TenantId(i),
            deployment: "d0".into(),
            sql: sql(0, 4.0),
            every: 1,
        });
    }
    let report = server.tick().unwrap();
    assert_eq!(report.decisions.len(), 65);
    assert_eq!(
        report.decisions.iter().filter(|d| d.admitted()).count(),
        64,
        "exactly MAX_GROUP_QUERIES live queries admitted"
    );
    match &report.decisions[64] {
        Decision::Rejected { tenant, reason } => {
            assert_eq!(*tenant, TenantId(64));
            assert_eq!(*reason, RejectReason::DeploymentFull);
        }
        d => panic!("65th submission should be rejected, got {d:?}"),
    }
    assert_eq!(server.metrics().totals.admitted, 64);
    assert_eq!(server.metrics().totals.rejected_full, 1);

    // Cancel one → the live count drops below 64 → the next tenant fits.
    assert!(server.cancel(TenantId(3)));
    server.submit(Submission {
        tenant: TenantId(100),
        deployment: "d0".into(),
        sql: sql(1, 3.0),
        every: 2,
    });
    let report = server.tick().unwrap();
    assert!(
        report.decisions.iter().all(Decision::admitted),
        "freed slot admits a newcomer: {:?}",
        report.decisions
    );
}

/// Submissions beyond the bounded queue are shed immediately with a
/// structured decision, and the metrics account for every one.
#[test]
fn bounded_queue_sheds_overload() {
    let mut server = Server::new(ServeConfig {
        queue_depth: 4,
        ..ServeConfig::default()
    });
    server
        .add_deployment(&DeploymentSpec::new("d0", 30, 5))
        .unwrap();
    let mut shed = 0;
    for i in 0..7u64 {
        match server.submit(Submission {
            tenant: TenantId(i),
            deployment: "d0".into(),
            sql: sql(0, 4.0),
            every: 1,
        }) {
            None => {}
            Some(Decision::Rejected {
                reason: RejectReason::Shed,
                tenant,
            }) => {
                shed += 1;
                assert!(tenant.0 >= 4, "only overflow arrivals are shed");
            }
            Some(d) => panic!("unexpected immediate decision {d:?}"),
        }
    }
    assert_eq!(shed, 3);
    assert_eq!(server.queue_len(), 4);
    assert_eq!(server.metrics().totals.shed, 3);
    assert_eq!(server.metrics().totals.submitted, 7);

    let report = server.tick().unwrap();
    assert_eq!(report.decisions.len(), 4, "queued submissions all decided");
    assert_eq!(server.metrics().totals.admitted, 4);
}

/// Unknown deployments and duplicate tenants are refused at submit time.
#[test]
fn structured_immediate_rejections() {
    let mut server = Server::new(ServeConfig::default());
    server
        .add_deployment(&DeploymentSpec::new("d0", 30, 5))
        .unwrap();
    let sub = |tenant: u64, deployment: &str| Submission {
        tenant: TenantId(tenant),
        deployment: deployment.into(),
        sql: sql(0, 4.0),
        every: 1,
    };
    match server.submit(sub(0, "nope")) {
        Some(Decision::Rejected { reason, .. }) => {
            assert_eq!(reason, RejectReason::UnknownDeployment("nope".into()));
        }
        d => panic!("expected unknown-deployment rejection, got {d:?}"),
    }
    assert!(server.submit(sub(1, "d0")).is_none());
    match server.submit(sub(1, "d0")) {
        Some(Decision::Rejected { reason, .. }) => {
            assert_eq!(reason, RejectReason::DuplicateTenant, "still queued");
        }
        d => panic!("expected duplicate-tenant rejection, got {d:?}"),
    }
    server.tick().unwrap();
    match server.submit(sub(1, "d0")) {
        Some(Decision::Rejected { reason, .. }) => {
            assert_eq!(reason, RejectReason::DuplicateTenant, "already admitted");
        }
        d => panic!("expected duplicate-tenant rejection, got {d:?}"),
    }
    // Invalid SQL is decided at admission, not at submit.
    server.submit(Submission {
        tenant: TenantId(2),
        deployment: "d0".into(),
        sql: "SELECT garbage FROM nowhere".into(),
        every: 1,
    });
    let report = server.tick().unwrap();
    assert!(report.decisions.iter().any(|d| matches!(
        d,
        Decision::Rejected {
            tenant: TenantId(2),
            reason: RejectReason::InvalidQuery(_),
        }
    )));
    assert_eq!(server.metrics().totals.rejected_invalid, 1);
    assert_eq!(server.metrics().totals.rejected_duplicate, 2);
    assert_eq!(server.metrics().totals.rejected_unknown_deployment, 1);
    assert_eq!(server.metrics().totals.rejected(), 4);
}
