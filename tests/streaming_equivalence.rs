//! Streaming/batch equivalence of the ingestion engine, end to end: a
//! persistent [`sensjoin::core::StreamJoinEngine`] driven through random
//! insert/expire/re-upsert batches over drifting field values must answer,
//! after every batch, bit-identically to a fresh `exact_join` over the
//! tuples it has been fed — same row sequence, same aggregates, same
//! contributor set — for every predicate class the classifier produces
//! (band, absolute band in both window and two-run shapes, equi, general,
//! and multi-conjunct 3-way joins). Runs under both feature configurations
//! in CI, so the vectorized residual kernels are covered on and off.

use proptest::prelude::*;
use sensjoin::core::{exact_join, JoinComputation, StreamJoinEngine, StreamOp};
use sensjoin::prelude::*;
use sensjoin::query::CompiledQuery;
use std::collections::BTreeMap;

fn build(seed: u64, n: usize) -> SensorNetwork {
    SensorNetworkBuilder::new()
        .area(Area::new(400.0, 400.0))
        .placement(Placement::UniformRandom { n })
        .seed(seed)
        .build()
        .unwrap()
}

/// Query templates across predicate classes. Equality over raw field
/// samples still matches on the diagonal (the same node on both sides), so
/// the equi index path is exercised with a non-empty result.
fn sql(template: usize, c: f64) -> String {
    match template % 7 {
        0 => format!(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > {c} ONCE"
        ),
        1 => format!(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < {} ONCE",
            c * 0.1
        ),
        2 => format!(
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| >= {c} ONCE"
        ),
        3 => format!(
            "SELECT A.x, B.x FROM Sensors A, Sensors B \
             WHERE distance(A.x, A.y, B.x, B.y) < {} ONCE",
            c * 15.0
        ),
        4 => "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
              WHERE A.hum = B.hum ONCE"
            .to_owned(),
        5 => format!(
            "SELECT MIN(|A.temp - B.temp|) FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > {} ONCE",
            c * 0.3
        ),
        _ => format!(
            "SELECT A.temp, B.temp, C.temp FROM Sensors A, Sensors B, Sensors C \
             WHERE |A.temp - B.temp| < {} AND B.temp - C.temp > {c} ONCE",
            c * 0.2
        ),
    }
}

/// The per-relation values node `v` reports after local predicates — the
/// upsert payload the network-level protocol would feed the engine.
fn per_rel_of(snet: &SensorNetwork, cq: &CompiledQuery, v: NodeId) -> Vec<Option<Vec<f64>>> {
    (0..cq.num_relations())
        .map(|r| {
            let schema = cq.schema(r);
            if snet.belongs(v, schema.name()) {
                let vals = snet.values_for(v, schema);
                cq.eval_local(r, &vals).then_some(vals)
            } else {
                None
            }
        })
        .collect()
}

/// Fresh batch join over exactly what the engine has been fed.
fn reference(
    cq: &CompiledQuery,
    shadow: &BTreeMap<NodeId, Vec<Option<Vec<f64>>>>,
) -> JoinComputation {
    let tuples: Vec<Vec<(NodeId, Vec<f64>)>> = (0..cq.num_relations())
        .map(|r| {
            shadow
                .iter()
                .filter_map(|(&v, pr)| pr[r].clone().map(|vals| (v, vals)))
                .collect()
        })
        .collect();
    exact_join(cq, &tuples)
}

/// Bit-level equality: row order, every f64 payload, and the contributor
/// set. `same_result` alone would tolerate reordering; the engine promises
/// the exact emission order of the batch join.
fn assert_bit_identical(streamed: &JoinComputation, batch: &JoinComputation) {
    assert_eq!(streamed.contributors, batch.contributors, "contributors");
    use sensjoin::core::JoinResult;
    match (&streamed.result, &batch.result) {
        (JoinResult::Rows(a), JoinResult::Rows(b)) => {
            let ab: Vec<Vec<u64>> = a
                .iter()
                .map(|r| r.iter().map(|v| v.to_bits()).collect())
                .collect();
            let bb: Vec<Vec<u64>> = b
                .iter()
                .map(|r| r.iter().map(|v| v.to_bits()).collect())
                .collect();
            assert_eq!(ab, bb, "row payloads");
        }
        (JoinResult::Aggregate(a), JoinResult::Aggregate(b)) => {
            let ab: Vec<Option<u64>> = a.iter().map(|v| v.map(f64::to_bits)).collect();
            let bb: Vec<Option<u64>> = b.iter().map(|v| v.map(f64::to_bits)).collect();
            assert_eq!(ab, bb, "aggregates");
        }
        _ => panic!("result kinds differ"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random batches of upserts (fresh nodes and re-upserts with drifted
    /// values) and expirations: after every batch the engine's cached
    /// result is bit-identical to a batch `exact_join` over its live feed.
    #[test]
    fn streaming_matches_batch_join(
        seed in 0u64..1000,
        n in 40usize..80,
        template in 0usize..7,
        c in 2.0f64..5.0,
        batches in prop::collection::vec(
            (0u64..10_000, prop::collection::vec(0u32..10_000, 1..20)),
            2..5,
        ),
    ) {
        let mut snet = build(seed, n);
        let cq = snet.compile(&parse(&sql(template, c)).unwrap()).unwrap();
        let mut engine = StreamJoinEngine::new(cq.clone());
        let mut shadow: BTreeMap<NodeId, Vec<Option<Vec<f64>>>> = BTreeMap::new();

        // Cold load: every node arrives.
        let ops: Vec<StreamOp> = (0..n as u32)
            .map(|i| {
                let v = NodeId(i);
                let per_rel = per_rel_of(&snet, &cq, v);
                shadow.insert(v, per_rel.clone());
                StreamOp::Upsert { origin: v, per_rel }
            })
            .collect();
        engine.apply_batch(&ops);
        assert_bit_identical(&engine.result(), &reference(&cq, &shadow));

        for (resample_seed, batch) in batches {
            snet.resample(&presets::indoor_climate(), resample_seed);
            let mut ops = Vec::new();
            for raw in batch {
                let v = NodeId((raw / 2) % n as u32);
                // Parity decides the op kind: even upserts, odd expires.
                if raw % 2 == 0 {
                    let per_rel = per_rel_of(&snet, &cq, v);
                    shadow.insert(v, per_rel.clone());
                    ops.push(StreamOp::Upsert { origin: v, per_rel });
                } else {
                    // Expiring an absent origin is a legal no-op.
                    shadow.remove(&v);
                    ops.push(StreamOp::Expire { origin: v });
                }
            }
            engine.apply_batch(&ops);
            assert_bit_identical(&engine.result(), &reference(&cq, &shadow));
        }
    }
}
